//! Criterion micro-benchmarks of the pre-processing pipeline.
//!
//! Times the full builder (RCM + coarsening + pack extraction + within-pack
//! DAR reordering + permutation) for each method. The paper amortises this
//! cost over many right-hand sides; these numbers document what is being
//! amortised.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sts_core::Method;
use sts_graph::{rcm, Graph};
use sts_matrix::suite::{self, SuiteId};
use sts_matrix::SuiteScale;

fn construction_benchmarks(c: &mut Criterion) {
    let m = suite::generate(SuiteId::D3, SuiteScale::Tiny).expect("suite entry generates");
    let l = m.lower().expect("lower operand");
    let mut group = c.benchmark_group("construction");
    for method in Method::all() {
        group.bench_with_input(BenchmarkId::new("build", method.label()), &l, |bench, l| {
            bench.iter(|| method.build(l, 80).unwrap())
        });
    }
    group.bench_function("rcm_only", |bench| {
        let g = Graph::from_lower_triangular(&l);
        bench.iter(|| rcm::reverse_cuthill_mckee(&g))
    });
    group.finish();
}

criterion_group!(benches, construction_benchmarks);
criterion_main!(benches);
