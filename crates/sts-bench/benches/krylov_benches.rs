//! Criterion benchmarks of the end-to-end Krylov workload: PCG on the
//! 200×200 grid Laplacian, comparing sequential-sweep against
//! pipelined-sweep preconditioning, plus the IC(0) *setup* pair —
//! sequential up-looking sweep vs. the level-scheduled build on the pack
//! hierarchy, plus the batched pair — lockstep scalar CG vs block CG on a
//! shared Krylov space over four correlated right-hand sides, on both sweep
//! engines (the sequential one running the batched sequential split
//! kernels).
//!
//! Both sweep engines (and both setup engines) run bitwise-identical
//! arithmetic, so every timed solve performs exactly the same iteration
//! count — the measured difference is pure kernel speed. A per-application
//! pair (one SSOR application, no CG around it) isolates the sweeps
//! themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sts_core::Method;
use sts_krylov::{Ic0, KrylovWorkspace, Pcg, Preconditioner, SpdSystem, Ssor, SweepEngine};
use sts_matrix::{generators, ops};
use sts_numa::Schedule;

fn krylov_benchmarks(c: &mut Criterion) {
    let a = generators::grid2d_laplacian(200, 200).expect("grid dimensions are valid");
    let sys = SpdSystem::build(&a, Method::Sts3, 80).expect("laplacian binds to STS-3");
    let n = sys.n();
    let threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let pcg = Pcg::new(threads, Schedule::Guided { min_chunk: 1 });
    let x_true: Vec<f64> = (0..n)
        .map(|i| ((i * 7919) % 101) as f64 * 0.02 - 1.0)
        .collect();
    let b = ops::spmv(&a, &x_true).expect("dimensions match");
    let mut ws = KrylovWorkspace::new(n);

    let mut group = c.benchmark_group("pcg_200x200");
    for engine in [SweepEngine::Sequential, SweepEngine::Pipelined] {
        let label = match engine {
            SweepEngine::Sequential => "seq_sweeps",
            SweepEngine::Pipelined => "pipelined_sweeps",
        };
        let mut pre = Ssor::new(&sys, pcg.solver(), engine);
        // Warm-up outside the timer: forces the lazy split layouts.
        let warm = pcg
            .solve(&sys, &mut pre, &b, &mut ws)
            .expect("PCG converges");
        assert!(warm.converged);
        group.bench_with_input(BenchmarkId::new("ssor_solve", label), &sys, |bench, sys| {
            bench.iter(|| pcg.solve(sys, &mut pre, &b, &mut ws).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("ssor_apply", label),
            &sys,
            |bench, _sys| {
                let mut z = vec![0.0; n];
                let mut sweep = vec![0.0; n];
                bench.iter(|| {
                    pre.apply_into(pcg.solver(), &b, &mut z, &mut sweep)
                        .unwrap()
                })
            },
        );
    }
    let mut ic0 =
        Ic0::new_parallel(&sys, pcg.solver(), SweepEngine::Pipelined).expect("laplacian is SPD");
    group.bench_with_input(
        BenchmarkId::new("ic0_solve", "pipelined_sweeps"),
        &sys,
        |bench, sys| bench.iter(|| pcg.solve(sys, &mut ic0, &b, &mut ws).unwrap()),
    );
    group.finish();

    // Lockstep scalar CG vs block CG on four correlated right-hand sides
    // (Krylov chain + 1% rough parts): same operator, same tolerance — the
    // block driver converges in fewer iterations on a shared Krylov space,
    // at the price of small dense projections per step. Both engines'
    // batched sweeps back the SSOR pair, so the bench also exercises the
    // sequential batched split kernels.
    let nrhs = 4;
    let bb = generators::correlated_rhs_chain(&a, nrhs).expect("workload binds to the operator");
    let mut wsb = KrylovWorkspace::with_nrhs(n, nrhs);
    let mut group = c.benchmark_group("pcg_batch4_200x200");
    for engine in [SweepEngine::Sequential, SweepEngine::Pipelined] {
        let label = match engine {
            SweepEngine::Sequential => "seq_sweeps",
            SweepEngine::Pipelined => "pipelined_sweeps",
        };
        let mut pre = Ssor::new(&sys, pcg.solver(), engine);
        let warm = pcg
            .solve_batch(&sys, &mut pre, &bb, nrhs, &mut wsb)
            .expect("lockstep CG converges");
        assert!(warm.converged.iter().all(|&c| c));
        group.bench_with_input(
            BenchmarkId::new("ssor_lockstep", label),
            &sys,
            |bench, sys| {
                bench.iter(|| pcg.solve_batch(sys, &mut pre, &bb, nrhs, &mut wsb).unwrap())
            },
        );
        group.bench_with_input(BenchmarkId::new("ssor_block", label), &sys, |bench, sys| {
            bench.iter(|| pcg.solve_block(sys, &mut pre, &bb, nrhs, &mut wsb).unwrap())
        });
    }
    group.finish();

    // The preconditioner setup pair: identical factors (asserted), so the
    // measured difference is pure scheduling.
    let f_seq = sts_matrix::factor::ic0(sys.matrix()).expect("laplacian is SPD");
    let f_par = pcg
        .solver()
        .parallel_ic0(sys.structure(), sys.matrix())
        .expect("laplacian is SPD");
    assert_eq!(f_seq.values(), f_par.values(), "setup engines must agree");
    let mut group = c.benchmark_group("ic0_build_200x200");
    group.bench_function("sequential_sweep", |bench| {
        bench.iter(|| sts_matrix::factor::ic0(sys.matrix()).unwrap())
    });
    group.bench_function("level_scheduled", |bench| {
        bench.iter(|| {
            pcg.solver()
                .parallel_ic0(sys.structure(), sys.matrix())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, krylov_benchmarks);
criterion_main!(benches);
