//! Criterion micro-benchmarks of the In-Pack schedulers and the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use sts_core::{Method, SimulatedExecutor};
use sts_matrix::suite::{self, SuiteId};
use sts_matrix::SuiteScale;
use sts_numa::{NumaTopology, Schedule};
use sts_sched::cost::InPackCostModel;
use sts_sched::dar::DarGraph;
use sts_sched::heuristic::{affinity_list_schedule, block_schedule};

fn scheduling_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("in_pack_scheduling");
    let model = InPackCostModel::standard();
    let dar = DarGraph::line(4096);
    group.bench_function("block_schedule_line_4096", |bench| {
        bench.iter(|| {
            let a = block_schedule(dar.num_tasks(), 16);
            model.makespan(&dar, &a, 16)
        })
    });
    group.bench_function("affinity_list_schedule_line_512", |bench| {
        let small = DarGraph::line(512);
        bench.iter(|| affinity_list_schedule(&small, 16, &model))
    });
    group.finish();

    let mut group = c.benchmark_group("simulator");
    let m = suite::generate(SuiteId::D3, SuiteScale::Tiny).expect("suite entry generates");
    let l = m.lower().expect("lower operand");
    let s = Method::Sts3.build(&l, 80).expect("builder succeeds");
    let exec = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
    group.bench_function("simulate_sts3_16_cores", |bench| {
        bench.iter(|| exec.simulate(&s, 16, Schedule::Guided { min_chunk: 1 }))
    });
    group.finish();
}

criterion_group!(benches, scheduling_benchmarks);
criterion_main!(benches);
