//! Criterion micro-benchmarks of the triangular solve kernels.
//!
//! Wall-clock timings of the sequential and threaded solvers for each of the
//! four methods on a representative matrix (D2, the planar-triangulation
//! class). On a single-core CI host these numbers mostly reflect the kernel's
//! per-nonzero cost; the figure harnesses (simulated machines) are the
//! artefacts that reproduce the paper's multi-core results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sts_core::{Method, ParallelSolver};
use sts_matrix::suite::{self, SuiteId};
use sts_matrix::SuiteScale;
use sts_numa::Schedule;

fn solver_benchmarks(c: &mut Criterion) {
    let m = suite::generate(SuiteId::D2, SuiteScale::Tiny).expect("suite entry generates");
    let l = m.lower().expect("lower operand");
    let mut group = c.benchmark_group("triangular_solve");
    for method in Method::all() {
        let s = method.build(&l, 80).expect("builder succeeds");
        let b = vec![1.0; s.n()];
        group.bench_with_input(
            BenchmarkId::new("sequential", method.label()),
            &s,
            |bench, s| bench.iter(|| s.solve_sequential(&b).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_split", method.label()),
            &s,
            |bench, s| bench.iter(|| s.solve_sequential_split(&b).unwrap()),
        );
        let threads = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
        group.bench_with_input(
            BenchmarkId::new(format!("threads_{threads}"), method.label()),
            &s,
            |bench, s| bench.iter(|| solver.solve(s, &b).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("split_threads_{threads}"), method.label()),
            &s,
            |bench, s| bench.iter(|| solver.solve_split(s, &b).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("pipelined_threads_{threads}"), method.label()),
            &s,
            |bench, s| bench.iter(|| solver.solve_pipelined(s, &b).unwrap()),
        );
        let nrhs = 4;
        let b4 = vec![1.0; s.n() * nrhs];
        group.bench_with_input(
            BenchmarkId::new(format!("batch{nrhs}_threads_{threads}"), method.label()),
            &s,
            |bench, s| bench.iter(|| solver.solve_batch(s, &b4, nrhs).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new(
                format!("batch{nrhs}_pipelined_threads_{threads}"),
                method.label(),
            ),
            &s,
            |bench, s| bench.iter(|| solver.solve_batch_pipelined(s, &b4, nrhs).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, solver_benchmarks);
criterion_main!(benches);
