//! The unsafe-audit lint behind the `audit_lint` binary.
//!
//! Walks the workspace's first-party Rust sources (everything under the
//! repository root except `vendor/` and `target/`) and enforces two rules:
//!
//! 1. **Every `unsafe` use carries a `// SAFETY:` comment** (or, for
//!    `unsafe fn` declarations, the idiomatic `# Safety` doc section) — on
//!    the same line, or in the contiguous run of comments/attributes
//!    immediately above the statement (a run covers the next two code
//!    lines, so a rustfmt-wrapped statement stays covered; a blank line or
//!    further code ends the coverage). The comment is where the soundness
//!    argument lives; the lint makes its absence a CI failure instead of a
//!    review nit.
//! 2. **`unsafe` and `Ordering::Relaxed` appear only in the audited-module
//!    allowlist** ([`is_allowlisted`]): the lock-free primitives in
//!    `sts-numa` (`pool`, `epoch`, `barrier`, `affinity`), the solver
//!    kernels in `sts-core::solver`, and the lock-free recorders in
//!    `sts-trace` (`span`, plus `metrics`, whose `Relaxed` uses are
//!    monotonic counters merged under a single publishing barrier). New
//!    unsafe code elsewhere must either move into an audited module or
//!    extend the allowlist in the same PR that argues its soundness.
//!
//! The scanner is line-based and deliberately simple: line comments and
//! string literals are stripped before token matching, so prose mentioning
//! `unsafe` does not trip the lint, and a `SAFETY:` inside a string does not
//! satisfy it. Block comments spanning lines are rare in this codebase's
//! rustfmt style and are handled conservatively (the scanner tracks `/* */`
//! nesting per file).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which audit rule a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// An `unsafe` use without a `// SAFETY:` comment.
    MissingSafetyComment,
    /// An `unsafe` use outside the audited-module allowlist.
    UnsafeOutsideAllowlist,
    /// An `Ordering::Relaxed` use outside the audited-module allowlist.
    RelaxedOutsideAllowlist,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::MissingSafetyComment => write!(f, "unsafe without a // SAFETY: comment"),
            Rule::UnsafeOutsideAllowlist => write!(f, "unsafe outside the audited allowlist"),
            Rule::RelaxedOutsideAllowlist => {
                write!(f, "Ordering::Relaxed outside the audited allowlist")
            }
        }
    }
}

/// One audit finding: file, 1-based line, rule, and the offending line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the audited root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule broken.
    pub rule: Rule,
    /// The source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// The audited-module allowlist, as root-relative paths. `unsafe` and
/// `Ordering::Relaxed` are permitted only here (rule 1 still applies).
pub fn is_allowlisted(rel_path: &str) -> bool {
    const FILES: [&str; 6] = [
        "crates/sts-numa/src/pool.rs",
        "crates/sts-numa/src/epoch.rs",
        "crates/sts-numa/src/barrier.rs",
        "crates/sts-numa/src/affinity.rs",
        "crates/sts-trace/src/span.rs",
        "crates/sts-trace/src/metrics.rs",
    ];
    FILES.contains(&rel_path) || rel_path.starts_with("crates/sts-core/src/solver/")
}

/// Whether `content[i..]` starts a standalone `unsafe` / `Relaxed` token
/// (identifier-boundary on both sides).
fn token_at(line: &str, i: usize, token: &str) -> bool {
    let bytes = line.as_bytes();
    if !line.is_char_boundary(i) || !line[i..].starts_with(token) {
        return false;
    }
    let ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    if i > 0 && ident(bytes[i - 1]) {
        return false;
    }
    let end = i + token.len();
    end >= bytes.len() || !ident(bytes[end])
}

fn contains_token(line: &str, token: &str) -> bool {
    let first = match token.as_bytes().first() {
        Some(&b) => b,
        None => return false,
    };
    line.bytes()
        .enumerate()
        .any(|(i, b)| b == first && token_at(line, i, token))
}

/// Strips string literals and line comments from one line of code,
/// continuing a block comment from the previous line when `in_block` is set.
/// Returns the code text (literals replaced by spaces) and the comment text
/// of this line (used for the `SAFETY:` lookup).
fn split_code_and_comment(line: &str, in_block: &mut bool) -> (String, String) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    let mut in_char = false;
    while i < bytes.len() {
        let b = bytes[i];
        if *in_block {
            comment.push(b as char);
            if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                comment.push('/');
                *in_block = false;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if in_str {
            if b == b'\\' {
                i += 2;
                continue;
            }
            if b == b'"' {
                in_str = false;
            }
            code.push(' ');
            i += 1;
            continue;
        }
        if in_char {
            if b == b'\\' {
                i += 2;
                continue;
            }
            if b == b'\'' {
                in_char = false;
            }
            code.push(' ');
            i += 1;
            continue;
        }
        match b {
            b'"' => {
                in_str = true;
                code.push(' ');
            }
            // A lifetime tick (`'a`) is not a char literal; only treat a
            // quote as one when it closes within two characters.
            b'\'' if bytes.get(i + 2) == Some(&b'\'') || bytes.get(i + 1) == Some(&b'\\') => {
                in_char = true;
                code.push(' ');
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                comment.push_str(&line[i..]);
                break;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                *in_block = true;
                comment.push_str("/*");
                i += 2;
                continue;
            }
            _ => code.push(b as char),
        }
        i += 1;
    }
    // Strings never close across lines in this codebase's style; reset so a
    // stray quote cannot swallow the rest of the file.
    (code, comment)
}

/// Scans one file's source text. `rel_path` is the root-relative path used
/// for allowlist decisions and reporting.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let allowed = is_allowlisted(rel_path);
    let mut violations = Vec::new();
    let mut in_block = false;
    // Whether the current comment/attribute run contains a safety argument,
    // and how many further code lines an already-ended run still covers
    // (rustfmt wraps statements, so the `unsafe` token may sit one line
    // below the statement's first code line).
    let mut run_has_safety = false;
    let mut coverage_left = 0usize;
    for (idx, raw) in source.lines().enumerate() {
        let (code, comment) = split_code_and_comment(raw, &mut in_block);
        let code_trim = code.trim();
        let line_no = idx + 1;
        let is_safety_comment = comment.contains("SAFETY:") || comment.contains("# Safety");
        let comment_only = code_trim.is_empty() && !comment.is_empty();
        let attr_only = code_trim.starts_with("#[") || code_trim.starts_with("#![");
        let blank = code_trim.is_empty() && comment.is_empty();
        if comment_only || attr_only {
            run_has_safety |= is_safety_comment;
        } else if blank {
            // A blank line separates the safety argument from later code.
            run_has_safety = false;
            coverage_left = 0;
        }
        let covered = run_has_safety || coverage_left > 0 || is_safety_comment;
        let has_unsafe = contains_token(&code, "unsafe");
        // Every Relaxed use in this workspace is written `...Ordering::Relaxed`
        // (including `AtomicOrdering::Relaxed` aliases, which this substring
        // still matches); bare `Relaxed` imports are not used.
        let has_relaxed = code.contains("Ordering::Relaxed");
        if has_unsafe {
            if !allowed {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::UnsafeOutsideAllowlist,
                    excerpt: raw.trim().to_string(),
                });
            }
            if !covered {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::MissingSafetyComment,
                    excerpt: raw.trim().to_string(),
                });
            }
        }
        if has_relaxed && !allowed {
            violations.push(Violation {
                file: rel_path.to_string(),
                line: line_no,
                rule: Rule::RelaxedOutsideAllowlist,
                excerpt: raw.trim().to_string(),
            });
        }
        // A code line consumes one unit of coverage; the run that just ended
        // grants two (the statement's first line plus one wrapped line).
        if !comment_only && !attr_only && !blank {
            if run_has_safety {
                coverage_left = 2;
                run_has_safety = false;
            }
            coverage_left = coverage_left.saturating_sub(1);
        }
    }
    violations
}

/// Recursively collects the `.rs` files to audit under `root`, skipping
/// `vendor/`, `target/` and hidden directories. Paths are returned sorted
/// for deterministic reports.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "vendor" || name == "target" || name.starts_with('.') {
                    continue;
                }
                walk(&path, out)?;
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

/// Audits every first-party source file under `root`. Returns the
/// violations (empty means the workspace passes) and the number of files
/// scanned.
pub fn audit_workspace(root: &Path) -> io::Result<(Vec<Violation>, usize)> {
    let files = collect_sources(root)?;
    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path)?;
        violations.extend(scan_source(&rel, &source));
    }
    Ok((violations, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_comment_on_preceding_line_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        let v = scan_source("crates/sts-numa/src/pool.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_comment_runs_extend_through_attributes_and_same_line() {
        let src =
            "// SAFETY: one writer per slot.\n#[allow(clippy::mut_from_ref)]\nunsafe fn g() {}\n";
        assert!(scan_source("crates/sts-numa/src/epoch.rs", src).is_empty());
        let src = "let x = unsafe { read() }; // SAFETY: published by the barrier.\n";
        assert!(scan_source("crates/sts-numa/src/epoch.rs", src).is_empty());
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = scan_source("crates/sts-numa/src/pool.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MissingSafetyComment);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn a_blank_line_breaks_the_safety_run() {
        let src = "// SAFETY: stale.\nfn other() {}\n\nunsafe fn g() {}\n";
        let v = scan_source("crates/sts-numa/src/pool.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn unsafe_outside_the_allowlist_is_flagged_even_with_a_comment() {
        let src = "// SAFETY: still not allowed here.\nunsafe { x() }\n";
        let v = scan_source("crates/sts-graph/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnsafeOutsideAllowlist);
    }

    #[test]
    fn relaxed_outside_the_allowlist_is_flagged() {
        let src = "x.store(1, Ordering::Relaxed);\n";
        let v = scan_source("crates/sts-sched/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RelaxedOutsideAllowlist);
        assert!(scan_source("crates/sts-trace/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn prose_and_strings_do_not_trip_the_lint() {
        let src = "//! The unsafe kernels use Ordering::Relaxed counters.\nlet s = \"unsafe Ordering::Relaxed\";\nlet t = UnsafeCell::new(0);\n";
        assert!(scan_source("crates/sts-graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn the_repository_head_passes_its_own_audit() {
        // The binary runs this same scan in CI; keeping a unit-level copy
        // makes `cargo test` catch regressions without the binary.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (violations, files) = audit_workspace(&root).unwrap();
        assert!(files > 50, "walked only {files} files — wrong root?");
        assert!(
            violations.is_empty(),
            "{} violations:\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
