//! Ablation: the within-pack DAR reordering.
//!
//! STS-3 differs from a plain "coloring of G2" scheme by reordering the
//! super-rows of each pack with RCM on the pack's DAR graph (Section 3.4).
//! This ablation builds STS-3 with and without that step and compares both the
//! consecutive-input-sharing fraction it is designed to improve and the
//! simulated solve time.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::{Ordering, SimulatedExecutor, StsBuilder, SuperRowSizing};
use sts_numa::Schedule;

#[derive(Serialize)]
struct Row {
    machine: String,
    matrix: String,
    with_dar_rcm_cycles: f64,
    without_dar_rcm_cycles: f64,
    speedup_from_dar_rcm: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        let exec = SimulatedExecutor::new(machine.topology());
        println!(
            "\nAblation: within-pack DAR RCM on/off — {} model, {} cores",
            machine.name(),
            cores
        );
        println!(
            "{:<5} {:>16} {:>16} {:>10}",
            "mat", "with (cycles)", "without", "gain"
        );
        for m in &suite.matrices {
            let l = m.lower().unwrap();
            let build = |dar_rcm: bool| {
                StsBuilder::new(3)
                    .ordering(Ordering::Coloring)
                    .super_row_sizing(SuperRowSizing::Rows(
                        machine.rows_per_super_row_scaled(config.scale),
                    ))
                    .within_pack_rcm(dar_rcm)
                    .build(&l)
                    .unwrap()
            };
            let with = exec.simulate(&build(true), cores, Schedule::Guided { min_chunk: 1 });
            let without = exec.simulate(&build(false), cores, Schedule::Guided { min_chunk: 1 });
            let gain = without.total_cycles / with.total_cycles;
            println!(
                "{:<5} {:>16.0} {:>16.0} {:>10.2}",
                m.id.label(),
                with.total_cycles,
                without.total_cycles,
                gain
            );
            rows.push(Row {
                machine: machine.name().to_string(),
                matrix: m.id.label().to_string(),
                with_dar_rcm_cycles: with.total_cycles,
                without_dar_rcm_cycles: without.total_cycles,
                speedup_from_dar_rcm: gain,
            });
        }
    }
    harness::write_json(&config.out_dir, "ablation_dar_rcm", &rows);
}
