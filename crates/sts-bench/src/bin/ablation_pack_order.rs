//! Ablation: ordering packs by increasing size.
//!
//! Section 3.2 proposes processing packs in increasing order of their sizes to
//! increase the reuse of components from earlier packs. This ablation builds
//! STS-3 with and without that ordering and compares the simulated solve time.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::{Ordering, SimulatedExecutor, StsBuilder, SuperRowSizing};
use sts_numa::Schedule;

#[derive(Serialize)]
struct Row {
    machine: String,
    matrix: String,
    ordered_cycles: f64,
    unordered_cycles: f64,
    speedup_from_ordering: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        let exec = SimulatedExecutor::new(machine.topology());
        println!(
            "\nAblation: pack ordering by size on/off — {} model, {} cores",
            machine.name(),
            cores
        );
        println!(
            "{:<5} {:>16} {:>16} {:>10}",
            "mat", "ordered", "natural", "gain"
        );
        for m in &suite.matrices {
            let l = m.lower().unwrap();
            let build = |ordered: bool| {
                StsBuilder::new(3)
                    .ordering(Ordering::Coloring)
                    .super_row_sizing(SuperRowSizing::Rows(
                        machine.rows_per_super_row_scaled(config.scale),
                    ))
                    .order_packs_by_size(ordered)
                    .build(&l)
                    .unwrap()
            };
            let ordered = exec.simulate(&build(true), cores, Schedule::Guided { min_chunk: 1 });
            let natural = exec.simulate(&build(false), cores, Schedule::Guided { min_chunk: 1 });
            let gain = natural.total_cycles / ordered.total_cycles;
            println!(
                "{:<5} {:>16.0} {:>16.0} {:>10.2}",
                m.id.label(),
                ordered.total_cycles,
                natural.total_cycles,
                gain
            );
            rows.push(Row {
                machine: machine.name().to_string(),
                matrix: m.id.label().to_string(),
                ordered_cycles: ordered.total_cycles,
                unordered_cycles: natural.total_cycles,
                speedup_from_ordering: gain,
            });
        }
    }
    harness::write_json(&config.out_dir, "ablation_pack_order", &rows);
}
