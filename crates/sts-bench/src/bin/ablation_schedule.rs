//! Ablation: intra-pack loop schedule.
//!
//! The paper tunes `schedule(dynamic, 32)` for the flat methods and
//! `schedule(guided, 1)` for the 3-level methods. This ablation runs STS-3
//! under static, dynamic (chunk 1 and 32) and guided schedules on both machine
//! models and reports the simulated solve time of the whole suite.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::{Method, SimulatedExecutor};
use sts_numa::Schedule;

#[derive(Serialize)]
struct Row {
    machine: String,
    schedule: String,
    total_cycles: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let schedules: [(&str, Schedule); 4] = [
        ("static", Schedule::Static),
        ("dynamic,1", Schedule::Dynamic { chunk: 1 }),
        ("dynamic,32", Schedule::Dynamic { chunk: 32 }),
        ("guided,1", Schedule::Guided { min_chunk: 1 }),
    ];
    let mut rows = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        let exec = SimulatedExecutor::new(machine.topology());
        println!(
            "\nAblation: STS-3 intra-pack schedule — {} model, {} cores, whole suite",
            machine.name(),
            cores
        );
        let structures: Vec<_> = suite
            .matrices
            .iter()
            .map(|m| {
                Method::Sts3
                    .build(
                        &m.lower().unwrap(),
                        machine.rows_per_super_row_scaled(config.scale),
                    )
                    .unwrap()
            })
            .collect();
        println!("{:<12} {:>18}", "schedule", "total cycles");
        for (name, schedule) in schedules {
            let total: f64 = structures
                .iter()
                .map(|s| exec.simulate(s, cores, schedule).total_cycles)
                .sum();
            println!("{name:<12} {total:>18.0}");
            rows.push(Row {
                machine: machine.name().to_string(),
                schedule: name.to_string(),
                total_cycles: total,
            });
        }
    }
    harness::write_json(&config.out_dir, "ablation_schedule", &rows);
}
