//! Ablation: sensitivity of STS-3 to the super-row size.
//!
//! The paper fixes 80 rows per super-row on the Intel node and 320 on the AMD
//! node ("to correspond to bigger L2 cache on AMD") and suggests testing ±1
//! neighbouring values of k in practice. This ablation sweeps the super-row
//! size and reports the simulated solve time of STS-3 on both machine models
//! for a representative subset of the suite.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::{Method, SimulatedExecutor};
use sts_matrix::suite::SuiteId;
use sts_matrix::TestSuite;

#[derive(Serialize)]
struct Row {
    machine: String,
    matrix: String,
    rows_per_super_row: usize,
    total_cycles: f64,
    num_packs: usize,
}

fn main() {
    let config = parse_args();
    let suite = TestSuite::generate_subset(
        config.scale,
        &[SuiteId::G1, SuiteId::D2, SuiteId::D3, SuiteId::S1],
    )
    .expect("subset generation succeeds");
    let sizes = [10usize, 20, 40, 80, 160, 320, 640];
    let mut rows = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        let exec = SimulatedExecutor::new(machine.topology());
        println!(
            "\nAblation: STS-3 super-row size sweep — {} model, {} cores",
            machine.name(),
            cores
        );
        println!(
            "{:<5} {:>8} {:>14} {:>10}",
            "mat", "rows/SR", "cycles", "packs"
        );
        for m in &suite.matrices {
            let l = m.lower().unwrap();
            for &size in &sizes {
                let s = Method::Sts3.build(&l, size).unwrap();
                let rep = exec.simulate(&s, cores, harness::paper_schedule(Method::Sts3));
                println!(
                    "{:<5} {:>8} {:>14.0} {:>10}",
                    m.id.label(),
                    size,
                    rep.total_cycles,
                    s.num_packs()
                );
                rows.push(Row {
                    machine: machine.name().to_string(),
                    matrix: m.id.label().to_string(),
                    rows_per_super_row: size,
                    total_cycles: rep.total_cycles,
                    num_packs: s.num_packs(),
                });
            }
        }
    }
    harness::write_json(&config.out_dir, "ablation_superrow_size", &rows);
}
