//! Unsafe-audit lint: fails CI when any `unsafe` use lacks a `// SAFETY:`
//! comment, or when `unsafe` / `Ordering::Relaxed` appears outside the
//! audited-module allowlist (see [`sts_bench::audit`]).
//!
//! ```text
//! audit_lint [--root <dir>] [--advisory]
//! ```
//!
//! Exit codes: `0` when the workspace passes (or `--advisory` was given);
//! `1` when violations were found; `2` on unusable input (unreadable root,
//! bad flags), which must fail the job rather than pass it silently.
//!
//! `--advisory` prints the same report but always exits `0`, mirroring
//! `bench_gate`'s label-gated escape hatch.

use std::path::PathBuf;
use std::process::ExitCode;

use sts_bench::audit;

struct Args {
    root: PathBuf,
    advisory: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        root: PathBuf::from("."),
        advisory: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--root needs an argument".to_string())?;
                out.root = PathBuf::from(dir);
            }
            "--advisory" => out.advisory = true,
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("audit_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (violations, files) = match audit::audit_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit_lint: cannot walk {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if files == 0 {
        eprintln!(
            "audit_lint: no Rust sources under {} — wrong --root?",
            args.root.display()
        );
        return ExitCode::from(2);
    }
    if violations.is_empty() {
        println!("audit_lint: OK ({files} files audited)");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("audit_lint: {v}");
    }
    println!(
        "audit_lint: {} violation(s) across {files} files",
        violations.len()
    );
    if args.advisory {
        println!("audit_lint: advisory mode — exiting 0 despite violations");
        return ExitCode::SUCCESS;
    }
    ExitCode::from(1)
}
