//! Bench-regression gate: fails CI when the fresh `bench_smoke` record
//! regresses past the threshold against the committed baseline.
//!
//! ```text
//! bench_gate [--baseline bench/baseline.json] [--current bench/bench_smoke.json]
//!            [--max-regress-pct 25] [--advisory]
//! ```
//!
//! Exit codes: `0` when every gated field (see
//! [`sts_bench::gate::GATED_FIELDS`]) is within the threshold — or when the
//! baseline file is missing (bootstrap: the first push to `main` commits
//! one); `1` on a regression; `2` on unusable input (unreadable files,
//! malformed JSON, bad flags), which must fail the job rather than pass it
//! silently.
//!
//! `--advisory` prints the same report but always exits `0`; the workflow
//! passes it when the PR carries the `bench-override` label, so a known,
//! accepted regression (e.g. a correctness fix that costs wall time) can
//! land without deleting the gate. Pushes to `main` then refresh the
//! baseline, re-arming the gate at the new level.

use std::path::PathBuf;
use std::process::ExitCode;

use sts_bench::gate;

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    max_regress_pct: f64,
    advisory: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        baseline: PathBuf::from("bench/baseline.json"),
        current: PathBuf::from("bench/bench_smoke.json"),
        max_regress_pct: 25.0,
        advisory: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs an argument", args[*i - 1]))
        };
        match args[i].as_str() {
            "--baseline" => out.baseline = PathBuf::from(take(&mut i)?),
            "--current" => out.current = PathBuf::from(take(&mut i)?),
            "--max-regress-pct" => {
                out.max_regress_pct = take(&mut i)?
                    .parse::<f64>()
                    .map_err(|e| format!("--max-regress-pct: {e}"))?;
                if !out.max_regress_pct.is_finite() || out.max_regress_pct < 0.0 {
                    return Err("--max-regress-pct must be a non-negative number".into());
                }
            }
            "--advisory" => out.advisory = true,
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(out)
}

fn load(path: &std::path::Path) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(text.trim()).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.baseline.exists() {
        // Bootstrap: no baseline committed yet. The gate must not block the
        // PR that introduces it, and main's refresh step creates one.
        println!(
            "bench_gate: no baseline at {} — skipping (main refresh will commit one)",
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let report = gate::compare(&baseline, &current, args.max_regress_pct);
    println!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else if args.advisory {
        println!(
            "bench_gate: regression detected, but --advisory is set (override label) — passing"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: wall-time regression beyond +{:.0}% — if intended, apply the \
             bench-override label to the PR, which starts a fresh advisory run (see \
             .github/workflows/ci.yml)",
            args.max_regress_pct
        );
        ExitCode::FAILURE
    }
}
