//! Bench smoke: one JSON line tracking the solve-kernel trajectory per PR.
//!
//! Builds STS-3 on the 200×200 grid Laplacian and reports, as a single JSON
//! object on stdout:
//!
//! * simulated cycles on the modelled 16-core Intel node for the sequential
//!   reference (1 core), the pack-parallel kernel, the two-phase split
//!   kernel and the pack-pipelined (barrier-fused) kernel, plus the
//!   barrier-bound cycles of the split vs. pipelined schedules;
//! * measured wall-clock seconds on the host for the sequential, parallel,
//!   split, pipelined and batched (4 RHS, per-system, split and pipelined)
//!   kernels, and the pipelined-vs-split wall-time ratio;
//! * the end-to-end Krylov workload: SSOR-PCG on the same matrix with
//!   pipelined sweeps (`pcg_iters`, `pcg_wall_ns`, `pcg_precond_share`) —
//!   the trend line that catches regressions in what the triangular kernels
//!   are *for*, not just in the kernels themselves;
//! * the mixed-precision path: the identical SSOR-PCG solve with the
//!   preconditioner sweeps reading f32 value slabs (the gated
//!   `pcg_f32slab_wall_ns`, expected below `pcg_wall_ns` — the slabs halve
//!   the sweep's value traffic), the modelled per-row value traffic at both
//!   widths (`sim_bytes_per_row_f64` / `sim_bytes_per_row_f32`, the ~2×
//!   ratio), and the refinement passes an f32 triangular solve needs to
//!   reach the f64 answer (`f32_refinement_extra_iters`, gated absolutely
//!   at ≤ 2);
//! * the block-Krylov workload: block CG vs lockstep scalar CG on four
//!   correlated right-hand sides (`pcg_block_iters`,
//!   `pcg_block_lockstep_iters`, `pcg_block_steps`,
//!   `pcg_block_vs_lockstep_iter_ratio`, and the gated
//!   `pcg_block_wall_per_rhs_ns`) — the shared Krylov space must cut
//!   iterations, not just per-iteration cost;
//! * the preconditioner *setup* path: IC(0) construction wall time for both
//!   engines (`ic0_build_sequential_wall_ns` vs.
//!   `ic0_build_parallel_wall_ns`, the level-scheduled build on the pack
//!   hierarchy) plus the modelled counterpart
//!   (`sim_ic0_build_*_cycles`), after asserting the two factors are
//!   bitwise identical;
//! * the fault-tolerant path: recovery-ladder attempts burned restoring
//!   convergence on the Kershaw-perturbed operator (`recovery_attempts`),
//!   the per-solve cost of the clean-path guards
//!   (`pcg_guarded_overhead_ns`, gated at < 2% of `pcg_wall_ns`), and the
//!   wall cost of one `validate()` boundary pass (`spd_validate_wall_ns`)
//!   — the robustness tax trend lines;
//! * the observability tax: what a pipelined solve pays for an
//!   installed-but-disabled span recorder
//!   (`pcg_trace_disabled_overhead_ns`, gated at < 2% of `pcg_wall_ns`) —
//!   tracing must be free when it is off;
//! * the solver service: the cold path through the wire contract
//!   (`serve_cold_solve_wall_ns` — pattern analysis + factorization + first
//!   solve) vs. the warm cached path (`serve_warm_solve_wall_ns`), both
//!   gated — the structure/factor cache must keep the steady-state solve
//!   far below the cold one;
//! * the static schedule verifier: wall nanoseconds of one full
//!   `verify_schedule()` pass over the smoke structure and the total
//!   happens-before edges it certified (`verify_schedule_wall_ns`,
//!   `hb_edges_total`) — advisory trend lines, deliberately not gated.
//!
//! Run with `cargo run --release -p sts-bench --bin bench_smoke`. The output
//! is one line so CI logs diff cleanly across PRs.
//!
//! # Flags
//!
//! * `--json-path <FILE>` — additionally write the JSON line to `<FILE>`
//!   (missing parent directories are created). CI uses this to archive the
//!   record as a per-commit artifact, to append it to the
//!   `BENCH_trend.jsonl` job summary, and to feed the `bench_gate`
//!   regression check against the committed `bench/baseline.json`.

use std::sync::Arc;
use std::time::Instant;

use serde::{Serialize, Value};
use sts_bench::harness::{self, Machine};
use sts_core::{Method, ParallelSolver, PrecisionPolicy, SimulatedExecutor, SolveOptions};
use sts_krylov::{
    solve_refined, Identity, KrylovWorkspace, Pcg, Preconditioner, RefineOptions, RobustPcg,
    SpdSystem, Ssor, SweepEngine,
};
use sts_matrix::generators;
use sts_serve::protocol::{float_array, obj, render, usize_array};
use sts_serve::{ServiceConfig, SolverService};
use sts_trace::SpanRecorder;

#[derive(Serialize)]
struct Smoke {
    matrix: String,
    n: usize,
    nnz: usize,
    method: String,
    threads: usize,
    sim_cores: usize,
    sim_sequential_cycles: f64,
    sim_parallel_cycles: f64,
    sim_split_cycles: f64,
    sim_pipelined_cycles: f64,
    sim_split_compute_speedup: f64,
    /// Barrier-bound cycles of the split schedule (two barriers per chained
    /// pack) vs. the pipelined schedule (one pool barrier per solve).
    sim_split_sync_cycles: f64,
    sim_pipelined_sync_cycles: f64,
    /// Modelled end-to-end gain of barrier fusion.
    sim_pipelined_vs_split_speedup: f64,
    wall_sequential_s: f64,
    wall_sequential_split_s: f64,
    wall_parallel_s: f64,
    wall_parallel_split_s: f64,
    wall_parallel_pipelined_s: f64,
    /// Measured wall-time ratio split / pipelined (≥ 1.0 means the fused
    /// kernel is no slower than the barriered one). Taken from a dedicated
    /// interleaved min-of-blocks measurement, so it is noise-robust but not
    /// directly comparable with the mean-based `wall_*` fields.
    wall_pipelined_vs_split_speedup: f64,
    wall_batch4_per_rhs_s: f64,
    wall_batch4_pipelined_per_rhs_s: f64,
    /// SSOR-PCG (pipelined sweeps, 1e-8 relative) on the same matrix:
    /// iterations to convergence, best-of-blocks wall nanoseconds per solve,
    /// and the fraction of solve time spent inside the preconditioner.
    pcg_iters: usize,
    pcg_wall_ns: f64,
    pcg_precond_share: f64,
    /// The identical SSOR-PCG solve with the preconditioner sweeps reading
    /// the f32 value slabs (f64 accumulation) — same best-of-5 protocol as
    /// `pcg_wall_ns`, so the pair is directly comparable. Gated, and
    /// expected *below* the f64 field: the slabs halve the bandwidth-bound
    /// sweep's value traffic.
    pcg_f32slab_wall_ns: f64,
    /// Modelled compulsory value-slab traffic per row of one forward sweep
    /// at each storage width (`SimulatedExecutor::model_solve_bytes`) — the
    /// ~2× reduction the mixed-precision kernels chase, as arithmetic over
    /// the split layout rather than a measurement.
    sim_bytes_per_row_f64: f64,
    sim_bytes_per_row_f32: f64,
    /// Correction passes `solve_refined` needed to drive an f32-slab
    /// triangular solve on the smoke operator to its 1e-12 relative
    /// residual. Gated absolutely at ≤ 2: the f32 slabs may trade memory
    /// traffic, never accuracy.
    f32_refinement_extra_iters: usize,
    /// Block CG vs lockstep scalar CG on the same operator with 4
    /// correlated right-hand sides (a Krylov chain `b_q ∝ A^q c` plus a 1%
    /// independent rough part each): total per-system iterations of the
    /// shared-Krylov-space block driver, of the lockstep scalar driver, the
    /// shared block steps, and the iteration ratio (< 1.0 means the block
    /// space converged in fewer iterations, the headline win). The wall
    /// field is best-of-blocks nanoseconds per right-hand side of the block
    /// solve and is gated.
    pcg_block_iters: usize,
    pcg_block_lockstep_iters: usize,
    pcg_block_steps: usize,
    pcg_block_vs_lockstep_iter_ratio: f64,
    pcg_block_wall_per_rhs_ns: f64,
    /// IC(0) preconditioner setup on the same operator, both engines
    /// (best-of-blocks wall nanoseconds per factorization; the factors are
    /// bitwise identical, asserted before timing): the sequential
    /// up-looking sweep vs. the level-scheduled build on the pack
    /// hierarchy, plus the modelled cycles on the 16-core Intel node.
    /// `ic0_build_engine` records what the default setup path actually ran
    /// on this host — `parallel_ic0` takes a sequential fast path when the
    /// pool has a single worker.
    ic0_build_engine: String,
    ic0_build_sequential_wall_ns: f64,
    ic0_build_parallel_wall_ns: f64,
    ic0_build_parallel_vs_sequential_speedup: f64,
    sim_ic0_build_sequential_cycles: f64,
    sim_ic0_build_parallel_cycles: f64,
    sim_ic0_build_speedup: f64,
    /// The fault-tolerant solve path: rungs the recovery ladder burned
    /// (abandoned attempts) restoring convergence on the Kershaw-perturbed
    /// operator — the IC(0)-breaking-but-SPD shape. A growing count means
    /// the default shift schedule got weaker.
    recovery_attempts: usize,
    /// Best-of-blocks wall nanoseconds of the guards a *clean* PCG solve
    /// pays per call: the tolerance clamp plus the `pcg_iters + 1`
    /// non-finite residual checks — the exact scalar operations this
    /// solve's guard path executes, measured in isolation. Gated against
    /// `pcg_wall_ns` (< 2%) so the per-solve robustness tax can never
    /// quietly grow into the hot path.
    pcg_guarded_overhead_ns: f64,
    /// Best-of-blocks wall nanoseconds an installed-but-*disabled*
    /// `SpanRecorder` adds to one pipelined triangular solve — the paired
    /// difference between a traced-off solver and a plain one, clamped at
    /// zero. Gated against `pcg_wall_ns` (< 2%): observability must stay
    /// free when it is off.
    pcg_trace_disabled_overhead_ns: f64,
    /// Best-of-blocks wall nanoseconds of one `CsrMatrix::validate` pass
    /// over the smoke operator — the price of the non-finite/SPD-shape
    /// guard at the `SpdSystem::build` boundary. Informational: it is a
    /// once-per-build cost, amortised over every solve on the system.
    spd_validate_wall_ns: f64,
    /// The solver service's cold path, measured once through the wire
    /// contract on an in-process `SolverService`: `submit_pattern` (full
    /// STS analysis) + `submit_values` (warm rebind + IC(0) factorization)
    /// + the first solve. Gated: this is what a new pattern costs a client.
    serve_cold_solve_wall_ns: f64,
    /// The service's warm path (best-of-blocks): one `solve` request
    /// against the cached structure and factor — JSON parsing, workspace
    /// checkout, the PCG solve, and response rendering. Gated: this is the
    /// steady-state cost a streaming client pays per solve, and it must
    /// stay far below the cold path for the cache to be worth anything.
    serve_warm_solve_wall_ns: f64,
    /// Wall nanoseconds of one full static schedule verification
    /// ([`sts_core::StsStructure::verify_schedule`]: every thread count of
    /// the sweep × both sweep directions, plus the factor schedules) on the
    /// smoke structure. Advisory trend line — deliberately *not* in
    /// `GATED_FIELDS`: the verifier runs once per structure build (and in CI
    /// debug builds), so its cost tracks analysis, never the solve hot path.
    verify_schedule_wall_ns: f64,
    /// Task-granularity happens-before edges across the verified schedules
    /// — the size of the synchronisation relation the proof covers.
    /// Advisory: a step change means the schedule shape changed.
    hb_edges_total: f64,
}

fn main() {
    let json_path = parse_json_path();
    let a = generators::grid2d_laplacian(200, 200).expect("grid dimensions are valid");
    let l = generators::lower_operand(&a).expect("laplacian has a solvable lower operand");
    let threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    // Enough repeats to hold the wall-time ratios steady on a noisy
    // single-core CI host (the whole timed section stays well under a
    // second).
    let repeats = 150;

    let run = harness::build_methods_single(&l, Method::Sts3, 80);
    let s = &run.structure;

    // Simulated machine: the paper's 16-core Intel figure configuration.
    let machine = Machine::Intel;
    let sim_cores = machine.figure_cores();
    let sim_seq = harness::simulate(machine, &run, 1);
    let sim_par = harness::simulate(machine, &run, sim_cores);
    let sim_split = harness::simulate_split(machine, &run, sim_cores);
    let sim_piped = harness::simulate_pipelined(machine, &run, sim_cores);

    // Host wall-clock.
    let b = vec![1.0; s.n()];
    let wall_sequential_s = time_per_solve(repeats, || s.solve_sequential(&b).unwrap());
    let wall_sequential_split_s = time_per_solve(repeats, || s.solve_sequential_split(&b).unwrap());
    // Every wall_* field is a mean over `repeats` solves, comparable with
    // the wall_* series of earlier commits.
    let wall_parallel_s = harness::wallclock_seconds(&run, threads, repeats);
    let wall_parallel_split_s = harness::wallclock_seconds_split(&run, threads, repeats);
    let wall_parallel_pipelined_s = harness::wallclock_seconds_pipelined(&run, threads, repeats);
    let solver = ParallelSolver::new(threads, harness::paper_schedule(run.method));
    // The split-vs-pipelined ratio is the trend line CI watches for the
    // barrier-fusion win, so it gets its own dedicated measurement:
    // interleaved (process-level drift cancels out of the ratio instead of
    // landing on whichever kernel was timed last) and min-of-blocks
    // (scheduler noise on the typically single-core host only ever adds
    // time). The mean-based wall_* fields above are *not* comparable with
    // these paired numbers. Measured before the batch section so the
    // multi-RHS buffers don't perturb the allocator state under it.
    let (paired_split_s, paired_piped_s) = time_pair(
        repeats,
        || solver.solve_split(s, &b).unwrap(),
        || solver.solve_pipelined(s, &b).unwrap(),
    );
    let nrhs = 4;
    let b4 = vec![1.0; s.n() * nrhs];
    let wall_batch4_s = time_per_solve(repeats, || solver.solve_batch(s, &b4, nrhs).unwrap());
    let wall_batch4_piped_s = time_per_solve(repeats, || {
        solver.solve_batch_pipelined(s, &b4, nrhs).unwrap()
    });

    // End-to-end Krylov workload: SSOR-PCG with pipelined sweeps on the same
    // operator. One warm-up solve builds the lazy layouts; the reported wall
    // time is the best of a few solves (scheduler noise only adds time).
    let sys = SpdSystem::build(&a, Method::Sts3, 80).expect("laplacian binds to STS-3");
    let pcg = Pcg::new(threads, harness::paper_schedule(run.method));
    let mut pre = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
    let x_pcg: Vec<f64> = (0..sys.n())
        .map(|i| ((i * 7919) % 101) as f64 * 0.02 - 1.0)
        .collect();
    let b_pcg = sts_matrix::ops::spmv(&a, &x_pcg).expect("dimensions match");
    let mut ws = KrylovWorkspace::new(sys.n());
    let mut best = pcg
        .solve(&sys, &mut pre, &b_pcg, &mut ws)
        .expect("warm-up PCG solve succeeds");
    for _ in 0..4 {
        let out = pcg
            .solve(&sys, &mut pre, &b_pcg, &mut ws)
            .expect("PCG solve succeeds");
        assert_eq!(out.iterations, best.iterations, "PCG must be deterministic");
        if out.seconds_total < best.seconds_total {
            best = out;
        }
    }

    // The mixed-precision trend lines. First the same SSOR-PCG solve with
    // the preconditioner sweeps on the f32 value slabs: `solve_with`
    // switches the slabs and the first call pays the one-time demotion, so
    // it doubles as the warm-up; the reported wall time follows the same
    // best-of-5 protocol as `pcg_wall_ns` so the f32-below-f64 comparison
    // the gate trends is apples to apples. The preconditioner is restored to
    // f64 afterwards — every later section must keep measuring the default
    // path.
    let f32_opts = SolveOptions::default().with_precision(PrecisionPolicy::ValuesF32WithRefinement);
    let mut best_f32 = pcg
        .solve_with(&sys, &mut pre, &b_pcg, &mut ws, &f32_opts)
        .expect("warm-up f32-slab PCG solve succeeds");
    for _ in 0..4 {
        let out = pcg
            .solve_with(&sys, &mut pre, &b_pcg, &mut ws, &f32_opts)
            .expect("f32-slab PCG solve succeeds");
        assert_eq!(
            out.iterations, best_f32.iterations,
            "f32-slab PCG must be deterministic"
        );
        if out.seconds_total < best_f32.seconds_total {
            best_f32 = out;
        }
    }
    pre.set_precision(PrecisionPolicy::ValuesF64);
    // The modelled counterpart: compulsory value-slab traffic per row of one
    // sweep at each storage width — pure arithmetic over the split layout.
    let bytes_exec = SimulatedExecutor::new(machine.topology());
    let bytes_f64 = bytes_exec.model_solve_bytes(s, PrecisionPolicy::ValuesF64);
    let bytes_f32 = bytes_exec.model_solve_bytes(s, PrecisionPolicy::ValuesF32WithRefinement);
    // And the accuracy side of the trade: how many correction passes drive
    // an f32-slab triangular solve on this operator back to the f64 answer.
    let refined = solve_refined(&solver, s, &b, &f32_opts, &RefineOptions::default())
        .expect("the f32-slab smoke solve refines");
    assert!(
        refined.converged,
        "refinement must converge on the smoke operator"
    );

    // Block CG vs lockstep scalar CG: four correlated right-hand sides
    // (Krylov chain + 1% rough parts — the "family of similar load cases"
    // shape block solvers exist for), plain CG so the iteration comparison
    // isolates the shared Krylov space itself. Deterministic, so the
    // iteration counts are exact trend lines; the block wall time is
    // best-of-5 per solve like the scalar PCG field.
    let nrhs_blk = 4;
    let b_blk =
        generators::correlated_rhs_chain(&a, nrhs_blk).expect("workload binds to the operator");
    let mut ws_blk = KrylovWorkspace::with_nrhs(sys.n(), nrhs_blk);
    let lockstep = pcg
        .solve_batch(&sys, &mut Identity, &b_blk, nrhs_blk, &mut ws_blk)
        .expect("lockstep CG solves the correlated batch");
    let mut best_blk = pcg
        .solve_block(&sys, &mut Identity, &b_blk, nrhs_blk, &mut ws_blk)
        .expect("block CG solves the correlated batch");
    assert!(
        best_blk.converged.iter().all(|&c| c) && lockstep.converged.iter().all(|&c| c),
        "both batch drivers must converge on the smoke operator"
    );
    for _ in 0..4 {
        let out = pcg
            .solve_block(&sys, &mut Identity, &b_blk, nrhs_blk, &mut ws_blk)
            .expect("block CG solve succeeds");
        assert_eq!(
            out.total_iterations(),
            best_blk.total_iterations(),
            "block CG must be deterministic"
        );
        if out.seconds_total < best_blk.seconds_total {
            best_blk = out;
        }
    }
    let lockstep_total: usize = lockstep.iterations.iter().sum();

    // Preconditioner setup: sequential vs. level-scheduled IC(0) on the
    // system's pack hierarchy. The factors are bitwise identical by
    // construction — assert it once, then time the pair interleaved
    // (min-of-blocks, same protocol as the kernel ratio above). The
    // factorization is ~10× a solve, so it gets a smaller block budget.
    let f_seq = sts_matrix::factor::ic0(sys.matrix()).expect("laplacian is SPD");
    let f_par = pcg
        .solver()
        .parallel_ic0(sys.structure(), sys.matrix())
        .expect("laplacian is SPD");
    assert_eq!(
        f_seq.values(),
        f_par.values(),
        "setup engines must produce bitwise identical factors"
    );
    let (ic0_seq_s, ic0_par_s) = time_pair_blocks(
        20,
        2,
        || sts_matrix::factor::ic0(sys.matrix()).unwrap(),
        || {
            pcg.solver()
                .parallel_ic0(sys.structure(), sys.matrix())
                .unwrap()
        },
    );
    let sim_ic0_seq = harness::simulate_ic0_build(machine, &run, 1);
    let sim_ic0_par = harness::simulate_ic0_build(machine, &run, sim_cores);

    // Fault-tolerant path: the recovery ladder on the Kershaw-perturbed
    // operator (SPD but IC(0)-fatal). The attempt count is a trend line for
    // the default shift schedule; the solve must converge.
    let (a_kershaw, _) = sts_bench::faultinject::kershaw_cycle(&a, 200, 200, 7);
    let sys_kershaw =
        SpdSystem::build(&a_kershaw, Method::Sts3, 80).expect("perturbed operator stays SPD");
    let robust = RobustPcg::new(Pcg::new(threads, harness::paper_schedule(run.method)));
    let mut ws_kershaw = KrylovWorkspace::new(sys_kershaw.n());
    let b_kershaw = vec![1.0; sys_kershaw.n()];
    let recovered = robust
        .solve(&sys_kershaw, &b_kershaw, &mut ws_kershaw)
        .expect("the ladder must reach a working rung");
    assert!(
        recovered.outcome.converged,
        "recovery must restore convergence on the perturbed operator"
    );
    let recovery_attempts = recovered.report.attempts.len();

    // The guard tax, split by where it is paid. Per solve: the tolerance
    // clamp plus one finite check per residual norm — the scalar branch
    // sequence the guarded PCG loop adds, on opaque values so it cannot be
    // folded away. Per build: one full validate() pass.
    let norms: Vec<f64> = (0..=best.iterations).map(|i| 1.0 + i as f64).collect();
    let (guard_s, _) = time_pair_blocks(
        2000,
        200,
        || {
            let b_norm = std::hint::black_box(1.0f64);
            let mut clean = b_norm.is_finite();
            for &r in &norms {
                clean &= std::hint::black_box(r).is_finite();
            }
            std::hint::black_box(clean)
        },
        || (),
    );
    let (validate_s, _) = time_pair_blocks(20, 5, || a.validate().unwrap(), || ());

    // The disabled-tracing tax: the same pipelined kernel with a span
    // recorder installed but never enabled, paired against the plain solver
    // (interleaved min-of-blocks, like every other ratio here). The
    // difference is the whole cost observability charges a production solve
    // that has tracing wired up but off.
    let mut solver_traced = ParallelSolver::new(threads, harness::paper_schedule(run.method));
    solver_traced.set_trace_recorder(Some(Arc::new(SpanRecorder::new(1024))));
    let (piped_plain_s, piped_traced_s) = time_pair(
        repeats,
        || solver.solve_pipelined(s, &b).unwrap(),
        || solver_traced.solve_pipelined(s, &b).unwrap(),
    );
    let trace_overhead_ns = ((piped_traced_s - piped_plain_s) * 1e9).max(0.0);

    // The solver service, through the wire contract on an in-process
    // `SolverService` (no sockets, so the numbers isolate the service
    // layer): the cold path pays analysis + factorization + first solve
    // once; the warm path is the steady-state cached solve a streaming
    // client sees. The cache's entire point is warm ≪ cold — asserted here,
    // trended by the gate.
    let mut service = SolverService::new(ServiceConfig::default());
    let pattern_req = render(&obj(vec![
        ("v", Value::UInt(1)),
        ("id", Value::UInt(1)),
        ("op", Value::Str("submit_pattern".to_string())),
        ("n", Value::UInt(a.nrows() as u64)),
        ("row_ptr", usize_array(a.row_ptr())),
        ("col_idx", usize_array(a.col_idx())),
        ("method", Value::Str("STS-3".to_string())),
        ("rows_per_super_row", Value::UInt(80)),
    ]));
    let serve_cold_start = Instant::now();
    let reply = service.handle_line(&pattern_req);
    assert!(
        reply.line.contains("\"ok\":true"),
        "pattern submits cleanly"
    );
    let pattern = reply
        .line
        .split("\"pattern\":\"")
        .nth(1)
        .and_then(|rest| rest.get(..16))
        .expect("submit_pattern returns the key")
        .to_string();
    let values_req = render(&obj(vec![
        ("v", Value::UInt(1)),
        ("id", Value::UInt(2)),
        ("op", Value::Str("submit_values".to_string())),
        ("pattern", Value::Str(pattern.clone())),
        ("values", float_array(a.values())),
    ]));
    assert!(service
        .handle_line(&values_req)
        .line
        .contains("\"ok\":true"));
    let solve_req = render(&obj(vec![
        ("v", Value::UInt(1)),
        ("id", Value::UInt(3)),
        ("op", Value::Str("solve".to_string())),
        ("pattern", Value::Str(pattern)),
        ("b", float_array(&b_pcg)),
    ]));
    let reply = service.handle_line(&solve_req);
    assert!(
        reply.line.contains("\"converged\":true"),
        "the served smoke solve converges"
    );
    let serve_cold_s = serve_cold_start.elapsed().as_secs_f64();
    let mut serve_warm_s = f64::INFINITY;
    for _ in 0..20 {
        let start = Instant::now();
        for _ in 0..5 {
            let reply = service.handle_line(&solve_req);
            debug_assert!(reply.line.contains("\"cache\":\"warm\""));
        }
        serve_warm_s = serve_warm_s.min(start.elapsed().as_secs_f64() / 5.0);
    }
    assert!(
        serve_warm_s < serve_cold_s,
        "the warm service path must undercut the cold path (warm {serve_warm_s:.3e}s vs cold {serve_cold_s:.3e}s)"
    );

    // The static schedule verifier on the smoke structure (see the field
    // docs; advisory, not gated).
    let verify_start = Instant::now();
    let proof = s
        .verify_schedule()
        .expect("the smoke schedule verifies race- and deadlock-free");
    let verify_schedule_wall_ns = verify_start.elapsed().as_secs_f64() * 1e9;

    let smoke = Smoke {
        matrix: "grid2d_laplacian_200x200".to_string(),
        n: s.n(),
        nnz: s.nnz(),
        method: run.method.label().to_string(),
        threads,
        sim_cores,
        sim_sequential_cycles: sim_seq.total_cycles,
        sim_parallel_cycles: sim_par.total_cycles,
        sim_split_cycles: sim_split.total_cycles,
        sim_pipelined_cycles: sim_piped.total_cycles,
        sim_split_compute_speedup: sim_par.compute_cycles / sim_split.compute_cycles,
        sim_split_sync_cycles: sim_split.sync_cycles,
        sim_pipelined_sync_cycles: sim_piped.sync_cycles,
        sim_pipelined_vs_split_speedup: sim_split.total_cycles / sim_piped.total_cycles,
        wall_sequential_s,
        wall_sequential_split_s,
        wall_parallel_s,
        wall_parallel_split_s,
        wall_parallel_pipelined_s,
        wall_pipelined_vs_split_speedup: paired_split_s / paired_piped_s,
        wall_batch4_per_rhs_s: wall_batch4_s / nrhs as f64,
        wall_batch4_pipelined_per_rhs_s: wall_batch4_piped_s / nrhs as f64,
        pcg_iters: best.iterations,
        // The driver's integer clock (PcgOutcome::wall_ns) — the same value
        // the service metrics line reports, not an f64 re-derivation.
        pcg_wall_ns: best.wall_ns as f64,
        pcg_precond_share: best.precond_share(),
        pcg_f32slab_wall_ns: best_f32.wall_ns as f64,
        sim_bytes_per_row_f64: bytes_f64.value_bytes_per_row(),
        sim_bytes_per_row_f32: bytes_f32.value_bytes_per_row(),
        f32_refinement_extra_iters: refined.refine_iterations,
        pcg_block_iters: best_blk.total_iterations(),
        pcg_block_lockstep_iters: lockstep_total,
        pcg_block_steps: best_blk.block_steps,
        pcg_block_vs_lockstep_iter_ratio: best_blk.total_iterations() as f64
            / lockstep_total as f64,
        pcg_block_wall_per_rhs_ns: best_blk.seconds_total * 1e9 / nrhs_blk as f64,
        ic0_build_engine: if threads > 1 {
            "parallel".to_string()
        } else {
            "parallel-seq-fastpath".to_string()
        },
        ic0_build_sequential_wall_ns: ic0_seq_s * 1e9,
        ic0_build_parallel_wall_ns: ic0_par_s * 1e9,
        ic0_build_parallel_vs_sequential_speedup: ic0_seq_s / ic0_par_s,
        sim_ic0_build_sequential_cycles: sim_ic0_seq.total_cycles,
        sim_ic0_build_parallel_cycles: sim_ic0_par.total_cycles,
        sim_ic0_build_speedup: sim_ic0_seq.total_cycles / sim_ic0_par.total_cycles,
        recovery_attempts,
        pcg_guarded_overhead_ns: guard_s * 1e9,
        pcg_trace_disabled_overhead_ns: trace_overhead_ns,
        spd_validate_wall_ns: validate_s * 1e9,
        serve_cold_solve_wall_ns: serve_cold_s * 1e9,
        serve_warm_solve_wall_ns: serve_warm_s * 1e9,
        verify_schedule_wall_ns,
        hb_edges_total: proof.hb_edges as f64,
    };
    let line = serde_json::to_string(&smoke).expect("smoke record serialises");
    println!("{line}");
    if let Some(path) = json_path {
        harness::write_json_line(&path, &line).expect("bench json is writable");
        eprintln!("[bench json written to {}]", path.display());
    }
}

/// Parses `--json-path <FILE>` (the only flag this binary takes).
fn parse_json_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut path = None;
    while i < args.len() {
        match args[i].as_str() {
            "--json-path" => {
                i += 1;
                match args.get(i) {
                    Some(p) => path = Some(std::path::PathBuf::from(p)),
                    None => {
                        // Exit non-zero: CI relies on the file existing, so a
                        // silently dropped record must fail the job.
                        eprintln!("--json-path needs a file argument");
                        std::process::exit(2);
                    }
                }
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
        i += 1;
    }
    path
}

fn time_per_solve<O>(repeats: usize, mut solve: impl FnMut() -> O) -> f64 {
    let _ = solve(); // warm-up
    let start = Instant::now();
    for _ in 0..repeats {
        let _ = solve();
    }
    start.elapsed().as_secs_f64() / repeats as f64
}

/// Times two kernels in small alternating blocks and reports each kernel's
/// *fastest* per-solve block time. Interleaving cancels slow process-level
/// drift out of the ratio, and the minimum is robust against scheduler
/// interrupts, which only ever add time (this host is typically one core).
fn time_pair<O1, O2>(
    repeats: usize,
    solve_a: impl FnMut() -> O1,
    solve_b: impl FnMut() -> O2,
) -> (f64, f64) {
    // More rounds than the mean-based fields use: the minimum converges on
    // the true kernel cost as long as *some* block of each kernel runs
    // undisturbed, so the budget buys robustness against sustained host
    // load, not just isolated interrupts.
    let block = 5usize;
    time_pair_blocks(repeats.div_ceil(block).max(60), block, solve_a, solve_b)
}

/// [`time_pair`] with an explicit block/round budget, for operations too
/// expensive for the default one (the IC(0) factorizations).
fn time_pair_blocks<O1, O2>(
    rounds: usize,
    block: usize,
    mut solve_a: impl FnMut() -> O1,
    mut solve_b: impl FnMut() -> O2,
) -> (f64, f64) {
    let _ = solve_a(); // warm-ups (also force the lazy split layout)
    let _ = solve_b();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..block {
            let _ = solve_a();
        }
        best_a = best_a.min(start.elapsed().as_secs_f64() / block as f64);
        let start = Instant::now();
        for _ in 0..block {
            let _ = solve_b();
        }
        best_b = best_b.min(start.elapsed().as_secs_f64() / block as f64);
    }
    (best_a, best_b)
}
