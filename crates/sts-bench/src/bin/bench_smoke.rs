//! Bench smoke: one JSON line tracking the solve-kernel trajectory per PR.
//!
//! Builds STS-3 on the 200×200 grid Laplacian and reports, as a single JSON
//! object on stdout:
//!
//! * simulated cycles on the modelled 16-core Intel node for the sequential
//!   reference (1 core), the pack-parallel kernel and the two-phase split
//!   kernel;
//! * measured wall-clock seconds on the host for the sequential, parallel,
//!   split and batched (4 RHS, per-system) kernels.
//!
//! Run with `cargo run --release -p sts-bench --bin bench_smoke`. The output
//! is one line so CI logs diff cleanly across PRs.

use std::time::Instant;

use serde::Serialize;
use sts_bench::harness::{self, Machine};
use sts_core::{Method, ParallelSolver};
use sts_matrix::generators;

#[derive(Serialize)]
struct Smoke {
    matrix: String,
    n: usize,
    nnz: usize,
    method: String,
    threads: usize,
    sim_cores: usize,
    sim_sequential_cycles: f64,
    sim_parallel_cycles: f64,
    sim_split_cycles: f64,
    sim_split_compute_speedup: f64,
    wall_sequential_s: f64,
    wall_sequential_split_s: f64,
    wall_parallel_s: f64,
    wall_parallel_split_s: f64,
    wall_batch4_per_rhs_s: f64,
}

fn main() {
    let a = generators::grid2d_laplacian(200, 200).expect("grid dimensions are valid");
    let l = generators::lower_operand(&a).expect("laplacian has a solvable lower operand");
    let threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let repeats = 30;

    let run = harness::build_methods_single(&l, Method::Sts3, 80);
    let s = &run.structure;

    // Simulated machine: the paper's 16-core Intel figure configuration.
    let machine = Machine::Intel;
    let sim_cores = machine.figure_cores();
    let sim_seq = harness::simulate(machine, &run, 1);
    let sim_par = harness::simulate(machine, &run, sim_cores);
    let sim_split = harness::simulate_split(machine, &run, sim_cores);

    // Host wall-clock.
    let b = vec![1.0; s.n()];
    let wall_sequential_s = time_per_solve(repeats, || s.solve_sequential(&b).unwrap());
    let wall_sequential_split_s = time_per_solve(repeats, || s.solve_sequential_split(&b).unwrap());
    let wall_parallel_s = harness::wallclock_seconds(&run, threads, repeats);
    let wall_parallel_split_s = harness::wallclock_seconds_split(&run, threads, repeats);
    let nrhs = 4;
    let b4 = vec![1.0; s.n() * nrhs];
    let solver = ParallelSolver::new(threads, harness::paper_schedule(run.method));
    let wall_batch4_s = time_per_solve(repeats, || solver.solve_batch(s, &b4, nrhs).unwrap());

    let smoke = Smoke {
        matrix: "grid2d_laplacian_200x200".to_string(),
        n: s.n(),
        nnz: s.nnz(),
        method: run.method.label().to_string(),
        threads,
        sim_cores,
        sim_sequential_cycles: sim_seq.total_cycles,
        sim_parallel_cycles: sim_par.total_cycles,
        sim_split_cycles: sim_split.total_cycles,
        sim_split_compute_speedup: sim_par.compute_cycles / sim_split.compute_cycles,
        wall_sequential_s,
        wall_sequential_split_s,
        wall_parallel_s,
        wall_parallel_split_s,
        wall_batch4_per_rhs_s: wall_batch4_s / nrhs as f64,
    };
    println!(
        "{}",
        serde_json::to_string(&smoke).expect("smoke record serialises")
    );
}

fn time_per_solve<O>(repeats: usize, mut solve: impl FnMut() -> O) -> f64 {
    let _ = solve(); // warm-up
    let start = Instant::now();
    for _ in 0..repeats {
        let _ = solve();
    }
    start.elapsed().as_secs_f64() / repeats as f64
}
