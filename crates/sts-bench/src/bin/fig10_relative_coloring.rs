//! Figure 10: relative speedup of STS-3 over CSR-COL per matrix, i.e. the
//! incremental benefit of the k-level sub-structuring for coloring orderings,
//! at 16 cores (Intel model) and 12 cores (AMD model).

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::Method;

#[derive(Serialize)]
struct Row {
    machine: String,
    matrix: String,
    cores: usize,
    relative_speedup: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        println!(
            "\nFigure 10: relative speedup STS-3 vs CSR-COL — {} model, {} cores",
            machine.name(),
            cores
        );
        println!("{:<5} {:>20}", "mat", "T(CSR-COL)/T(STS-3)");
        let mut vals = Vec::new();
        for m in &suite.matrices {
            let run = harness::build_methods(m, machine.rows_per_super_row_scaled(config.scale));
            let col = run
                .methods
                .iter()
                .find(|r| r.method == Method::CsrCol)
                .unwrap();
            let sts = run
                .methods
                .iter()
                .find(|r| r.method == Method::Sts3)
                .unwrap();
            let (t_col, t_sts) = if config.wallclock {
                let threads = cores.min(sts_numa::affinity::available_cores());
                (
                    harness::wallclock_seconds(col, threads, 3),
                    harness::wallclock_seconds(sts, threads, 3),
                )
            } else {
                (
                    harness::simulate(machine, col, cores).total_cycles,
                    harness::simulate(machine, sts, cores).total_cycles,
                )
            };
            let rel = t_col / t_sts;
            println!("{:<5} {:>20.2}", run.matrix_label, rel);
            vals.push(rel);
            rows.push(Row {
                machine: machine.name().to_string(),
                matrix: run.matrix_label.clone(),
                cores,
                relative_speedup: rel,
            });
        }
        println!(
            "mean relative speedup: {:.2}",
            harness::geometric_mean(&vals)
        );
    }
    harness::write_json(&config.out_dir, "fig10_relative_coloring", &rows);
}
