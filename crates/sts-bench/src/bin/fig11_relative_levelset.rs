//! Figure 11: relative speedup of CSR-3-LS over CSR-LS per matrix, i.e. the
//! incremental benefit of the k-level sub-structuring for level-set orderings,
//! at 16 cores (Intel model) and 12 cores (AMD model).

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::Method;

#[derive(Serialize)]
struct Row {
    machine: String,
    matrix: String,
    cores: usize,
    relative_speedup: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        println!(
            "\nFigure 11: relative speedup CSR-3-LS vs CSR-LS — {} model, {} cores",
            machine.name(),
            cores
        );
        println!("{:<5} {:>22}", "mat", "T(CSR-LS)/T(CSR-3-LS)");
        let mut vals = Vec::new();
        for m in &suite.matrices {
            let run = harness::build_methods(m, machine.rows_per_super_row_scaled(config.scale));
            let ls = run
                .methods
                .iter()
                .find(|r| r.method == Method::CsrLs)
                .unwrap();
            let ls3 = run
                .methods
                .iter()
                .find(|r| r.method == Method::Csr3Ls)
                .unwrap();
            let (t_ls, t_ls3) = if config.wallclock {
                let threads = cores.min(sts_numa::affinity::available_cores());
                (
                    harness::wallclock_seconds(ls, threads, 3),
                    harness::wallclock_seconds(ls3, threads, 3),
                )
            } else {
                (
                    harness::simulate(machine, ls, cores).total_cycles,
                    harness::simulate(machine, ls3, cores).total_cycles,
                )
            };
            let rel = t_ls / t_ls3;
            println!("{:<5} {:>22.2}", run.matrix_label, rel);
            vals.push(rel);
            rows.push(Row {
                machine: machine.name().to_string(),
                matrix: run.matrix_label.clone(),
                cores,
                relative_speedup: rel,
            });
        }
        println!(
            "mean relative speedup: {:.2}",
            harness::geometric_mean(&vals)
        );
    }
    harness::write_json(&config.out_dir, "fig11_relative_levelset", &rows);
}
