//! Figure 12: relative speedup of STS-3 over CSR-COL using the total execution
//! time over the whole suite, as the core count scales from 1 to 32 (Intel
//! model) and 1 to 24 (AMD model). The mean is taken over 8–32 / 6–24 cores
//! as in the paper.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::Method;

#[derive(Serialize)]
struct Row {
    machine: String,
    cores: usize,
    relative_speedup: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows = Vec::new();
    for machine in Machine::both() {
        println!(
            "\nFigure 12: T(*,CSR-COL,q) / T(*,STS-3,q) — {} model (scale {:?})",
            machine.name(),
            config.scale
        );
        // Build once per machine, reuse across core counts.
        let runs: Vec<_> = suite
            .matrices
            .iter()
            .map(|m| harness::build_methods(m, machine.rows_per_super_row_scaled(config.scale)))
            .collect();
        println!("{:>6} {:>22}", "cores", "relative speedup");
        let mut mean_vals = Vec::new();
        for &q in machine.scaling_cores() {
            let mut total_col = 0.0;
            let mut total_sts = 0.0;
            for run in &runs {
                let col = run
                    .methods
                    .iter()
                    .find(|r| r.method == Method::CsrCol)
                    .unwrap();
                let sts = run
                    .methods
                    .iter()
                    .find(|r| r.method == Method::Sts3)
                    .unwrap();
                total_col += harness::simulate(machine, col, q).total_cycles;
                total_sts += harness::simulate(machine, sts, q).total_cycles;
            }
            let rel = total_col / total_sts;
            println!("{q:>6} {rel:>22.2}");
            if machine.scaling_mean_cores().contains(&q) {
                mean_vals.push(rel);
            }
            rows.push(Row {
                machine: machine.name().to_string(),
                cores: q,
                relative_speedup: rel,
            });
        }
        println!(
            "mean over {:?} cores: {:.2}",
            machine.scaling_mean_cores(),
            mean_vals.iter().sum::<f64>() / mean_vals.len().max(1) as f64
        );
    }
    harness::write_json(&config.out_dir, "fig12_scaling_coloring", &rows);
}
