//! Figure 13: relative speedup of CSR-3-LS over CSR-LS using the total
//! execution time over the whole suite, as the core count scales from 1 to 32
//! (Intel model) and 1 to 24 (AMD model).

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::Method;

#[derive(Serialize)]
struct Row {
    machine: String,
    cores: usize,
    relative_speedup: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows = Vec::new();
    for machine in Machine::both() {
        println!(
            "\nFigure 13: T(*,CSR-LS,q) / T(*,CSR-3-LS,q) — {} model (scale {:?})",
            machine.name(),
            config.scale
        );
        let runs: Vec<_> = suite
            .matrices
            .iter()
            .map(|m| harness::build_methods(m, machine.rows_per_super_row_scaled(config.scale)))
            .collect();
        println!("{:>6} {:>22}", "cores", "relative speedup");
        let mut mean_vals = Vec::new();
        for &q in machine.scaling_cores() {
            let mut total_ls = 0.0;
            let mut total_ls3 = 0.0;
            for run in &runs {
                let ls = run
                    .methods
                    .iter()
                    .find(|r| r.method == Method::CsrLs)
                    .unwrap();
                let ls3 = run
                    .methods
                    .iter()
                    .find(|r| r.method == Method::Csr3Ls)
                    .unwrap();
                total_ls += harness::simulate(machine, ls, q).total_cycles;
                total_ls3 += harness::simulate(machine, ls3, q).total_cycles;
            }
            let rel = total_ls / total_ls3;
            println!("{q:>6} {rel:>22.2}");
            if machine.scaling_mean_cores().contains(&q) {
                mean_vals.push(rel);
            }
            rows.push(Row {
                machine: machine.name().to_string(),
                cores: q,
                relative_speedup: rel,
            });
        }
        println!(
            "mean over {:?} cores: {:.2}",
            machine.scaling_mean_cores(),
            mean_vals.iter().sum::<f64>() / mean_vals.len().max(1) as f64
        );
    }
    harness::write_json(&config.out_dir, "fig13_scaling_levelset", &rows);
}
