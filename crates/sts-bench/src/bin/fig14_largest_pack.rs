//! Figure 14: relative speedup per unknown of STS-3 over CSR-COL when
//! processing the largest pack in isolation.
//!
//! The paper uses this to show that the STS-k gains come from enhanced
//! locality inside a pack, not only from fewer synchronisations: the time of
//! the largest pack, scaled by its number of unknowns, improves by ≈1.75x on
//! Intel and ≈2.1x on AMD.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::{analysis, Method, SimulatedExecutor};

#[derive(Serialize)]
struct Row {
    machine: String,
    matrix: String,
    cores: usize,
    csr_col_cycles_per_unknown: f64,
    sts3_cycles_per_unknown: f64,
    relative_speedup_per_unknown: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        let exec = SimulatedExecutor::new(machine.topology());
        println!(
            "\nFigure 14: largest-pack speedup per unknown, STS-3 vs CSR-COL — {} model, {} cores",
            machine.name(),
            cores
        );
        println!("{:<5} {:>26}", "mat", "t(CSR-COL)/t(STS-3) per unknown");
        let mut vals = Vec::new();
        for m in &suite.matrices {
            let run = harness::build_methods(m, machine.rows_per_super_row_scaled(config.scale));
            let per_unknown = |mr: &harness::MethodRun| -> f64 {
                let s = &mr.structure;
                let p = analysis::largest_pack(s).expect("non-empty structure");
                let unknowns = s.pack_rows(p).len().max(1) as f64;
                let rep =
                    exec.simulate_single_pack(s, p, cores, harness::paper_schedule(mr.method));
                rep.total_cycles / unknowns
            };
            let col = run
                .methods
                .iter()
                .find(|r| r.method == Method::CsrCol)
                .unwrap();
            let sts = run
                .methods
                .iter()
                .find(|r| r.method == Method::Sts3)
                .unwrap();
            let (c_col, c_sts) = (per_unknown(col), per_unknown(sts));
            let rel = c_col / c_sts;
            println!("{:<5} {:>26.2}", run.matrix_label, rel);
            vals.push(rel);
            rows.push(Row {
                machine: machine.name().to_string(),
                matrix: run.matrix_label.clone(),
                cores,
                csr_col_cycles_per_unknown: c_col,
                sts3_cycles_per_unknown: c_sts,
                relative_speedup_per_unknown: rel,
            });
        }
        println!("mean: {:.2}", harness::geometric_mean(&vals));
    }
    harness::write_json(&config.out_dir, "fig14_largest_pack", &rows);
}
