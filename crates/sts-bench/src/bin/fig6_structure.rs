//! Figure 6: the structure of `L` under plain coloring versus STS-3.
//!
//! The paper shows spy plots of a small CFD-like matrix reordered by plain
//! coloring (9 colors) and by STS-3 (4 colors), highlighting that the
//! off-diagonal blocks of the last pack are band-structured under STS-3
//! (reflecting the line-graph reuse pattern) but disordered under plain
//! coloring. This harness prints ASCII spy plots of the two reorderings of a
//! 25x25 matrix and reports the pack count and the off-diagonal bandwidth of
//! the last pack.

use serde::Serialize;
use sts_bench::harness::{self, parse_args};
use sts_core::{Method, StsStructure};
use sts_matrix::generators;

#[derive(Serialize)]
struct Summary {
    method: String,
    num_packs: usize,
    last_pack_rows: usize,
    last_pack_offdiag_bandwidth: usize,
}

fn spy(s: &StsStructure) -> String {
    let n = s.n();
    let l = s.lower();
    let mut grid = vec![vec!['.'; n]; n];
    // Indexed loop: each row mutates both grid[i][j] and its mirror grid[j][i].
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for &j in l.row_off_diag_cols(i) {
            grid[i][j] = 'x';
            grid[j][i] = 'x'; // show the symmetric pattern like the paper
        }
        grid[i][i] = 'd';
    }
    // Mark pack boundaries along the diagonal.
    let mut out = String::new();
    let pack_starts: Vec<usize> = (0..s.num_packs()).map(|p| s.pack_rows(p).start).collect();
    for (i, row) in grid.iter().enumerate() {
        if pack_starts.contains(&i) && i > 0 {
            out.push_str(&"-".repeat(2 * n));
            out.push('\n');
        }
        for &c in row {
            out.push(c);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// Bandwidth of the off-diagonal (previous-pack) couplings of the last pack:
/// small values mean the reuse structure is band-like, as STS-3 produces.
fn last_pack_offdiag_bandwidth(s: &StsStructure) -> usize {
    let p = s.num_packs().saturating_sub(1);
    let rows = s.pack_rows(p);
    let l = s.lower();
    let mut bw = 0usize;
    for i in rows.clone() {
        for &j in l.row_off_diag_cols(i) {
            if j < rows.start {
                // position within the pack vs position of the reused column
                bw = bw.max((i - rows.start).abs_diff(j));
            }
        }
    }
    bw
}

fn main() {
    let config = parse_args();
    // A small structured matrix standing in for the paper's small CFD matrix
    // (the paper's example has n = 25, nz = 153).
    let a = generators::grid2d_9point(5, 5).unwrap();
    let l = generators::lower_operand(&a).unwrap();
    let mut summaries = Vec::new();
    for (method, label) in [
        (Method::CsrCol, "coloring (CSR-COL)"),
        (Method::Sts3, "STS-3"),
    ] {
        let s = method.build(&l, 4).unwrap();
        println!("\n=== L reordered by {label}: {} packs ===", s.num_packs());
        println!("{}", spy(&s));
        let p = s.num_packs() - 1;
        let summary = Summary {
            method: method.label().to_string(),
            num_packs: s.num_packs(),
            last_pack_rows: s.pack_rows(p).len(),
            last_pack_offdiag_bandwidth: last_pack_offdiag_bandwidth(&s),
        };
        println!(
            "last pack: {} rows, off-diagonal reuse bandwidth {}",
            summary.last_pack_rows, summary.last_pack_offdiag_bandwidth
        );
        summaries.push(summary);
    }
    harness::write_json(&config.out_dir, "fig6_structure", &summaries);
}
