//! Figure 7: degree of parallelism — number of packs versus average number of
//! solution components per pack, for the four methods across the suite.
//!
//! The paper plots this as a log–log scatter; this harness prints the raw
//! coordinates per (matrix, method) and the per-method centroids, which is
//! enough to verify the clustering: coloring methods sit at few packs / many
//! components per pack, level-set methods at many packs / few components.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::analysis;

#[derive(Serialize)]
struct Point {
    matrix: String,
    method: String,
    num_packs: usize,
    mean_components_per_pack: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    // Structural figures use the paper's own super-row size (80 rows).
    let rows_per_super_row = Machine::Intel.rows_per_super_row();
    println!("Figure 7: degree of parallelism (scale {:?})", config.scale);
    println!(
        "{:<5} {:<10} {:>12} {:>24}",
        "mat", "method", "packs", "components per pack"
    );
    let mut points = Vec::new();
    for m in &suite.matrices {
        let run = harness::build_methods(m, rows_per_super_row);
        for mr in &run.methods {
            let stats = analysis::parallelism_stats(&mr.structure);
            println!(
                "{:<5} {:<10} {:>12} {:>24.1}",
                run.matrix_label,
                mr.method.label(),
                stats.num_packs,
                stats.mean_components_per_pack
            );
            points.push(Point {
                matrix: run.matrix_label.clone(),
                method: mr.method.label().to_string(),
                num_packs: stats.num_packs,
                mean_components_per_pack: stats.mean_components_per_pack,
            });
        }
    }
    // Per-method centroids (geometric means, matching the log-log plot).
    println!("\ncentroids (geometric means):");
    for method in sts_core::Method::all() {
        let label = method.label();
        let packs: Vec<f64> = points
            .iter()
            .filter(|p| p.method == label)
            .map(|p| p.num_packs as f64)
            .collect();
        let comps: Vec<f64> = points
            .iter()
            .filter(|p| p.method == label)
            .map(|p| p.mean_components_per_pack)
            .collect();
        println!(
            "{:<10} packs = {:>10.1}   components/pack = {:>12.1}",
            label,
            harness::geometric_mean(&packs),
            harness::geometric_mean(&comps)
        );
    }
    harness::write_json(&config.out_dir, "fig7_parallelism", &points);
}
