//! Figure 8: percentage of the total work contained in the 5 largest packs,
//! per matrix and method.
//!
//! The paper observes that CSR-COL and STS-3 concentrate over 90% of the work
//! in their 5 largest packs while CSR-LS and CSR-3-LS hold under 5% there.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};
use sts_core::analysis;

#[derive(Serialize)]
struct Row {
    matrix: String,
    method: String,
    percent_in_top5: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    // Structural figures use the paper's own super-row size (80 rows).
    let rows_per_super_row = Machine::Intel.rows_per_super_row();
    println!(
        "Figure 8: % of total work in the 5 largest packs (scale {:?})",
        config.scale
    );
    println!(
        "{:<5} {:>10} {:>10} {:>10} {:>10}",
        "mat", "CSR-LS", "CSR-3-LS", "CSR-COL", "STS-3"
    );
    let mut rows = Vec::new();
    for m in &suite.matrices {
        let run = harness::build_methods(m, rows_per_super_row);
        let mut percents = Vec::new();
        for mr in &run.methods {
            let pct = 100.0 * analysis::work_fraction_in_top_packs(&mr.structure, 5);
            rows.push(Row {
                matrix: run.matrix_label.clone(),
                method: mr.method.label().to_string(),
                percent_in_top5: pct,
            });
            percents.push((mr.method.label(), pct));
        }
        let get = |label: &str| {
            percents
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, p)| *p)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<5} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            run.matrix_label,
            get("CSR-LS"),
            get("CSR-3-LS"),
            get("CSR-COL"),
            get("STS-3")
        );
    }
    println!("\nmeans:");
    for method in sts_core::Method::all() {
        let label = method.label();
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.method == label)
            .map(|r| r.percent_in_top5)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        println!("{label:<10} {mean:>6.1}%");
    }
    harness::write_json(&config.out_dir, "fig8_work_distribution", &rows);
}
