//! Figure 9: parallel speedup of the four methods relative to CSR-LS on one
//! core, at 16 cores (Intel model) and 12 cores (AMD model).
//!
//! `speedup(method) = T(mat, CSR-LS, 1) / T(mat, method, q)`, reported per
//! matrix with the geometric mean over the suite (the horizontal lines of the
//! paper's figure). `--wallclock` switches from the simulated machines to
//! threaded execution on the host.

use serde::Serialize;
use sts_bench::harness::{self, parse_args, Machine};

#[derive(Serialize)]
struct Row {
    machine: String,
    matrix: String,
    method: String,
    cores: usize,
    speedup: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    let mut rows: Vec<Row> = Vec::new();
    for machine in Machine::both() {
        let cores = machine.figure_cores();
        println!(
            "\nFigure 9: parallel speedup vs CSR-LS(1 core) — {} model, {} cores (scale {:?})",
            machine.name(),
            cores,
            config.scale
        );
        println!(
            "{:<5} {:>10} {:>10} {:>10} {:>10}",
            "mat", "CSR-LS", "CSR-3-LS", "CSR-COL", "STS-3"
        );
        for m in &suite.matrices {
            let run = harness::build_methods(m, machine.rows_per_super_row_scaled(config.scale));
            let reference = &run.methods[0]; // CSR-LS
            let t_ref_1core = if config.wallclock {
                harness::wallclock_seconds(reference, 1, 3)
            } else {
                harness::simulate(machine, reference, 1).total_cycles
            };
            let mut line = format!("{:<5}", run.matrix_label);
            for mr in &run.methods {
                let t = if config.wallclock {
                    harness::wallclock_seconds(
                        mr,
                        cores.min(sts_numa::affinity::available_cores()),
                        3,
                    )
                } else {
                    harness::simulate(machine, mr, cores).total_cycles
                };
                let speedup = t_ref_1core / t;
                line.push_str(&format!(" {speedup:>10.2}"));
                rows.push(Row {
                    machine: machine.name().to_string(),
                    matrix: run.matrix_label.clone(),
                    method: mr.method.label().to_string(),
                    cores,
                    speedup,
                });
            }
            println!("{line}");
        }
        println!("geometric means:");
        for method in sts_core::Method::all() {
            let label = method.label();
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.machine == machine.name() && r.method == label)
                .map(|r| r.speedup)
                .collect();
            println!("  {:<10} {:>8.2}", label, harness::geometric_mean(&vals));
        }
    }
    harness::write_json(&config.out_dir, "fig9_parallel_speedup", &rows);
}
