//! Figures 1–3: the worked 9x9 example of the paper.
//!
//! Prints the graph `G1` of `A = L + Lᵀ`, the coarsened graph `G2` obtained by
//! collapsing connected pairs (Figure 1), the packs obtained by coloring `G1`
//! versus `G2` (Figure 2 — 3 colors versus 2), and the DAR graph of the second
//! pack (Figure 3).

use sts_bench::harness::parse_args;
use sts_core::pack::Packs;
use sts_core::reorder;
use sts_graph::{Coarsening, CoarseningStrategy, ColoringOrder, Graph};
use sts_matrix::generators;

fn main() {
    let _config = parse_args();
    let l = generators::paper_figure1_l();
    let g1 = Graph::from_lower_triangular(&l);

    println!("Figure 1: G1 = G(A), A = L + L'  (vertices are 1-based as in the paper)");
    for v in 0..g1.n() {
        let nbrs: Vec<String> = g1
            .neighbors(v)
            .iter()
            .map(|&u| (u + 1).to_string())
            .collect();
        println!("  vertex {:>2}: neighbours {{{}}}", v + 1, nbrs.join(", "));
    }

    let coarsening = Coarsening::coarsen(&g1, CoarseningStrategy::HeavyEdgeMatching);
    let g2 = coarsening.coarse_graph(&g1);
    println!("\nFigure 1 (right): G2 after collapsing connected pairs into super-rows");
    for s in 0..coarsening.num_groups() {
        let members: Vec<String> = coarsening
            .group(s)
            .iter()
            .map(|&v| (v + 1).to_string())
            .collect();
        let nbrs: Vec<String> = g2.neighbors(s).iter().map(|&t| format!("S{t}")).collect();
        println!(
            "  super-row S{s} = {{{}}}, adjacent to {{{}}}",
            members.join(","),
            nbrs.join(", ")
        );
    }

    let packs_g1 = Packs::by_coloring(&g1, ColoringOrder::LargestDegreeFirst);
    let packs_g2 = Packs::by_coloring(&g2, ColoringOrder::LargestDegreeFirst);
    println!(
        "\nFigure 2: coloring G1 gives {} packs, coloring G2 gives {} packs",
        packs_g1.num_packs(),
        packs_g2.num_packs()
    );
    for (p, pack) in packs_g2.all().iter().enumerate() {
        let members: Vec<String> = pack
            .iter()
            .map(|&s| {
                let rows: Vec<String> = coarsening
                    .group(s)
                    .iter()
                    .map(|&v| (v + 1).to_string())
                    .collect();
                format!("{{{}}}", rows.join(","))
            })
            .collect();
        println!("  pack {p}: super-rows {}", members.join(" "));
    }

    // Figure 3: DAR of the last pack (tasks connected when they reuse x from a
    // previous pack).
    let groups = coarsening.groups().to_vec();
    let inputs = reorder::super_row_inputs(&l, &groups);
    let last = packs_g2.num_packs() - 1;
    let dar = reorder::pack_dar(packs_g2.pack(last), &inputs);
    println!("\nFigure 3: DAR graph of pack {last}");
    for (t, &s) in packs_g2.pack(last).iter().enumerate() {
        let rows: Vec<String> = coarsening
            .group(s)
            .iter()
            .map(|&v| (v + 1).to_string())
            .collect();
        let nbrs: Vec<String> = dar
            .neighbors(t)
            .iter()
            .map(|&u| {
                let rows: Vec<String> = coarsening
                    .group(packs_g2.pack(last)[u])
                    .iter()
                    .map(|&v| (v + 1).to_string())
                    .collect();
                format!("{{{}}}", rows.join(","))
            })
            .collect();
        println!(
            "  task {{{}}}: shares previous-pack components with {}",
            rows.join(","),
            if nbrs.is_empty() {
                "nothing".to_string()
            } else {
                nbrs.join(", ")
            }
        );
    }
}
