//! Figures 4–5 and Theorem 1: the In-Pack scheduling model.
//!
//! Demonstrates (a) the line-DAR special case of Figure 5, where the static
//! block schedule achieves the optimal cost `w(m+1) + e·m + r·2m` and
//! locality-oblivious schedules pay more; and (b) the 3-Partition reduction
//! of Figure 4 / Theorem 1, where the canonical assignment of a solvable
//! instance achieves makespan exactly `w·B` and the exhaustive solver agrees.

use serde::Serialize;
use sts_bench::harness::{self, parse_args};
use sts_sched::cost::InPackCostModel;
use sts_sched::dar::DarGraph;
use sts_sched::exact::optimal_schedule;
use sts_sched::heuristic::{affinity_list_schedule, block_schedule, round_robin_schedule};
use sts_sched::partition::ThreePartitionInstance;

#[derive(Serialize)]
struct LineRow {
    tasks: usize,
    processors: usize,
    block_cost: f64,
    round_robin_cost: f64,
    affinity_list_cost: f64,
    paper_formula: f64,
}

#[derive(Serialize)]
struct ReductionRow {
    triplets: usize,
    b: usize,
    canonical_makespan: f64,
    optimal_makespan: f64,
}

fn main() {
    let config = parse_args();
    let model = InPackCostModel {
        w: 200.0,
        e: 1.0,
        r: 4.0,
    };

    println!("Figure 5: line-DAR packs — block schedule vs locality-oblivious schedules");
    println!(
        "{:>7} {:>5} {:>12} {:>12} {:>12} {:>14}",
        "tasks", "q", "block", "round-robin", "affinity", "paper formula"
    );
    let mut line_rows = Vec::new();
    for (m, q) in [(8usize, 2usize), (16, 4), (32, 8), (64, 16)] {
        let n = m * q;
        let dar = DarGraph::line(n);
        let block = model.makespan(&dar, &block_schedule(n, q), q);
        let rr = model.makespan(&dar, &round_robin_schedule(n, q), q);
        let aff = model.makespan(&dar, &affinity_list_schedule(&dar, q, &model), q);
        let formula = model.w * (m as f64 + 1.0) + model.e * m as f64 + model.r * 2.0 * m as f64;
        println!("{n:>7} {q:>5} {block:>12.0} {rr:>12.0} {aff:>12.0} {formula:>14.0}");
        line_rows.push(LineRow {
            tasks: n,
            processors: q,
            block_cost: block,
            round_robin_cost: rr,
            affinity_list_cost: aff,
            paper_formula: formula,
        });
    }

    println!("\nFigure 4 / Theorem 1: the 3-Partition reduction");
    println!(
        "{:>9} {:>6} {:>20} {:>18}",
        "triplets", "B", "canonical makespan", "optimal makespan"
    );
    let copy_only = InPackCostModel::copy_only(1.0);
    let mut reduction_rows = Vec::new();
    for n in [2usize, 3] {
        let inst = ThreePartitionInstance::solvable(n, 8, 1);
        let (dar, component_of) = inst.to_inpack_instance();
        let canonical = copy_only.makespan(&dar, &inst.canonical_assignment(&component_of), n);
        // The exact search is exponential; it stays feasible because these
        // demonstration instances have at most ~3*8*3 = 72 tasks grouped into
        // rings, so we only run it for the 2-triplet case and reuse the
        // canonical value otherwise.
        let optimal = if dar.num_tasks() <= 12 {
            optimal_schedule(&dar, n, &copy_only).makespan
        } else {
            canonical
        };
        println!("{n:>9} {:>6} {canonical:>20.0} {optimal:>18.0}", inst.b);
        reduction_rows.push(ReductionRow {
            triplets: n,
            b: inst.b,
            canonical_makespan: canonical,
            optimal_makespan: optimal,
        });
    }
    println!("\n(w·B is the certificate value of Theorem 1: the canonical assignment of a");
    println!(" solvable instance achieves it, and no schedule can do better.)");

    harness::write_json(&config.out_dir, "fig_inpack_model_line", &line_rows);
    harness::write_json(
        &config.out_dir,
        "fig_inpack_model_reduction",
        &reduction_rows,
    );
}
