//! Table 1: the test suite of matrices.
//!
//! Prints, for every entry of the paper's Table 1, the original matrix it
//! stands in for (name, n, nnz/n) next to the synthetic analogue generated at
//! the configured scale, so the reader can check that each structural class
//! is represented.

use serde::Serialize;
use sts_bench::harness::{self, parse_args};

#[derive(Serialize)]
struct Row {
    label: String,
    paper_name: String,
    paper_n: usize,
    paper_nnz_per_row: f64,
    generated_n: usize,
    generated_nnz: usize,
    generated_nnz_per_row: f64,
}

fn main() {
    let config = parse_args();
    let suite = harness::generate_suite(&config);
    println!("Table 1: test suite (scale {:?})", config.scale);
    println!(
        "{:<5} {:<18} {:>12} {:>9} | {:>10} {:>12} {:>9}",
        "id", "paper matrix", "paper n", "nnz/n", "gen n", "gen nnz", "nnz/n"
    );
    let mut rows = Vec::new();
    for m in &suite.matrices {
        let row = Row {
            label: m.id.label().to_string(),
            paper_name: m.id.paper_name().to_string(),
            paper_n: m.id.paper_n(),
            paper_nnz_per_row: m.id.paper_row_density(),
            generated_n: m.n(),
            generated_nnz: m.nnz(),
            generated_nnz_per_row: m.row_density(),
        };
        println!(
            "{:<5} {:<18} {:>12} {:>9.2} | {:>10} {:>12} {:>9.2}",
            row.label,
            row.paper_name,
            row.paper_n,
            row.paper_nnz_per_row,
            row.generated_n,
            row.generated_nnz,
            row.generated_nnz_per_row
        );
        rows.push(row);
    }
    harness::write_json(&config.out_dir, "table1", &rows);
}
