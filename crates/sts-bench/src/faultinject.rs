//! Deterministic fault injection for the chaos test suite.
//!
//! Every helper here is seeded and allocation-explicit: the same seed
//! produces the same perturbation on every run and at every thread count,
//! so a chaos test that fails reproduces exactly. Faults come in four
//! families, mirroring the failure modes the solve path defends against:
//!
//! * **SPD-breaking value perturbations** — [`break_spd_diagonal`] (a tiny
//!   positive diagonal entry that defeats IC(0) while passing the positive-
//!   diagonal validation) and [`kershaw_cycle`] (an embedded 4-cycle that is
//!   genuinely SPD yet breaks IC(0) under any of the orderings the builders
//!   produce — the shape only the shifted-factorization rungs recover);
//! * **non-finite values** — [`inject_nan_values`] poisons matrix entries
//!   with NaN to exercise the `validate()` boundary, and NaN right-hand
//!   sides exercise the residual guards;
//! * **worker panics** — [`panic_hook`] panics the worker that picks up a
//!   chosen pack, exercising pool poisoning;
//! * **worker stalls** — [`stall_hook`] parks the worker that picks up a
//!   chosen pack, exercising the epoch-gate watchdog.
//!
//! The hooks plug into
//! [`ParallelSolver::set_chaos_hook`](sts_core::ParallelSolver), which the
//! pipelined kernels and the parallel IC(0) build invoke at every
//! `(worker, pack)` unit start.

use std::sync::Arc;
use std::time::Duration;

use sts_core::ChaosHook;
use sts_matrix::CsrMatrix;

/// SplitMix64: a tiny deterministic generator, so fault sites are seeded
/// without dragging a rand dependency into the harness.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator whose whole future is fixed by `seed`.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Replaces one (seeded) diagonal entry of `a` with a tiny positive value.
/// The matrix stays validation-clean — the diagonal is still present,
/// positive and finite — but the IC(0) pivot of some later row goes
/// non-positive, producing a deterministic
/// [`FactorizationBreakdown`](sts_matrix::MatrixError::FactorizationBreakdown).
/// Returns the poisoned row (original numbering).
pub fn break_spd_diagonal(a: &mut CsrMatrix, seed: u64) -> usize {
    let mut rng = DetRng::new(seed);
    let n = a.nrows();
    // Keep away from row 0: a first-row poison breaks *its own* pivot
    // trivially rather than a downstream one.
    let row = 1 + rng.below(n - 1);
    set_diag(a, row, 1e-9);
    row
}

/// Embeds the Kershaw counterexample into a grid Laplacian built by
/// [`sts_matrix::generators::grid2d_laplacian`]`(nx, ny)`: the four nodes of
/// one interior 2×2 grid cell are decoupled from the rest of the matrix and
/// rewired as a 4-cycle with diagonal 3 and edge weights `−2, −2, −2, +2`.
/// That block is SPD (dense Cholesky pivots 3, 5/3, 3/5, 1/3) but **not** an
/// M-matrix, and its IC(0) pivot goes negative under natural, BFS/RCM and
/// level-set orderings alike — so the perturbed matrix defeats the unshifted
/// IC(0) rung however the builder orders it, while staying genuinely SPD
/// (the ladder's shifted rungs and SSOR still converge).
///
/// Returns the four perturbed node indices. `nx` and `ny` must both be at
/// least 4 so the cell is interior.
pub fn kershaw_cycle(a: &CsrMatrix, nx: usize, ny: usize, seed: u64) -> (CsrMatrix, [usize; 4]) {
    assert!(nx >= 4 && ny >= 4, "grid too small for an interior cell");
    assert_eq!(a.nrows(), nx * ny, "matrix does not match the grid");
    let mut rng = DetRng::new(seed);
    // An interior cell: top-left corner in [1, nx-3] × [1, ny-3].
    let cx = 1 + rng.below(nx - 3);
    let cy = 1 + rng.below(ny - 3);
    let i = cy * nx + cx;
    let cell = [i, i + 1, i + nx, i + nx + 1];
    // Rebuild the matrix without any row/column touching the cell, then add
    // the decoupled cycle block.
    let mut coo = sts_matrix::CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz() + 8);
    let in_cell = |v: usize| cell.contains(&v);
    for (r, c, v) in a.iter() {
        if !in_cell(r) && !in_cell(c) {
            // Infallible: (r, c) come from a valid matrix of the same shape.
            let _ = coo.push(r, c, v);
        }
    }
    // The cycle i — i+1 — i+nx+1 — i+nx — i with one positive edge: SPD,
    // not an M-matrix, IC(0)-fatal.
    let edges = [
        (cell[0], cell[1], -2.0),
        (cell[1], cell[3], -2.0),
        (cell[3], cell[2], -2.0),
        (cell[2], cell[0], 2.0),
    ];
    for &node in &cell {
        let _ = coo.push(node, node, 3.0);
    }
    for &(u, v, w) in &edges {
        let _ = coo.push(u, v, w);
        let _ = coo.push(v, u, w);
    }
    (coo.to_csr(), cell)
}

/// Overwrites `count` seeded value slots of `a` with NaN. Returns the
/// poisoned (row, col) sites.
pub fn inject_nan_values(a: &mut CsrMatrix, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = DetRng::new(seed);
    let nnz = a.nnz();
    let mut sites = Vec::with_capacity(count);
    let mut slots = Vec::with_capacity(count);
    for _ in 0..count {
        slots.push(rng.below(nnz));
    }
    for &k in &slots {
        let row = match a.row_ptr().binary_search(&k) {
            // `k` sits at the start of row r (skipping empty rows the
            // search may land on).
            Ok(r) => (r..a.nrows())
                .find(|&r| a.row_ptr()[r + 1] > k)
                .unwrap_or(r),
            Err(r) => r - 1,
        };
        sites.push((row, a.col_idx()[k]));
        a.values_mut()[k] = f64::NAN;
    }
    sites
}

/// A chaos hook that panics the worker which picks up pack `pack` — any
/// worker, first arrival wins. Deterministic in *site* (always that pack),
/// intentionally racy in *which* worker dies, exactly like a real fault.
pub fn panic_hook(pack: usize) -> ChaosHook {
    Arc::new(move |_worker, p| {
        if p == pack {
            panic!("injected fault: worker panicked at pack {p}");
        }
    })
}

/// A chaos hook that stalls worker `worker` for `dur` when it picks up pack
/// `pack` — the "hardware went away" shape the epoch-gate watchdog exists
/// for. The worker *returns* after the stall (the pool can always complete
/// its barrier); on a multi-worker solve its peers hit the watchdog deadline
/// first and the solve reports a timeout.
pub fn stall_hook(worker: usize, pack: usize, dur: Duration) -> ChaosHook {
    Arc::new(move |w, p| {
        if w == worker && p == pack {
            std::thread::sleep(dur);
        }
    })
}

/// Sets row `row`'s diagonal entry of `a` to `value` (asserts it exists).
fn set_diag(a: &mut CsrMatrix, row: usize, value: f64) {
    let lo = a.row_ptr()[row];
    let hi = a.row_ptr()[row + 1];
    let k = (lo..hi)
        .find(|&k| a.col_idx()[k] == row)
        .expect("generator matrices store every diagonal");
    a.values_mut()[k] = value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    #[test]
    fn det_rng_is_deterministic_and_covers_its_range() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut seen = [false; 7];
        let mut r = DetRng::new(7);
        for _ in 0..200 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn broken_diagonal_still_validates_but_defeats_ic0() {
        let mut a = generators::grid2d_laplacian(10, 10).unwrap();
        let row = break_spd_diagonal(&mut a, 1);
        assert!(row > 0 && row < 100);
        a.validate().unwrap();
        assert!(matches!(
            sts_matrix::factor::ic0(&a),
            Err(sts_matrix::MatrixError::FactorizationBreakdown { .. })
        ));
    }

    #[test]
    fn kershaw_cycle_is_symmetric_spd_shaped_and_defeats_ic0() {
        let a = generators::grid2d_laplacian(8, 8).unwrap();
        let (k, cell) = kershaw_cycle(&a, 8, 8, 3);
        k.validate().unwrap();
        assert!(k.is_symmetric(1e-12));
        for &node in &cell {
            assert_eq!(k.get(node, node), 3.0);
        }
        assert!(matches!(
            sts_matrix::factor::ic0(&k),
            Err(sts_matrix::MatrixError::FactorizationBreakdown { .. })
        ));
    }

    #[test]
    fn nan_injection_reports_its_sites() {
        let mut a = generators::grid2d_laplacian(6, 6).unwrap();
        let sites = inject_nan_values(&mut a, 3, 11);
        assert_eq!(sites.len(), 3);
        for &(r, c) in &sites {
            assert!(a.get(r, c).is_nan());
        }
        assert!(a.validate().is_err());
    }
}
