//! The CI bench-regression gate: compares a fresh `bench_smoke` record
//! against the committed baseline and fails on wall-time regressions.
//!
//! CI has collected a per-commit `BENCH_trend` series since PR 2, but
//! nothing *enforced* it — a kernel regression rode in silently as one more
//! line in the job summary. [`compare`] turns the trend line into a gate:
//! the wall-time fields in [`GATED_FIELDS`] (the end-to-end PCG solve, the
//! pipelined triangular kernels it runs on, the level-scheduled IC(0)
//! setup, and the solver service's cold and warm solve paths) must not
//! regress by more than the configured percentage against
//! `bench/baseline.json`, which is refreshed from every push to `main`.
//!
//! Robustness rules, chosen for a noisy shared CI host:
//!
//! * only the *gated* fields fail the job — simulator cycles, iteration
//!   counts and ratio fields are informational;
//! * a field missing from either record is **skipped**, not failed, so a PR
//!   that adds a new trend field does not trip over a baseline that predates
//!   it (the refreshed `main` baseline picks it up);
//! * a non-positive or non-finite value is skipped likewise — in the
//!   baseline (a ratio against it is meaningless) **and in the current
//!   record**: a broken bench reporting `0` wall-ns must surface as
//!   `[skip]`, never slip through as a 0.0-ratio `[ ok ]`;
//! * the default threshold is 25% — far above the run-to-run jitter of the
//!   min-of-blocks measurements `bench_smoke` reports, far below a real
//!   kernel regression.
//!
//! On top of the baseline comparison, the gate enforces three *absolute*
//! bounds, all read from the current record only (no baseline involved,
//! skipped for records predating the fields):
//!
//! * the clean-path guard cost (`pcg_guarded_overhead_ns`, the scalar
//!   checks a guarded PCG solve executes when nothing is wrong) must stay
//!   under [`MAX_GUARD_SHARE`] of `pcg_wall_ns`;
//! * the disabled-tracing cost (`pcg_trace_disabled_overhead_ns`, what a
//!   pipelined solve pays for an installed-but-disabled span recorder) must
//!   stay under [`MAX_TRACE_SHARE`] of `pcg_wall_ns` — observability must
//!   be free when it is off;
//! * the mixed-precision refinement budget (`f32_refinement_extra_iters`,
//!   the correction passes that drive an f32-slab solve to the f64 answer
//!   on the smoke Laplacian) must stay at or under
//!   [`MAX_REFINE_EXTRA_ITERS`] — the f32 slabs may only trade memory
//!   traffic, never accuracy.
//!
//! The `bench_gate` binary wraps this for the workflow; `--advisory`
//! (wired to an override label on the PR) demotes failures to warnings.

use serde_json::Value;

/// The wall-time fields the gate enforces: the end-to-end PCG solve (scalar,
/// f32-slab mixed-precision, and per-RHS block), the pipelined solve
/// kernels, the IC(0) setup path, and the solver service's cold (first
/// pattern + values + solve) and warm (cached) solve paths. Everything else
/// in the record is informational.
pub const GATED_FIELDS: &[&str] = &[
    "pcg_wall_ns",
    "pcg_f32slab_wall_ns",
    "pcg_block_wall_per_rhs_ns",
    "wall_parallel_pipelined_s",
    "wall_batch4_pipelined_per_rhs_s",
    "ic0_build_parallel_wall_ns",
    "serve_cold_solve_wall_ns",
    "serve_warm_solve_wall_ns",
    "pcg_trace_disabled_overhead_ns",
];

/// The share of `pcg_wall_ns` the clean-path guards
/// (`pcg_guarded_overhead_ns`) may cost before the gate fails: the
/// robustness checks must stay effectively free on the unfaulted hot path.
pub const MAX_GUARD_SHARE: f64 = 0.02;

/// The share of `pcg_wall_ns` the *disabled* tracing path
/// (`pcg_trace_disabled_overhead_ns`) may cost before the gate fails: an
/// installed-but-off span recorder must not tax the solve.
pub const MAX_TRACE_SHARE: f64 = 0.02;

/// The most refinement passes (`f32_refinement_extra_iters`) the
/// mixed-precision triangular solve may need on the smoke Laplacian before
/// the gate fails. Each pass contracts the error by the f32 rounding level
/// (~1e-7), so two passes reach 1e-12 with margin — needing more means the
/// refinement loop or the f32 kernels lost accuracy.
pub const MAX_REFINE_EXTRA_ITERS: f64 = 2.0;

/// One gated field's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldCheck {
    /// Field name in the bench record.
    pub field: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` (> 1.0 means slower).
    pub ratio: f64,
    /// Whether the regression exceeds the threshold.
    pub failed: bool,
}

/// An absolute overhead-share check: a per-solve overhead field as a share
/// of `pcg_wall_ns`, both read from the *current* record only — no baseline
/// needed, so it arms the moment the bench emits the fields. Used for the
/// clean-path guard cost (cap [`MAX_GUARD_SHARE`]) and the disabled-tracing
/// cost (cap [`MAX_TRACE_SHARE`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GuardCheck {
    /// Per-solve overhead cost in nanoseconds.
    pub overhead_ns: f64,
    /// The solve it taxes (`pcg_wall_ns`).
    pub solve_ns: f64,
    /// `overhead_ns / solve_ns`.
    pub share: f64,
    /// Whether the share exceeds the check's cap.
    pub failed: bool,
}

/// The mixed-precision accuracy check: the refinement passes the f32-slab
/// smoke solve needed, capped absolutely at [`MAX_REFINE_EXTRA_ITERS`].
/// Read from the *current* record only, like the overhead shares.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineCheck {
    /// Refinement passes `solve_refined` reported
    /// (`f32_refinement_extra_iters`).
    pub extra_iters: f64,
    /// Whether the count exceeds [`MAX_REFINE_EXTRA_ITERS`].
    pub failed: bool,
}

/// The gate's verdict over every gated field.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Comparisons for the fields present in both records.
    pub checks: Vec<FieldCheck>,
    /// Gated fields skipped because they were missing (or unusable) in the
    /// baseline or the current record.
    pub skipped: Vec<&'static str>,
    /// The clean-path guard-cost check, when the current record carries the
    /// fields (`None` for records predating them).
    pub guard: Option<GuardCheck>,
    /// The disabled-tracing overhead check, when the current record carries
    /// the fields (`None` for records predating them).
    pub trace: Option<GuardCheck>,
    /// The mixed-precision refinement-budget check, when the current record
    /// carries `f32_refinement_extra_iters` (`None` for records predating
    /// it).
    pub refine: Option<RefineCheck>,
    /// The regression threshold in percent.
    pub threshold_pct: f64,
}

impl GateReport {
    /// Whether every compared field stayed within the threshold and every
    /// overhead share stayed under its cap.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| !c.failed)
            && self.guard.iter().all(|g| !g.failed)
            && self.trace.iter().all(|g| !g.failed)
            && self.refine.iter().all(|r| !r.failed)
    }

    /// Human-readable table, one line per field, worst regression first.
    pub fn render(&self) -> String {
        let mut lines = vec![format!(
            "bench gate (threshold +{:.0}% on {} fields):",
            self.threshold_pct,
            GATED_FIELDS.len()
        )];
        let mut checks = self.checks.clone();
        // total_cmp, not partial_cmp().unwrap(): a pathological record must
        // render as a report line, never panic the gate binary.
        checks.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
        for c in &checks {
            lines.push(format!(
                "  [{}] {:<34} baseline {:>12.4e}  current {:>12.4e}  ratio {:.3}",
                if c.failed { "FAIL" } else { " ok " },
                c.field,
                c.baseline,
                c.current,
                c.ratio
            ));
        }
        for s in &self.skipped {
            lines.push(format!("  [skip] {s:<33} missing or unusable in a record"));
        }
        for (check, field, cap) in [
            (&self.guard, "pcg_guarded_overhead_ns", MAX_GUARD_SHARE),
            (
                &self.trace,
                "pcg_trace_disabled_overhead_ns",
                MAX_TRACE_SHARE,
            ),
        ] {
            match check {
                Some(g) => lines.push(format!(
                    "  [{}] {:<34} overhead {:>12.4e}  solve {:>12.4e}  share {:.4} (cap {:.2})",
                    if g.failed { "FAIL" } else { " ok " },
                    field,
                    g.overhead_ns,
                    g.solve_ns,
                    g.share,
                    cap
                )),
                None => lines.push(format!(
                    "  [skip] {field:<33} missing or unusable in the current record"
                )),
            }
        }
        match &self.refine {
            Some(r) => lines.push(format!(
                "  [{}] {:<34} passes {:>12.0}  cap {:>12.0}",
                if r.failed { "FAIL" } else { " ok " },
                "f32_refinement_extra_iters",
                r.extra_iters,
                MAX_REFINE_EXTRA_ITERS
            )),
            None => lines.push(format!(
                "  [skip] {:<33} missing or unusable in the current record",
                "f32_refinement_extra_iters"
            )),
        }
        lines.join("\n")
    }
}

/// Extracts a finite numeric field from a bench record.
fn numeric(record: &Value, field: &str) -> Option<f64> {
    record.get(field)?.as_f64().filter(|v| v.is_finite())
}

/// Compares `current` against `baseline` over [`GATED_FIELDS`] with the
/// given regression threshold (percent; 25.0 means "fail when more than 25%
/// slower"). See the module documentation for the skip rules.
pub fn compare(baseline: &Value, current: &Value, threshold_pct: f64) -> GateReport {
    let limit = 1.0 + threshold_pct / 100.0;
    let mut checks = Vec::new();
    let mut skipped = Vec::new();
    for &field in GATED_FIELDS {
        match (numeric(baseline, field), numeric(current, field)) {
            // Both values must be usable: positive and finite. A broken
            // bench reporting 0 (or negative) wall time would otherwise
            // pass with ratio 0.0.
            (Some(base), Some(cur)) if base > 0.0 && cur > 0.0 => {
                let ratio = cur / base;
                checks.push(FieldCheck {
                    field,
                    baseline: base,
                    current: cur,
                    ratio,
                    failed: ratio > limit,
                });
            }
            _ => skipped.push(field),
        }
    }
    GateReport {
        checks,
        skipped,
        guard: share_check(current, "pcg_guarded_overhead_ns", MAX_GUARD_SHARE),
        trace: share_check(current, "pcg_trace_disabled_overhead_ns", MAX_TRACE_SHARE),
        refine: refine_check(current),
        threshold_pct,
    }
}

/// Builds the absolute refinement-budget check from
/// `f32_refinement_extra_iters`, or `None` when the field is missing or
/// unusable (records predating mixed precision must skip, not fail).
fn refine_check(current: &Value) -> Option<RefineCheck> {
    let extra_iters = numeric(current, "f32_refinement_extra_iters")?;
    if extra_iters < 0.0 {
        return None;
    }
    Some(RefineCheck {
        extra_iters,
        failed: extra_iters > MAX_REFINE_EXTRA_ITERS,
    })
}

/// Builds the absolute overhead-share check of `field` against
/// `pcg_wall_ns`, or `None` when either field is missing or unusable.
fn share_check(current: &Value, field: &str, cap: f64) -> Option<GuardCheck> {
    let overhead_ns = numeric(current, field)?;
    let solve_ns = numeric(current, "pcg_wall_ns")?;
    // The overhead may legitimately be ~0 (a handful of scalar branches, or
    // a clamped-to-zero paired measurement), so only the denominator must
    // be positive.
    if overhead_ns < 0.0 || solve_ns <= 0.0 {
        return None;
    }
    let share = overhead_ns / solve_ns;
    Some(GuardCheck {
        overhead_ns,
        solve_ns,
        share,
        failed: share > cap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pcg: f64, piped: f64, batch: f64, ic0: f64) -> Value {
        record_with_block(pcg, piped, batch, ic0, 1.0e6)
    }

    fn record_with_block(pcg: f64, piped: f64, batch: f64, ic0: f64, block: f64) -> Value {
        Value::Object(vec![
            ("pcg_wall_ns".into(), Value::Float(pcg)),
            ("pcg_f32slab_wall_ns".into(), Value::Float(0.7e6)),
            ("f32_refinement_extra_iters".into(), Value::UInt(1)),
            ("pcg_block_wall_per_rhs_ns".into(), Value::Float(block)),
            ("wall_parallel_pipelined_s".into(), Value::Float(piped)),
            (
                "wall_batch4_pipelined_per_rhs_s".into(),
                Value::Float(batch),
            ),
            ("ic0_build_parallel_wall_ns".into(), Value::Float(ic0)),
            ("serve_cold_solve_wall_ns".into(), Value::Float(5.0e8)),
            ("serve_warm_solve_wall_ns".into(), Value::Float(1.0e6)),
            // Tiny, so the absolute share stays under the cap for every
            // pcg_wall_ns the tests use.
            ("pcg_trace_disabled_overhead_ns".into(), Value::Float(1.0)),
            ("pcg_iters".into(), Value::UInt(12)),
        ])
    }

    #[test]
    fn guard_share_under_the_cap_passes_and_is_reported() {
        let mut cur = record(1.0e6, 1.0, 1.0, 1.0);
        if let Value::Object(m) = &mut cur {
            m.push(("pcg_guarded_overhead_ns".into(), Value::Float(1.0e4)));
        }
        let base = record(1.0e6, 1.0, 1.0, 1.0);
        let report = compare(&base, &cur, 25.0);
        assert!(report.passed());
        let g = report.guard.as_ref().expect("fields present");
        assert!(!g.failed);
        assert!((g.share - 0.01).abs() < 1e-12);
        assert!(report.render().contains("[ ok ] pcg_guarded_overhead_ns"));
    }

    #[test]
    fn guard_share_over_the_cap_fails_the_gate() {
        // 5% of the solve: the robustness tax crept into the hot path.
        let mut cur = record(1.0e6, 1.0, 1.0, 1.0);
        if let Value::Object(m) = &mut cur {
            m.push(("pcg_guarded_overhead_ns".into(), Value::Float(5.0e4)));
        }
        let base = record(1.0e6, 1.0, 1.0, 1.0);
        let report = compare(&base, &cur, 25.0);
        assert!(!report.passed());
        assert!(report.guard.as_ref().is_some_and(|g| g.failed));
        assert!(report.render().contains("[FAIL] pcg_guarded_overhead_ns"));
        // Every relative comparison still passed: only the absolute guard
        // bound tripped.
        assert!(report.checks.iter().all(|c| !c.failed));
    }

    #[test]
    fn trace_share_under_the_cap_passes_and_is_reported() {
        let base = record(1.0e6, 1.0, 1.0, 1.0);
        let report = compare(&base, &base, 25.0);
        assert!(report.passed());
        let t = report.trace.as_ref().expect("fields present");
        assert!(!t.failed);
        assert!((t.share - 1.0e-6).abs() < 1e-12);
        assert!(report
            .render()
            .contains("[ ok ] pcg_trace_disabled_overhead_ns"));
    }

    #[test]
    fn trace_share_over_the_cap_fails_the_gate() {
        // 5% of the solve: the disabled tracing path grew a real cost.
        let mut cur = record(1.0e6, 1.0, 1.0, 1.0);
        if let Value::Object(m) = &mut cur {
            m.retain(|(k, _)| k != "pcg_trace_disabled_overhead_ns");
            m.push(("pcg_trace_disabled_overhead_ns".into(), Value::Float(5.0e4)));
        }
        let base = record(1.0e6, 1.0, 1.0, 1.0);
        let report = compare(&base, &cur, 25.0);
        assert!(!report.passed());
        assert!(report.trace.as_ref().is_some_and(|t| t.failed));
        assert!(report
            .render()
            .contains("[FAIL] pcg_trace_disabled_overhead_ns"));
    }

    #[test]
    fn records_without_trace_fields_skip_the_trace_check() {
        let base: Value = serde_json::from_str(r#"{"pcg_wall_ns": 1000.0}"#).unwrap();
        let cur: Value = serde_json::from_str(r#"{"pcg_wall_ns": 1000.0}"#).unwrap();
        let report = compare(&base, &cur, 25.0);
        assert!(report.passed());
        assert!(report.trace.is_none());
        assert!(report
            .render()
            .contains("[skip] pcg_trace_disabled_overhead_ns"));
    }

    #[test]
    fn records_without_guard_fields_skip_the_guard_check() {
        // Pre-guard records (and a broken bench emitting a non-finite
        // overhead) must skip, not fail — mirroring the field skip rules.
        let base = record(1000.0, 1.0, 1.0, 1.0);
        let cur = record(1000.0, 1.0, 1.0, 1.0);
        let report = compare(&base, &cur, 25.0);
        assert!(report.passed());
        assert!(report.guard.is_none());
        assert!(report.render().contains("[skip] pcg_guarded_overhead_ns"));

        let mut bad = record(1000.0, 1.0, 1.0, 1.0);
        if let Value::Object(m) = &mut bad {
            m.push(("pcg_guarded_overhead_ns".into(), Value::Float(f64::NAN)));
        }
        assert!(compare(&base, &bad, 25.0).guard.is_none());
    }

    #[test]
    fn refinement_within_the_budget_passes_and_is_reported() {
        let base = record(1.0e6, 1.0, 1.0, 1.0);
        let report = compare(&base, &base, 25.0);
        assert!(report.passed());
        let r = report.refine.as_ref().expect("field present");
        assert!(!r.failed);
        assert!((r.extra_iters - 1.0).abs() < 1e-12);
        assert!(report
            .render()
            .contains("[ ok ] f32_refinement_extra_iters"));
    }

    #[test]
    fn refinement_over_the_budget_fails_the_gate() {
        // Three passes: the f32 path lost accuracy somewhere.
        let base = record(1.0e6, 1.0, 1.0, 1.0);
        let mut cur = record(1.0e6, 1.0, 1.0, 1.0);
        if let Value::Object(m) = &mut cur {
            m.retain(|(k, _)| k != "f32_refinement_extra_iters");
            m.push(("f32_refinement_extra_iters".into(), Value::UInt(3)));
        }
        let report = compare(&base, &cur, 25.0);
        assert!(!report.passed());
        assert!(report.refine.as_ref().is_some_and(|r| r.failed));
        assert!(report
            .render()
            .contains("[FAIL] f32_refinement_extra_iters"));
        // Every relative comparison still passed: only the absolute
        // refinement budget tripped.
        assert!(report.checks.iter().all(|c| !c.failed));
    }

    #[test]
    fn records_without_refinement_fields_skip_the_refine_check() {
        let base: Value = serde_json::from_str(r#"{"pcg_wall_ns": 1000.0}"#).unwrap();
        let report = compare(&base, &base, 25.0);
        assert!(report.passed());
        assert!(report.refine.is_none());
        assert!(report
            .render()
            .contains("[skip] f32_refinement_extra_iters"));
    }

    #[test]
    fn identical_records_pass() {
        let r = record(7.3e6, 2.5e-4, 1.1e-4, 9.0e5);
        let report = compare(&r, &r, 25.0);
        assert!(report.passed());
        assert_eq!(report.checks.len(), GATED_FIELDS.len());
        assert!(report.skipped.is_empty());
        assert!(report.checks.iter().all(|c| (c.ratio - 1.0).abs() < 1e-12));
    }

    #[test]
    fn regression_beyond_the_threshold_fails_only_that_field() {
        let base = record(1000.0, 1.0, 1.0, 1.0);
        let cur = record(1300.0, 1.2, 1.0, 1.0); // +30% and +20%
        let report = compare(&base, &cur, 25.0);
        assert!(!report.passed());
        let failed: Vec<_> = report
            .checks
            .iter()
            .filter(|c| c.failed)
            .map(|c| c.field)
            .collect();
        assert_eq!(failed, vec!["pcg_wall_ns"], "only the >25% field fails");
    }

    #[test]
    fn improvements_always_pass() {
        let base = record(1000.0, 1.0, 1.0, 1.0);
        let cur = record(100.0, 0.5, 0.9, 0.01);
        assert!(compare(&base, &cur, 25.0).passed());
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        let base = record(1000.0, 1.0, 1.0, 1.0);
        let at_limit = record(1250.0, 1.25, 1.25, 1.25);
        assert!(
            compare(&base, &at_limit, 25.0).passed(),
            "exactly +25% passes"
        );
        let over = record(1250.1, 1.0, 1.0, 1.0);
        assert!(!compare(&base, &over, 25.0).passed());
    }

    #[test]
    fn missing_fields_are_skipped_not_failed() {
        // A baseline predating a newly added trend field must not fail the
        // PR that adds the field. Parsed from text, as the binary does.
        let old_baseline = serde_json::from_str(r#"{"pcg_wall_ns": 1000.0}"#).unwrap();
        let cur = record(1000.0, 1.0, 1.0, 1.0);
        let report = compare(&old_baseline, &cur, 25.0);
        assert!(report.passed());
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.skipped.len(), GATED_FIELDS.len() - 1);
    }

    #[test]
    fn unusable_baseline_values_are_skipped() {
        let base = Value::Object(vec![
            ("pcg_wall_ns".into(), Value::Float(0.0)),
            (
                "wall_parallel_pipelined_s".into(),
                Value::Str("not a number".into()),
            ),
            (
                "wall_batch4_pipelined_per_rhs_s".into(),
                Value::Float(f64::NAN),
            ),
            ("ic0_build_parallel_wall_ns".into(), Value::Float(1.0)),
        ]);
        let cur = record(99999.0, 99999.0, 99999.0, 1.0);
        let report = compare(&base, &cur, 25.0);
        assert!(report.passed());
        assert_eq!(report.checks.len(), 1, "only the usable field is compared");
    }

    #[test]
    fn unusable_current_values_are_skipped_not_passed() {
        // The bugfix: a broken bench reporting a zero (or negative, or NaN)
        // gated field must be skipped, not accepted with ratio 0.0. The
        // fields must land in `skipped` so render shows them as [skip].
        let base = record(1000.0, 1.0, 1.0, 1.0);
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let cur = record_with_block(bad, 1.0, 1.0, 1.0, 1.0e6);
            let report = compare(&base, &cur, 25.0);
            assert!(
                report.passed(),
                "an unusable current value ({bad}) must not fail the gate"
            );
            assert!(
                report.skipped.contains(&"pcg_wall_ns"),
                "an unusable current value ({bad}) must be reported skipped"
            );
            assert!(
                !report.checks.iter().any(|c| c.field == "pcg_wall_ns"),
                "an unusable current value ({bad}) must not be compared"
            );
            let text = report.render();
            assert!(text.contains("[skip] pcg_wall_ns"));
            assert!(!text.contains("[ ok ] pcg_wall_ns"));
        }
    }

    #[test]
    fn nan_baseline_values_are_skipped() {
        let base = record(f64::NAN, 1.0, 1.0, 1.0);
        let cur = record(99999.0, 1.0, 1.0, 1.0);
        let report = compare(&base, &cur, 25.0);
        assert!(report.passed());
        assert!(report.skipped.contains(&"pcg_wall_ns"));
    }

    #[test]
    fn field_missing_from_both_records_is_skipped_once() {
        let base = serde_json::from_str(r#"{"pcg_wall_ns": 1000.0}"#).unwrap();
        let cur = serde_json::from_str(r#"{"pcg_wall_ns": 1000.0}"#).unwrap();
        let report = compare(&base, &cur, 25.0);
        assert!(report.passed());
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.skipped.len(), GATED_FIELDS.len() - 1);
        // Each absent field appears exactly once in the skip list.
        let mut sorted = report.skipped.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), GATED_FIELDS.len() - 1);
    }

    #[test]
    fn render_never_panics_on_pathological_ratios() {
        // NaN can only reach `checks` through future refactors, but the
        // report must stay panic-free even then: build one by hand and sort
        // it through render.
        let report = GateReport {
            checks: vec![
                FieldCheck {
                    field: "pcg_wall_ns",
                    baseline: 1.0,
                    current: f64::NAN,
                    ratio: f64::NAN,
                    failed: false,
                },
                FieldCheck {
                    field: "ic0_build_parallel_wall_ns",
                    baseline: 1.0,
                    current: 2.0,
                    ratio: 2.0,
                    failed: true,
                },
            ],
            skipped: vec![],
            guard: Some(GuardCheck {
                overhead_ns: f64::NAN,
                solve_ns: f64::NAN,
                share: f64::NAN,
                failed: false,
            }),
            trace: None,
            refine: Some(RefineCheck {
                extra_iters: f64::NAN,
                failed: false,
            }),
            threshold_pct: 25.0,
        };
        let text = report.render();
        assert!(text.contains("pcg_wall_ns"));
        assert!(text.contains("ic0_build_parallel_wall_ns"));
    }

    #[test]
    fn render_lists_every_check_and_skip() {
        let old_baseline = serde_json::from_str(r#"{"pcg_wall_ns": 1000.0}"#).unwrap();
        let cur = record(1500.0, 1.0, 1.0, 1.0);
        let report = compare(&old_baseline, &cur, 25.0);
        let text = report.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("pcg_wall_ns"));
        assert!(text.contains("[skip]"));
    }
}
