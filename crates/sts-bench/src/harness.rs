//! Shared machinery for the figure/table binaries.

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::Serialize;
use sts_core::{Method, SimReport, SimulatedExecutor, StsStructure};
use sts_matrix::{SuiteMatrix, SuiteScale, TestSuite};
use sts_numa::{NumaTopology, Schedule};

/// The two evaluation machines of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Machine {
    /// 32-core Intel Westmere-EX node (figures use 16 cores; scaling 1–32).
    Intel,
    /// 24-core AMD MagnyCours node (figures use 12 cores; scaling 1–24).
    Amd,
}

impl Machine {
    /// Both machines, Intel first as in the paper's figures.
    pub fn both() -> [Machine; 2] {
        [Machine::Intel, Machine::Amd]
    }

    /// The topology preset for this machine.
    pub fn topology(&self) -> NumaTopology {
        match self {
            Machine::Intel => NumaTopology::intel_westmere_ex_32(),
            Machine::Amd => NumaTopology::amd_magny_cours_24(),
        }
    }

    /// The per-matrix figure core count (16 on Intel, 12 on AMD).
    pub fn figure_cores(&self) -> usize {
        match self {
            Machine::Intel => 16,
            Machine::Amd => 12,
        }
    }

    /// The core counts of the scaling figures (Figures 12 and 13).
    pub fn scaling_cores(&self) -> &'static [usize] {
        match self {
            Machine::Intel => &[1, 2, 4, 8, 16, 24, 32],
            Machine::Amd => &[1, 2, 4, 6, 12, 18, 24],
        }
    }

    /// The core counts the paper averages over for the scaling figures
    /// (8–32 on Intel, 6–24 on AMD).
    pub fn scaling_mean_cores(&self) -> &'static [usize] {
        match self {
            Machine::Intel => &[8, 16, 24, 32],
            Machine::Amd => &[6, 12, 18, 24],
        }
    }

    /// The super-row size the paper uses on this machine (80 rows on Intel,
    /// 320 on AMD, chosen for the respective L2 sizes).
    pub fn rows_per_super_row(&self) -> usize {
        match self {
            Machine::Intel => 80,
            Machine::Amd => 320,
        }
    }

    /// The super-row size used by the harnesses at a given suite scale.
    ///
    /// The paper's 80/320 rows are calibrated for matrices of 1–50 million
    /// rows whose dependency levels are tens of thousands of rows wide. The
    /// generated suite is 100–1000× smaller, so using the paper's sizes would
    /// leave most packs with a single task and no parallelism to measure.
    /// The scaled values keep the ratio of tasks per pack in the regime the
    /// paper evaluates while preserving the Intel:AMD 1:4 ratio.
    pub fn rows_per_super_row_scaled(&self, scale: sts_matrix::SuiteScale) -> usize {
        use sts_matrix::SuiteScale::*;
        match (self, scale) {
            (Machine::Intel, Tiny) | (Machine::Intel, Small) => 8,
            (Machine::Intel, Medium) => 40,
            (Machine::Amd, Tiny) | (Machine::Amd, Small) => 32,
            (Machine::Amd, Medium) => 160,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Machine::Intel => "Intel",
            Machine::Amd => "AMD",
        }
    }
}

/// Command-line configuration shared by every harness binary.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Suite scale.
    pub scale: SuiteScale,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Use wall-clock threaded execution on the host instead of the simulator.
    pub wallclock: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: SuiteScale::Small,
            out_dir: PathBuf::from("results"),
            wallclock: false,
        }
    }
}

/// Parses the common `--scale`, `--out` and `--wallclock` arguments.
pub fn parse_args() -> BenchConfig {
    let mut config = BenchConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => SuiteScale::Tiny,
                    Some("small") | None => SuiteScale::Small,
                    Some("medium") => SuiteScale::Medium,
                    Some(other) => {
                        eprintln!("unknown scale {other}, using small");
                        SuiteScale::Small
                    }
                };
            }
            "--out" => {
                i += 1;
                if let Some(dir) = args.get(i) {
                    config.out_dir = PathBuf::from(dir);
                }
            }
            "--wallclock" => config.wallclock = true,
            other => eprintln!("ignoring unknown argument {other}"),
        }
        i += 1;
    }
    config
}

/// One method built on one matrix, with its structure statistics.
#[derive(Debug)]
pub struct MethodRun {
    /// The method.
    pub method: Method,
    /// The built structure.
    pub structure: StsStructure,
    /// Wall-clock seconds spent constructing the structure (pre-processing,
    /// reported for completeness; the paper amortises it away).
    pub build_seconds: f64,
}

/// All four methods built on one suite matrix (for a given machine's
/// super-row size).
#[derive(Debug)]
pub struct SuiteRun {
    /// The suite matrix.
    pub matrix_label: String,
    /// Dimension of the generated matrix.
    pub n: usize,
    /// Nonzeros of the triangular operand.
    pub nnz: usize,
    /// The four built methods, in [`Method::all`] order.
    pub methods: Vec<MethodRun>,
}

/// Generates the suite at the configured scale.
pub fn generate_suite(config: &BenchConfig) -> TestSuite {
    TestSuite::generate(config.scale).expect("suite generation cannot fail for preset scales")
}

/// Builds all four methods on one matrix using `rows_per_super_row` for the
/// 3-level variants.
pub fn build_methods(m: &SuiteMatrix, rows_per_super_row: usize) -> SuiteRun {
    let l = m
        .lower()
        .expect("suite matrices have solvable lower operands");
    let methods = Method::all()
        .into_iter()
        .map(|method| {
            let start = Instant::now();
            let structure = method
                .build(&l, rows_per_super_row)
                .expect("builder succeeds on suite matrices");
            MethodRun {
                method,
                structure,
                build_seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect();
    SuiteRun {
        matrix_label: m.id.label().to_string(),
        n: l.n(),
        nnz: l.nnz(),
        methods,
    }
}

/// Builds a single method on an explicit operand (used by the smoke bench,
/// which targets one matrix/method pair rather than the suite).
pub fn build_methods_single(
    l: &sts_matrix::LowerTriangularCsr,
    method: Method,
    rows_per_super_row: usize,
) -> MethodRun {
    let start = Instant::now();
    let structure = method
        .build(l, rows_per_super_row)
        .expect("builder succeeds on the smoke matrix");
    MethodRun {
        method,
        structure,
        build_seconds: start.elapsed().as_secs_f64(),
    }
}

/// The OpenMP schedule the paper uses for each method (`dynamic,32` for the
/// flat methods, `guided,1` for the 3-level methods).
pub fn paper_schedule(method: Method) -> Schedule {
    match method {
        Method::CsrLs | Method::CsrCol => Schedule::Dynamic { chunk: 32 },
        Method::Csr3Ls | Method::Sts3 => Schedule::Guided { min_chunk: 1 },
    }
}

/// Simulates one built method on `cores` cores of the given machine.
pub fn simulate(machine: Machine, run: &MethodRun, cores: usize) -> SimReport {
    let exec = SimulatedExecutor::new(machine.topology());
    exec.simulate(&run.structure, cores, paper_schedule(run.method))
}

/// Simulates one built method with the two-phase split kernel on `cores`
/// cores of the given machine.
pub fn simulate_split(machine: Machine, run: &MethodRun, cores: usize) -> SimReport {
    let exec = SimulatedExecutor::new(machine.topology());
    exec.simulate_split(&run.structure, cores, paper_schedule(run.method))
}

/// Simulates one built method with the pack-pipelined (barrier-fused) kernel
/// on `cores` cores of the given machine.
pub fn simulate_pipelined(machine: Machine, run: &MethodRun, cores: usize) -> SimReport {
    let exec = SimulatedExecutor::new(machine.topology());
    exec.simulate_pipelined(&run.structure, cores, paper_schedule(run.method))
}

/// Simulates the level-scheduled IC(0) construction for one built method on
/// `cores` cores of the given machine (`cores = 1` models the sequential
/// up-looking sweep).
pub fn simulate_ic0_build(machine: Machine, run: &MethodRun, cores: usize) -> SimReport {
    let exec = SimulatedExecutor::new(machine.topology());
    exec.simulate_ic0_build(&run.structure, cores)
}

/// The shared measurement protocol of the `wallclock_seconds*` helpers: one
/// untimed warm-up solve (which also forces the lazy split layout out of the
/// timed region), then the mean over `repeats` solves, as the paper averages
/// over 10 repeats.
fn wallclock_with(
    run: &MethodRun,
    threads: usize,
    repeats: usize,
    solve: impl Fn(&sts_core::ParallelSolver, &StsStructure, &[f64]),
) -> f64 {
    let solver = sts_core::ParallelSolver::new(threads, paper_schedule(run.method));
    let b = vec![1.0; run.structure.n()];
    solve(&solver, &run.structure, &b); // warm-up
    let start = Instant::now();
    for _ in 0..repeats {
        solve(&solver, &run.structure, &b);
    }
    start.elapsed().as_secs_f64() / repeats as f64
}

/// Measures the wall-clock solve time of one built method on the host with
/// `threads` workers (averaged over `repeats` solves).
pub fn wallclock_seconds(run: &MethodRun, threads: usize, repeats: usize) -> f64 {
    wallclock_with(run, threads, repeats, |solver, s, b| {
        solver.solve(s, b).expect("solve succeeds");
    })
}

/// Measures the wall-clock solve time of the two-phase split kernel on the
/// host with `threads` workers (averaged over `repeats` solves).
pub fn wallclock_seconds_split(run: &MethodRun, threads: usize, repeats: usize) -> f64 {
    wallclock_with(run, threads, repeats, |solver, s, b| {
        solver.solve_split(s, b).expect("solve succeeds");
    })
}

/// Measures the wall-clock solve time of the pack-pipelined kernel on the
/// host with `threads` workers (averaged over `repeats` solves).
pub fn wallclock_seconds_pipelined(run: &MethodRun, threads: usize, repeats: usize) -> f64 {
    wallclock_with(run, threads, repeats, |solver, s, b| {
        solver.solve_pipelined(s, b).expect("solve succeeds");
    })
}

/// Geometric mean of a slice of positive values (0 when empty).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Writes one JSON line to `path`, creating missing parent directories
/// first — `bench_smoke --json-path bench/bench_smoke.json` must work from a
/// fresh checkout where `bench/` does not exist yet (CI relies on the file
/// appearing, so the caller treats an error as fatal).
pub fn write_json_line(path: &Path, line: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, format!("{line}\n"))
}

/// Writes a serialisable result as pretty JSON into `<out_dir>/<name>.json`.
pub fn write_json<T: Serialize>(out_dir: &Path, name: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::suite::{self, SuiteId};

    #[test]
    fn machine_presets_match_paper_parameters() {
        assert_eq!(Machine::Intel.figure_cores(), 16);
        assert_eq!(Machine::Amd.figure_cores(), 12);
        assert_eq!(Machine::Intel.rows_per_super_row(), 80);
        assert_eq!(Machine::Amd.rows_per_super_row(), 320);
        assert_eq!(Machine::Intel.topology().total_cores(), 32);
        assert_eq!(Machine::Amd.topology().total_cores(), 24);
        assert_eq!(*Machine::Intel.scaling_cores().last().unwrap(), 32);
        assert_eq!(*Machine::Amd.scaling_cores().last().unwrap(), 24);
    }

    #[test]
    fn build_methods_produces_all_four() {
        let m = suite::generate(SuiteId::D3, SuiteScale::Tiny).unwrap();
        let run = build_methods(&m, 16);
        assert_eq!(run.methods.len(), 4);
        assert_eq!(run.matrix_label, "D3");
        for mr in &run.methods {
            assert_eq!(mr.structure.n(), run.n);
            assert!(mr.build_seconds >= 0.0);
        }
    }

    #[test]
    fn simulation_of_built_methods_is_positive_and_favours_sts3() {
        let m = suite::generate(SuiteId::D2, SuiteScale::Tiny).unwrap();
        let run = build_methods(&m, Machine::Intel.rows_per_super_row());
        let t_ref = simulate(Machine::Intel, &run.methods[0], 16).total_cycles;
        let t_sts = simulate(Machine::Intel, &run.methods[3], 16).total_cycles;
        assert!(t_ref > 0.0 && t_sts > 0.0);
        assert!(
            t_sts < t_ref,
            "STS-3 should beat CSR-LS: {t_sts} vs {t_ref}"
        );
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn paper_schedules_match_section_4_1() {
        assert_eq!(
            paper_schedule(Method::CsrLs),
            Schedule::Dynamic { chunk: 32 }
        );
        assert_eq!(
            paper_schedule(Method::Sts3),
            Schedule::Guided { min_chunk: 1 }
        );
    }

    #[test]
    fn write_json_line_creates_missing_parent_directories() {
        // A fresh checkout has no bench/ directory; the writer must create
        // the whole chain rather than fail on the first missing component.
        let root =
            std::env::temp_dir().join(format!("sts_bench_write_json_line_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let path = root.join("nested/deeper/bench_smoke.json");
        assert!(!path.parent().unwrap().exists());
        write_json_line(&path, r#"{"ok":true}"#).expect("missing parents are created");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"ok\":true}\n",
            "record is written with a trailing newline"
        );
        // Overwriting through now-existing directories also works.
        write_json_line(&path, r#"{"ok":false}"#).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":false}\n");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wallclock_measurement_returns_positive_time() {
        let m = suite::generate(SuiteId::D3, SuiteScale::Tiny).unwrap();
        let run = build_methods(&m, 16);
        let t = wallclock_seconds(&run.methods[3], 2, 2);
        assert!(t > 0.0);
    }
}
