//! Benchmark harness reproducing every table and figure of the STS-k paper.
//!
//! Each binary in `src/bin/` regenerates one artifact of the evaluation
//! section (Table 1, Figures 6–14) plus the ablations listed in `DESIGN.md`.
//! They share the machinery in [`harness`]: suite generation, method
//! construction, simulated execution on the modelled Intel/AMD nodes, and
//! JSON/row output.
//!
//! Conventions:
//!
//! * every binary accepts `--scale tiny|small|medium` (default `small`) and
//!   `--out <dir>` (default `results/`);
//! * every binary prints a human-readable table to stdout *and* writes a JSON
//!   file with the raw numbers, which `EXPERIMENTS.md` references;
//! * simulated timings use the machine presets
//!   [`sts_numa::NumaTopology::intel_westmere_ex_32`] and
//!   [`sts_numa::NumaTopology::amd_magny_cours_24`]; pass `--wallclock` to use
//!   the threaded solver on the host instead (meaningful only on a multicore
//!   host).

pub mod audit;
pub mod faultinject;
pub mod gate;
pub mod harness;

pub use harness::{geometric_mean, parse_args, BenchConfig, Machine, MethodRun, SuiteRun};
