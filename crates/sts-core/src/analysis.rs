//! Parallelism and work-distribution statistics.
//!
//! These are the quantities plotted in Figures 7 and 8 of the paper: how many
//! packs a method needs, how many solution components each pack computes on
//! average, and which fraction of the total work (nonzeros) is concentrated in
//! the few largest packs — the measure that predicts both latency masking and
//! synchronisation overhead.

use serde::Serialize;

use crate::csrk::StsStructure;

/// Parallelism statistics of one built structure.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ParallelismStats {
    /// Number of packs (parallel steps).
    pub num_packs: usize,
    /// Mean number of solution components per pack.
    pub mean_components_per_pack: f64,
    /// Number of parallel tasks (super-rows) over all packs.
    pub num_tasks: usize,
    /// Total work (stored nonzeros).
    pub total_work: usize,
    /// Fraction of the total work contained in the 5 largest packs (0..=1).
    pub work_fraction_top5: f64,
}

/// Computes the Figure-7/Figure-8 statistics of a structure.
pub fn parallelism_stats(s: &StsStructure) -> ParallelismStats {
    let num_packs = s.num_packs();
    let components = s.components_per_pack();
    let work = s.work_per_pack();
    let total_work: usize = work.iter().sum();
    ParallelismStats {
        num_packs,
        mean_components_per_pack: if num_packs == 0 {
            0.0
        } else {
            components.iter().sum::<usize>() as f64 / num_packs as f64
        },
        num_tasks: s.num_super_rows(),
        total_work,
        work_fraction_top5: work_fraction_in_top_packs(s, 5),
    }
}

/// Fraction of the total work (stored nonzeros) contained in the `top` largest
/// packs, the quantity of Figure 8.
pub fn work_fraction_in_top_packs(s: &StsStructure, top: usize) -> f64 {
    let mut work = s.work_per_pack();
    let total: usize = work.iter().sum();
    if total == 0 {
        return 0.0;
    }
    work.sort_unstable_by(|a, b| b.cmp(a));
    let top_sum: usize = work.iter().take(top).sum();
    top_sum as f64 / total as f64
}

/// Index of the pack computing the most solution components (ties broken by
/// the earliest pack); `None` for an empty structure.
pub fn largest_pack(s: &StsStructure) -> Option<usize> {
    (0..s.num_packs()).max_by_key(|&p| (s.pack_rows(p).len(), usize::MAX - p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Method;
    use sts_matrix::generators;

    fn structures() -> (StsStructure, StsStructure) {
        let a = generators::triangulated_grid(20, 20, 11).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        (
            Method::CsrLs.build(&l, 8).unwrap(),
            Method::Sts3.build(&l, 8).unwrap(),
        )
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (ls, sts) = structures();
        for s in [&ls, &sts] {
            let st = parallelism_stats(s);
            assert_eq!(st.num_packs, s.num_packs());
            assert_eq!(st.total_work, s.nnz());
            assert!(
                (st.mean_components_per_pack * st.num_packs as f64 - s.n() as f64).abs() < 1e-9
            );
            assert!(st.work_fraction_top5 > 0.0 && st.work_fraction_top5 <= 1.0);
        }
    }

    #[test]
    fn coloring_concentrates_work_in_few_packs() {
        // Figure 8: the 5 largest coloring packs hold the vast majority of the
        // work; level-set packs hold a small fraction.
        let (ls, sts) = structures();
        let f_ls = work_fraction_in_top_packs(&ls, 5);
        let f_sts = work_fraction_in_top_packs(&sts, 5);
        assert!(
            f_sts > 0.9,
            "STS-3 top-5 packs should hold >90% of work, got {f_sts}"
        );
        assert!(
            f_sts > f_ls,
            "coloring should concentrate more work than level sets"
        );
    }

    #[test]
    fn coloring_has_fewer_packs_with_more_components_each() {
        // Figure 7: the coloring cluster sits at few packs / many components,
        // the level-set cluster at many packs / few components.
        let (ls, sts) = structures();
        let st_ls = parallelism_stats(&ls);
        let st_sts = parallelism_stats(&sts);
        assert!(st_sts.num_packs < st_ls.num_packs);
        assert!(st_sts.mean_components_per_pack > st_ls.mean_components_per_pack);
    }

    #[test]
    fn largest_pack_is_the_biggest_by_components() {
        let (_, sts) = structures();
        let p = largest_pack(&sts).unwrap();
        let sizes = sts.components_per_pack();
        assert_eq!(sizes[p], *sizes.iter().max().unwrap());
    }

    #[test]
    fn top_fraction_with_more_packs_than_exist_is_one() {
        let (_, sts) = structures();
        assert!((work_fraction_in_top_packs(&sts, 10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_structure_stats() {
        let coo = sts_matrix::CooMatrix::new(0, 0);
        let l = sts_matrix::LowerTriangularCsr::from_csr(&coo.to_csr()).unwrap();
        let s = Method::Sts3.build(&l, 8).unwrap();
        let st = parallelism_stats(&s);
        assert_eq!(st.num_packs, 0);
        assert_eq!(st.total_work, 0);
        assert_eq!(largest_pack(&s), None);
    }
}
