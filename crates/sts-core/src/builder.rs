//! The STS-k construction pipeline and the four named methods of the paper's
//! evaluation.
//!
//! [`StsBuilder`] turns a lower-triangular operand into an
//! [`StsStructure`] by composing the steps of
//! Section 3:
//!
//! 1. symmetrize to `A = L + Lᵀ` (keeping `L`'s diagonal) and apply RCM — all
//!    methods receive the RCM-ordered matrix, as in the evaluation setup;
//! 2. (k ≥ 2) coarsen the RCM-ordered graph into super-rows of roughly equal
//!    work;
//! 3. partition the (super-)rows into packs by greedy coloring or dependency
//!    level sets, and order the packs by increasing size;
//! 4. (k ≥ 3) reorder the super-rows inside each pack by RCM on the pack's
//!    DAR graph so consecutive tasks share inputs;
//! 5. assemble the global permutation, permute the symmetric matrix, and take
//!    its lower triangle as the reordered operand.
//!
//! The four evaluation methods are exposed as [`Method`] presets:
//! `CSR-LS`, `CSR-COL`, `CSR-3-LS` and `STS-3` (a.k.a. `CSR-3-COL`).

use serde::Serialize;
use sts_graph::{rcm, Coarsening, CoarseningStrategy, ColoringOrder, Graph, Permutation};
use sts_matrix::{CooMatrix, CsrMatrix, LowerTriangularCsr, MatrixError};

use crate::csrk::{Result, StsStructure};
use crate::pack::Packs;
use crate::reorder::{reorder_pack_by_dar, super_row_inputs};

/// The ordering used to extract packs (independent sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Ordering {
    /// Greedy graph coloring (Schreiber–Tang), the paper's recommended choice.
    Coloring,
    /// Dependency level sets (Saltz aggregation).
    LevelSet,
}

/// How super-rows are sized during coarsening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SuperRowSizing {
    /// A fixed number of consecutive rows per super-row (the paper uses 80 on
    /// the Intel node and 320 on the AMD node).
    Rows(usize),
    /// Consecutive rows accumulated until a nonzero budget is reached
    /// (equal-work super-rows).
    Nnz(usize),
}

/// The four methods compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Method {
    /// Flat compressed sparse row solve with level-set packs (the reference).
    CsrLs,
    /// Flat compressed sparse row solve with coloring packs.
    CsrCol,
    /// 3-level sub-structuring with level-set packs.
    Csr3Ls,
    /// 3-level sub-structuring with coloring packs — STS-3, the paper's
    /// contribution (also written CSR-3-COL).
    Sts3,
}

impl Method {
    /// All four methods in the order the paper's figures list them.
    pub fn all() -> [Method; 4] {
        [Method::CsrLs, Method::Csr3Ls, Method::CsrCol, Method::Sts3]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Method::CsrLs => "CSR-LS",
            Method::CsrCol => "CSR-COL",
            Method::Csr3Ls => "CSR-3-LS",
            Method::Sts3 => "STS-3",
        }
    }

    /// The builder preset for this method. `rows_per_super_row` only affects
    /// the 3-level methods (pass the paper's 80 for an Intel-like machine or
    /// 320 for an AMD-like machine).
    pub fn builder(&self, rows_per_super_row: usize) -> StsBuilder {
        match self {
            Method::CsrLs => StsBuilder::new(1).ordering(Ordering::LevelSet),
            Method::CsrCol => StsBuilder::new(1).ordering(Ordering::Coloring),
            Method::Csr3Ls => StsBuilder::new(3)
                .ordering(Ordering::LevelSet)
                .super_row_sizing(SuperRowSizing::Rows(rows_per_super_row)),
            Method::Sts3 => StsBuilder::new(3)
                .ordering(Ordering::Coloring)
                .super_row_sizing(SuperRowSizing::Rows(rows_per_super_row)),
        }
    }

    /// Builds the structure for this method with the given super-row size.
    pub fn build(&self, l: &LowerTriangularCsr, rows_per_super_row: usize) -> Result<StsStructure> {
        self.builder(rows_per_super_row).build(l)
    }
}

/// Configurable construction pipeline for STS-k structures.
#[derive(Debug, Clone, PartialEq)]
pub struct StsBuilder {
    k: usize,
    ordering: Ordering,
    sizing: SuperRowSizing,
    apply_rcm: bool,
    coloring_order: ColoringOrder,
    within_pack_rcm: bool,
    order_packs_by_size: bool,
}

impl StsBuilder {
    /// Creates a builder for a `k`-level structure. `k = 1` is the flat
    /// reference (packs of individual rows); `k = 2` adds super-rows;
    /// `k = 3` (the paper's STS-3) additionally reorders each pack through its
    /// DAR graph.
    ///
    /// # Panics
    /// Panics if `k` is 0 or greater than 3.
    pub fn new(k: usize) -> Self {
        assert!((1..=3).contains(&k), "k must be 1, 2 or 3 (got {k})");
        StsBuilder {
            k,
            ordering: Ordering::Coloring,
            sizing: SuperRowSizing::Rows(80),
            apply_rcm: true,
            coloring_order: ColoringOrder::LargestDegreeFirst,
            within_pack_rcm: k >= 3,
            order_packs_by_size: true,
        }
    }

    /// Selects the pack-extraction ordering.
    pub fn ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Selects how super-rows are sized (ignored when `k == 1`).
    pub fn super_row_sizing(mut self, sizing: SuperRowSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Enables or disables the initial RCM ordering (enabled by default; the
    /// paper presents all methods with the RCM-ordered matrix).
    pub fn apply_rcm(mut self, yes: bool) -> Self {
        self.apply_rcm = yes;
        self
    }

    /// Selects the greedy-coloring vertex order.
    pub fn coloring_order(mut self, order: ColoringOrder) -> Self {
        self.coloring_order = order;
        self
    }

    /// Enables or disables the within-pack DAR reordering (enabled by default
    /// when `k >= 3`); exposed for the ablation benchmarks.
    pub fn within_pack_rcm(mut self, yes: bool) -> Self {
        self.within_pack_rcm = yes;
        self
    }

    /// Enables or disables ordering the packs by increasing size (enabled by
    /// default); exposed for the ablation benchmarks.
    pub fn order_packs_by_size(mut self, yes: bool) -> Self {
        self.order_packs_by_size = yes;
        self
    }

    /// The configured number of levels.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Runs the pipeline on a lower-triangular operand.
    pub fn build(&self, l: &LowerTriangularCsr) -> Result<StsStructure> {
        let n = l.n();
        if n == 0 {
            return StsStructure::new(
                self.k,
                self.ordering,
                vec![0],
                vec![0],
                l.clone(),
                Permutation::identity(0),
            );
        }
        // 1. Symmetrize (keeping L's diagonal) and apply RCM.
        let a_sym = symmetrize_preserving_diagonal(l);
        let g1 = Graph::from_symmetric_csr(&a_sym);
        let perm0 = if self.apply_rcm {
            rcm::reverse_cuthill_mckee(&g1)
        } else {
            Permutation::identity(n)
        };
        let a1 = a_sym.permute_symmetric(perm0.new_to_old())?;
        let l1 = LowerTriangularCsr::from_lower_triangle_of(&a1)?;
        let g1r = Graph::from_symmetric_csr(&a1);

        // 2. Coarsen into super-rows (k >= 2); k == 1 keeps singleton groups.
        let (groups, entity_graph) = if self.k == 1 {
            let groups: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            (groups, g1r)
        } else {
            let strategy = match self.sizing {
                SuperRowSizing::Rows(r) => CoarseningStrategy::ContiguousRows {
                    rows_per_group: r.max(1),
                },
                SuperRowSizing::Nnz(b) => CoarseningStrategy::ContiguousNnz {
                    nnz_per_group: b.max(1),
                },
            };
            let coarsening = Coarsening::coarsen(&g1r, strategy);
            let coarse = coarsening.coarse_graph(&g1r);
            (coarsening.groups().to_vec(), coarse)
        };
        let entity_sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();

        // 3. Packs by coloring or level sets, ordered by increasing size.
        let mut packs = match self.ordering {
            Ordering::Coloring => Packs::by_coloring(&entity_graph, self.coloring_order),
            Ordering::LevelSet => {
                let preds = entity_predecessors(&l1, &groups);
                Packs::by_level_set(&preds)
            }
        };
        if self.order_packs_by_size {
            packs.order_by_increasing_size(&entity_sizes);
        }

        // 4. Within-pack DAR reordering (k >= 3).
        let inputs = if self.within_pack_rcm {
            super_row_inputs(&l1, &groups)
        } else {
            Vec::new()
        };
        let ordered_packs: Vec<Vec<usize>> = packs
            .all()
            .iter()
            .map(|pack| {
                if self.within_pack_rcm {
                    reorder_pack_by_dar(pack, &inputs)
                } else {
                    let mut p = pack.clone();
                    p.sort_unstable();
                    p
                }
            })
            .collect();

        // 5. Assemble the global ordering and the index arrays.
        let mut index3 = Vec::with_capacity(ordered_packs.len() + 1);
        let mut index2 = Vec::with_capacity(groups.len() + 1);
        let mut order1: Vec<usize> = Vec::with_capacity(n);
        index3.push(0);
        index2.push(0);
        for pack in &ordered_packs {
            for &s in pack {
                order1.extend_from_slice(&groups[s]);
                index2.push(order1.len());
            }
            index3.push(index2.len() - 1);
        }
        let final_new_to_old: Vec<usize> = order1.iter().map(|&r1| perm0.old_of(r1)).collect();
        let perm = Permutation::from_new_to_old(final_new_to_old).ok_or_else(|| {
            MatrixError::InvalidStructure("assembled ordering is not a permutation".into())
        })?;
        let a_final = a_sym.permute_symmetric(perm.new_to_old())?;
        let l_final = LowerTriangularCsr::from_lower_triangle_of(&a_final)?;
        StsStructure::new(self.k, self.ordering, index3, index2, l_final, perm)
    }
}

/// Builds `A = L + Lᵀ` but keeps `L`'s diagonal (instead of doubling it), so
/// that the reordered operand `lower(P A Pᵀ)` carries the same values as the
/// input wherever the pattern overlaps.
// Every pushed index comes from a validated `LowerTriangularCsr`, so the
// bounds-checked pushes cannot fail.
#[allow(clippy::expect_used)]
pub fn symmetrize_preserving_diagonal(l: &LowerTriangularCsr) -> CsrMatrix {
    let n = l.n();
    let mut coo = CooMatrix::with_capacity(n, n, l.nnz() * 2);
    for i in 0..n {
        for (&j, &v) in l.row_off_diag_cols(i).iter().zip(l.row_off_diag_values(i)) {
            coo.push(i, j, v).expect("indices in bounds");
            coo.push(j, i, v).expect("indices in bounds");
        }
        coo.push(i, i, l.diag(i)).expect("indices in bounds");
    }
    coo.to_csr()
}

/// Computes, for every entity (super-row), the list of entities it depends on
/// (strictly smaller indices, suitable for
/// [`Packs::by_level_set`](crate::pack::Packs::by_level_set)). Entity `I`
/// depends on entity `J < I` when any row of `I` has a strictly-lower nonzero
/// column owned by `J`.
pub fn entity_predecessors(l: &LowerTriangularCsr, groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut group_of = vec![usize::MAX; l.n()];
    for (s, g) in groups.iter().enumerate() {
        for &r in g {
            group_of[r] = s;
        }
    }
    groups
        .iter()
        .enumerate()
        .map(|(s, g)| {
            let mut preds: Vec<usize> = g
                .iter()
                .flat_map(|&r| l.row_off_diag_cols(r).iter().copied())
                .map(|c| group_of[c])
                .filter(|&j| j != s)
                .collect();
            preds.sort_unstable();
            preds.dedup();
            preds
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;
    use sts_matrix::ops;

    fn check_solves_correctly(s: &StsStructure) {
        let n = s.n();
        let x_true: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let x = s.solve_sequential(&b).unwrap();
        assert!(
            ops::relative_error_inf(&x, &x_true) < 1e-10,
            "solve of the reordered system must reproduce the manufactured solution"
        );
    }

    #[test]
    fn all_methods_build_and_solve_on_the_paper_example() {
        let l = generators::paper_figure1_l();
        for method in Method::all() {
            let s = method.build(&l, 2).unwrap();
            assert_eq!(s.n(), 9);
            s.validate().unwrap();
            check_solves_correctly(&s);
        }
    }

    #[test]
    fn all_methods_build_and_solve_on_generator_matrices() {
        let matrices = [
            generators::grid2d_laplacian(12, 12).unwrap(),
            generators::triangulated_grid(10, 10, 3).unwrap(),
            generators::road_network(14, 14, 0.6, 1).unwrap(),
            generators::random_geometric(250, 8.0, 2).unwrap(),
        ];
        for a in &matrices {
            let l = generators::lower_operand(a).unwrap();
            for method in Method::all() {
                let s = method.build(&l, 8).unwrap();
                assert_eq!(s.n(), l.n());
                assert_eq!(
                    s.nnz(),
                    l.nnz(),
                    "reordering must preserve the nonzero count"
                );
                s.validate().unwrap();
                check_solves_correctly(&s);
            }
        }
    }

    #[test]
    fn coloring_yields_fewer_packs_than_level_set() {
        let a = generators::triangulated_grid(20, 20, 7).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let col = Method::CsrCol.build(&l, 8).unwrap();
        let ls = Method::CsrLs.build(&l, 8).unwrap();
        assert!(
            col.num_packs() < ls.num_packs(),
            "coloring packs ({}) should be fewer than level-set packs ({})",
            col.num_packs(),
            ls.num_packs()
        );
    }

    #[test]
    fn k3_reduces_pack_count_relative_to_k1_for_level_sets() {
        // Section 3.2: level sets applied to G2 produce fewer levels than on G1.
        let a = generators::grid2d_9point(24, 24).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let flat = Method::CsrLs.build(&l, 8).unwrap();
        let k3 = Method::Csr3Ls.build(&l, 8).unwrap();
        assert!(
            k3.num_packs() < flat.num_packs(),
            "CSR-3-LS packs ({}) should be fewer than CSR-LS packs ({})",
            k3.num_packs(),
            flat.num_packs()
        );
    }

    #[test]
    fn packs_are_ordered_by_increasing_size() {
        let a = generators::triangulated_grid(16, 16, 1).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 8).unwrap();
        let sizes = s.components_per_pack();
        assert!(
            sizes.windows(2).all(|w| w[0] <= w[1]),
            "pack sizes must be non-decreasing"
        );
    }

    #[test]
    fn super_row_sizing_by_rows_bounds_group_length() {
        let a = generators::grid2d_laplacian(20, 20).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = StsBuilder::new(3)
            .ordering(Ordering::Coloring)
            .super_row_sizing(SuperRowSizing::Rows(16))
            .build(&l)
            .unwrap();
        for sr in 0..s.num_super_rows() {
            assert!(s.super_row_rows(sr).len() <= 16);
        }
        assert!(s.num_super_rows() >= 400 / 16);
    }

    #[test]
    fn super_row_sizing_by_nnz_builds_and_solves() {
        let a = generators::grid2d_9point(15, 15).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = StsBuilder::new(3)
            .ordering(Ordering::Coloring)
            .super_row_sizing(SuperRowSizing::Nnz(120))
            .build(&l)
            .unwrap();
        s.validate().unwrap();
        check_solves_correctly(&s);
    }

    #[test]
    fn disabling_rcm_and_pack_ordering_still_solves() {
        let a = generators::triangulated_grid(10, 10, 9).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = StsBuilder::new(3)
            .ordering(Ordering::Coloring)
            .apply_rcm(false)
            .order_packs_by_size(false)
            .within_pack_rcm(false)
            .super_row_sizing(SuperRowSizing::Rows(4))
            .build(&l)
            .unwrap();
        s.validate().unwrap();
        check_solves_correctly(&s);
    }

    #[test]
    fn k2_builds_super_rows_without_dar_reordering() {
        let a = generators::grid2d_laplacian(12, 12).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = StsBuilder::new(2)
            .ordering(Ordering::Coloring)
            .super_row_sizing(SuperRowSizing::Rows(6))
            .build(&l)
            .unwrap();
        assert_eq!(s.k(), 2);
        assert!(s.num_super_rows() < s.n());
        check_solves_correctly(&s);
    }

    #[test]
    #[should_panic(expected = "k must be 1, 2 or 3")]
    fn k_zero_is_rejected() {
        let _ = StsBuilder::new(0);
    }

    #[test]
    fn empty_matrix_builds_trivially() {
        let coo = sts_matrix::CooMatrix::new(0, 0);
        let l = LowerTriangularCsr::from_csr(&coo.to_csr()).unwrap();
        let s = Method::Sts3.build(&l, 8).unwrap();
        assert_eq!(s.n(), 0);
        assert_eq!(s.num_packs(), 0);
        assert_eq!(s.solve_sequential(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn symmetrize_preserves_diagonal_and_mirrors_off_diagonals() {
        let l = generators::paper_figure1_l();
        let a = symmetrize_preserving_diagonal(&l);
        assert!(a.is_symmetric(1e-15));
        for i in 0..9 {
            assert_eq!(a.get(i, i), l.diag(i));
        }
        assert_eq!(a.get(8, 0), -1.0);
        assert_eq!(a.get(0, 8), -1.0);
    }

    #[test]
    fn entity_predecessors_point_backwards_only() {
        let l = generators::paper_figure1_l();
        let groups: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
        let preds = entity_predecessors(&l, &groups);
        for (i, p) in preds.iter().enumerate() {
            assert!(p.iter().all(|&j| j < i));
        }
        // The last group depends on both earlier groups (rows 6..8 reference
        // columns 3, 4, 5 and 0, 1).
        assert_eq!(preds[2], vec![0, 1]);
    }

    #[test]
    fn method_labels_match_paper_names() {
        assert_eq!(Method::CsrLs.label(), "CSR-LS");
        assert_eq!(Method::CsrCol.label(), "CSR-COL");
        assert_eq!(Method::Csr3Ls.label(), "CSR-3-LS");
        assert_eq!(Method::Sts3.label(), "STS-3");
        assert_eq!(Method::all().len(), 4);
    }

    #[test]
    fn nnz_is_preserved_by_the_reordering() {
        // The permuted operand has exactly the same number of stored entries:
        // the reordering only relabels the symmetric pattern.
        let a = generators::random_geometric(300, 10.0, 5).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 16).unwrap();
            assert_eq!(s.nnz(), l.nnz());
        }
    }
}
