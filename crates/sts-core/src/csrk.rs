//! The CSR-k structure: the reordered triangular operand plus its pack /
//! super-row hierarchy.
//!
//! The storage follows Algorithm 1 of the paper. On top of the traditional
//! CSR arrays of the operand (`index1`, `subscript1`, `valueL`, held in an
//! [`LowerTriangularCsr`]), two extra index arrays describe the hierarchy:
//!
//! * `index3[p] .. index3[p+1]` — the super-rows of pack `p`;
//! * `index2[s] .. index2[s+1]` — the rows of super-row `s`.
//!
//! Packs are executed one after another (with a barrier in between); the
//! super-rows of a pack are independent tasks; the rows of a super-row are
//! solved sequentially by whichever core owns the task.

use std::sync::{Arc, OnceLock};

use sts_graph::Permutation;
use sts_matrix::{LowerTriangularCsr, MatrixError};

use crate::builder::Ordering;
use crate::options::SlabValue;
use crate::split::SplitLayout;
use crate::transpose::TransposeLayout;

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// The k-level reordered triangular system produced by
/// [`StsBuilder`](crate::builder::StsBuilder).
#[derive(Debug, Clone)]
pub struct StsStructure {
    k: usize,
    ordering: Ordering,
    /// Pack → first super-row, shared (`Arc`) between the analysis structure
    /// and any factor structure derived via [`StsStructure::with_operand`].
    index3: Arc<Vec<usize>>,
    /// Super-row → first row, shared like `index3`.
    index2: Arc<Vec<usize>>,
    l: LowerTriangularCsr,
    /// The reordering permutation, shared like the index arrays.
    perm: Arc<Permutation>,
    /// The dependency-split layout, built on first use ([`StsStructure::split`]):
    /// it roughly doubles the off-diagonal storage, so unsplit-only callers
    /// should not pay for it.
    split: OnceLock<SplitLayout>,
    /// The transpose (backward-sweep) split layout, likewise built on first
    /// use ([`StsStructure::transpose_split`]) — only the forward/backward
    /// sweep pairs of preconditioner applications pay for it.
    tsplit: OnceLock<TransposeLayout>,
    /// Debug-only guard: set once the forward layout's schedule has been
    /// statically verified ([`StsStructure::split`] runs the check on first
    /// build under `debug_assertions`). A plain flag, not a lazily computed
    /// value, because the verifier itself calls [`StsStructure::split`]
    /// reentrantly. Ignored by `PartialEq` like the layout caches, and
    /// never read in release builds (where the hook compiles out).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    split_verified: OnceLock<()>,
    /// Debug-only guard for the transpose layout's schedule (see
    /// `split_verified`).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    tsplit_verified: OnceLock<()>,
}

/// Equality ignores the lazy split cache: the layout is a pure function of
/// the other fields, so two structures that differ only in whether
/// [`StsStructure::split`] has been called yet are still equal.
impl PartialEq for StsStructure {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.ordering == other.ordering
            && self.index3 == other.index3
            && self.index2 == other.index2
            && self.l == other.l
            && self.perm == other.perm
    }
}

impl StsStructure {
    /// Assembles a structure from its parts, validating every invariant (see
    /// [`StsStructure::validate`]). The dependency-split layout the two-phase
    /// and pipelined kernels run on is *not* built here; it is constructed
    /// lazily by the first [`StsStructure::split`] call (the `u32` column
    /// limit it relies on is still checked eagerly, so the lazy build cannot
    /// fail).
    pub fn new(
        k: usize,
        ordering: Ordering,
        index3: Vec<usize>,
        index2: Vec<usize>,
        l: LowerTriangularCsr,
        perm: Permutation,
    ) -> Result<Self> {
        Self::from_shared(
            k,
            ordering,
            Arc::new(index3),
            Arc::new(index2),
            l,
            Arc::new(perm),
        )
    }

    /// Assembles a structure around already-shared hierarchy arrays, still
    /// validating every invariant. This is how [`StsStructure::with_operand`]
    /// avoids copying the (potentially large) index arrays and permutation:
    /// the analysis structure and every factor structure derived from it hold
    /// `Arc`s to the same allocations.
    fn from_shared(
        k: usize,
        ordering: Ordering,
        index3: Arc<Vec<usize>>,
        index2: Arc<Vec<usize>>,
        l: LowerTriangularCsr,
        perm: Arc<Permutation>,
    ) -> Result<Self> {
        let s = StsStructure {
            k,
            ordering,
            index3,
            index2,
            l,
            perm,
            split: OnceLock::new(),
            tsplit: OnceLock::new(),
            split_verified: OnceLock::new(),
            tsplit_verified: OnceLock::new(),
        };
        s.validate()?;
        if s.n() > 0 && s.n() - 1 > u32::MAX as usize {
            return Err(MatrixError::InvalidStructure(format!(
                "split layout stores columns as u32; n = {} exceeds the 2^32 row limit",
                s.n()
            )));
        }
        Ok(s)
    }

    /// For every row, the first row of its pack (the boundary the split
    /// layout classifies columns against).
    fn pack_start_rows(&self) -> Vec<usize> {
        let mut start = vec![0usize; self.n()];
        for p in 0..self.num_packs() {
            let rows = self.pack_rows(p);
            for r in rows.clone() {
                start[r] = rows.start;
            }
        }
        start
    }

    /// The number of levels of sub-structuring (1 for the flat reference
    /// methods, 3 for STS-3).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The ordering (coloring or level-set) that produced the packs.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// Dimension of the system.
    pub fn n(&self) -> usize {
        self.l.n()
    }

    /// Stored nonzeros of the reordered operand.
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }

    /// The reordered triangular operand `L' = lower(P A Pᵀ)`.
    pub fn lower(&self) -> &LowerTriangularCsr {
        &self.l
    }

    /// The permutation `P` (new index → original index).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Number of packs (parallel steps separated by barriers).
    pub fn num_packs(&self) -> usize {
        self.index3.len() - 1
    }

    /// Number of super-rows (parallel tasks) over all packs.
    pub fn num_super_rows(&self) -> usize {
        self.index2.len() - 1
    }

    /// The `index3` array (pack → first super-row).
    pub fn index3(&self) -> &[usize] {
        &self.index3
    }

    /// The `index2` array (super-row → first row).
    pub fn index2(&self) -> &[usize] {
        &self.index2
    }

    /// The super-rows of pack `p`.
    pub fn pack_super_rows(&self, p: usize) -> std::ops::Range<usize> {
        self.index3[p]..self.index3[p + 1]
    }

    /// The rows of super-row `s`.
    pub fn super_row_rows(&self, s: usize) -> std::ops::Range<usize> {
        self.index2[s]..self.index2[s + 1]
    }

    /// The rows covered by pack `p`.
    pub fn pack_rows(&self, p: usize) -> std::ops::Range<usize> {
        self.index2[self.index3[p]]..self.index2[self.index3[p + 1]]
    }

    /// Number of solution components (rows) computed by each pack.
    pub fn components_per_pack(&self) -> Vec<usize> {
        (0..self.num_packs())
            .map(|p| self.pack_rows(p).len())
            .collect()
    }

    /// Work (stored nonzeros, i.e. fused multiply-adds) performed by each pack.
    pub fn work_per_pack(&self) -> Vec<usize> {
        (0..self.num_packs())
            .map(|p| {
                let rows = self.pack_rows(p);
                self.l.row_ptr()[rows.end] - self.l.row_ptr()[rows.start]
            })
            .collect()
    }

    /// Solves the reordered system `L' x' = b'` sequentially, iterating packs,
    /// super-rows and rows exactly as Algorithm 1 does with one thread.
    pub fn solve_sequential(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                self.n()
            )));
        }
        let mut x = vec![0.0; self.n()];
        let row_ptr = self.l.row_ptr();
        let col_idx = self.l.col_idx();
        let values = self.l.values();
        for p in 0..self.num_packs() {
            for s in self.pack_super_rows(p) {
                for i1 in self.super_row_rows(s) {
                    let start = row_ptr[i1];
                    let end = row_ptr[i1 + 1];
                    let mut acc = 0.0;
                    for k in start..end - 1 {
                        acc += values[k] * x[col_idx[k]];
                    }
                    x[i1] = (b[i1] - acc) / values[end - 1];
                }
            }
        }
        Ok(x)
    }

    /// The dependency-split layout (external/internal slabs plus readiness
    /// metadata), built on first use. Thread-safe: concurrent first calls
    /// race benignly inside the `OnceLock`; every caller sees the same built
    /// layout. Callers who want the build cost out of their timed region can
    /// force it up front with this same method.
    pub fn split(&self) -> &SplitLayout {
        let layout = self.split.get_or_init(|| {
            SplitLayout::build(&self.l, &self.pack_start_rows(), &self.index3, &self.index2)
        });
        // Debug builds statically verify the schedule the first time the
        // layout is built. The guard must be a non-blocking `set` (first
        // caller wins, losers skip): the verifier extracts its footprints by
        // calling `split()` again, and a `get_or_init` here would deadlock on
        // that reentrancy.
        #[cfg(debug_assertions)]
        if self.split_verified.set(()).is_ok() {
            if let Err(v) =
                self.verify_schedule_at(usize::MAX, crate::options::SweepDirection::Forward)
            {
                panic!("forward schedule fails static verification: {v}");
            }
            for &threads in &crate::verify::VERIFY_THREAD_SWEEP {
                if let Err(v) = self.verify_factor_schedule(threads) {
                    panic!("factor schedule fails static verification: {v}");
                }
            }
        }
        layout
    }

    /// Whether the dependency-split layout has been built yet (diagnostic;
    /// unsplit-only callers should keep this `false` and skip the ≈2×
    /// off-diagonal storage cost).
    pub fn split_built(&self) -> bool {
        self.split.get().is_some()
    }

    /// The transpose (backward-sweep) split layout, built on first use like
    /// [`StsStructure::split`]. See [`TransposeLayout`] for the
    /// reverse-pack-order correctness argument the backward kernels rely on.
    pub fn transpose_split(&self) -> &TransposeLayout {
        let layout = self
            .tsplit
            .get_or_init(|| TransposeLayout::build(&self.l, &self.index3, &self.index2));
        // Same first-build verification (and same reentrancy-safe guard) as
        // `split()`, for the backward-sweep schedule.
        #[cfg(debug_assertions)]
        if self.tsplit_verified.set(()).is_ok() {
            if let Err(v) =
                self.verify_schedule_at(usize::MAX, crate::options::SweepDirection::Transpose)
            {
                panic!("transpose schedule fails static verification: {v}");
            }
        }
        layout
    }

    /// Whether the transpose split layout has been built yet (diagnostic).
    pub fn transpose_split_built(&self) -> bool {
        self.tsplit.get().is_some()
    }

    /// Rebuilds this structure around a different operand that shares the
    /// hierarchy: same dimension, same pack / super-row boundaries, and a
    /// sparsity pattern that still satisfies the pack-independence invariant
    /// (validated). The permutation is carried over unchanged.
    ///
    /// This is the factored-preconditioner entry point: an incomplete
    /// Cholesky factor has exactly the sparsity pattern of the reordered
    /// operand's lower triangle, so the ordering computed once for the
    /// system matrix (and the split layouts derived from it) can host the
    /// factor's values without re-running the ordering pipeline. The split
    /// layouts themselves are value-bearing and are rebuilt lazily on the
    /// returned structure.
    pub fn with_operand(&self, l: LowerTriangularCsr) -> Result<StsStructure> {
        if l.n() != self.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "replacement operand is {}x{0}, structure expects {1}x{1}",
                l.n(),
                self.n()
            )));
        }
        StsStructure::from_shared(
            self.k,
            self.ordering,
            Arc::clone(&self.index3),
            Arc::clone(&self.index2),
            l,
            Arc::clone(&self.perm),
        )
    }

    /// Whether `other` shares this structure's hierarchy allocations (index
    /// arrays and permutation) rather than owning copies. True for any
    /// structure derived through [`StsStructure::with_operand`]; diagnostic
    /// for cache implementations that rely on the sharing.
    pub fn shares_hierarchy_with(&self, other: &StsStructure) -> bool {
        Arc::ptr_eq(&self.index3, &other.index3)
            && Arc::ptr_eq(&self.index2, &other.index2)
            && Arc::ptr_eq(&self.perm, &other.perm)
    }

    /// Solves `L' x' = b'` sequentially on the dependency-split layout.
    ///
    /// Produces the same iteration order as [`StsStructure::solve_sequential`]
    /// pack by pack, but walks each pack in two phases: first the external
    /// gather `x[i] = b[i] − Σ L_ext·x` over all rows of the pack (inputs are
    /// final, any order works), then the internal substitution over the
    /// super-rows. Floating-point sums are reassociated relative to the
    /// unsplit kernel, so results agree to rounding (≤ 1e-12 relative), not
    /// bitwise.
    pub fn solve_sequential_split(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n()];
        self.solve_sequential_split_into(b, &mut x)?;
        Ok(x)
    }

    /// [`StsStructure::solve_sequential_split`] into a caller-provided
    /// buffer: no heap allocation, so repeated solves on one structure (the
    /// preconditioner pattern) stay allocation-free after the lazy layout
    /// build.
    pub fn solve_sequential_split_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let split = self.split();
        self.sequential_split_sweep_into(b, x, split.ext_vals(), split.int_vals())
    }

    /// Mixed-precision [`StsStructure::solve_sequential_split`]: loads the
    /// demoted `f32` value slabs but accumulates in `f64` (the storage /
    /// accumulation split of
    /// [`PrecisionPolicy::ValuesF32WithRefinement`](crate::options::PrecisionPolicy)).
    /// Accurate to ≈ `f32` storage rounding per sweep; drive to full
    /// accuracy with an outer corrector.
    pub fn solve_sequential_split_f32(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n()];
        self.solve_sequential_split_f32_into(b, &mut x)?;
        Ok(x)
    }

    /// [`StsStructure::solve_sequential_split_f32`] into a caller-provided
    /// buffer (no heap allocation after the lazy `f32` slab build).
    pub fn solve_sequential_split_f32_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let split = self.split();
        self.sequential_split_sweep_into(b, x, split.ext_vals_f32(), split.int_vals_f32())
    }

    /// The forward sequential split sweep, generic over the stored value
    /// type. The `f64` instantiation is instruction-for-instruction the
    /// pre-generic kernel (`SlabValue::to_f64` is the inlined identity), so
    /// the engine-matrix bitwise invariants are preserved.
    fn sequential_split_sweep_into<V: SlabValue>(
        &self,
        b: &[f64],
        x: &mut [f64],
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        if b.len() != self.n() || x.len() != self.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b and x must both have length {}, got {} and {}",
                self.n(),
                b.len(),
                x.len()
            )));
        }
        let split = self.split();
        let erp = split.ext_row_ptr();
        let ecols = split.ext_cols();
        let irp = split.int_row_ptr();
        let icols = split.int_cols();
        let inv_diag = split.inv_diags();
        for p in 0..self.num_packs() {
            let rows = self.pack_rows(p);
            // Phase 1: external gather with the diagonal scale folded in,
            // `y[i] = (b[i] − Σ L_ext·x) / L[i][i]`. Rows without internal
            // entries are already final after this sweep.
            for i1 in rows.clone() {
                let mut acc = 0.0;
                for k in erp[i1]..erp[i1 + 1] {
                    acc += evals[k].to_f64() * x[ecols[k] as usize];
                }
                x[i1] = (b[i1] - acc) * inv_diag[i1];
            }
            // Phase 2: internal substitution, visiting only the chain rows
            // (`x[i] −= d_i · Σ L_int·x`) of the chain tasks; everything
            // else was final after phase 1.
            for t in 0..split.chain_super_rows(p).len() {
                for &i1 in split.chain_rows_of(p, t) {
                    let i1 = i1 as usize;
                    let mut acc = 0.0;
                    for k in irp[i1]..irp[i1 + 1] {
                        acc += ivals[k].to_f64() * x[icols[k] as usize];
                    }
                    x[i1] -= acc * inv_diag[i1];
                }
            }
        }
        Ok(())
    }

    /// Solves `L' X' = B'` for `nrhs` interleaved right-hand sides
    /// (`b[i * nrhs + q]`) sequentially on the dependency-split layout, with
    /// the index traffic of every row amortised over the batch.
    ///
    /// Per right-hand side this performs **exactly** the floating-point
    /// operations of [`StsStructure::solve_sequential_split`], in the same
    /// order — the batch dimension only reorders the *loads* of the shared
    /// column/value slabs — so the result is bitwise identical to `nrhs`
    /// scalar sequential split solves. That is what lets the sequential
    /// sweep engine serve batched preconditioner applications
    /// interchangeably with the pipelined batch kernels on single-core
    /// hosts.
    pub fn solve_batch_sequential_split(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>> {
        let mut x = vec![0.0; b.len()];
        self.solve_batch_sequential_split_into(b, &mut x, nrhs)?;
        Ok(x)
    }

    /// [`StsStructure::solve_batch_sequential_split`] into a caller-provided
    /// buffer: no heap allocation (the per-row accumulators live in a fixed
    /// stack block, walked in chunks of up to [`BATCH_CHUNK`] right-hand
    /// sides).
    pub fn solve_batch_sequential_split_into(
        &self,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let split = self.split();
        self.batch_sequential_split_sweep_into(b, x, nrhs, split.ext_vals(), split.int_vals())
    }

    /// Mixed-precision [`StsStructure::solve_batch_sequential_split_into`]:
    /// `f32` value slabs, `f64` accumulation, lane-bitwise identical to
    /// `nrhs` scalar [`StsStructure::solve_sequential_split_f32`] sweeps.
    pub fn solve_batch_sequential_split_f32_into(
        &self,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let split = self.split();
        self.batch_sequential_split_sweep_into(
            b,
            x,
            nrhs,
            split.ext_vals_f32(),
            split.int_vals_f32(),
        )
    }

    /// The forward sequential batch sweep, generic over the stored value
    /// type (see [`StsStructure::sequential_split_sweep_into`]).
    fn batch_sequential_split_sweep_into<V: SlabValue>(
        &self,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        self.check_batch_lengths(b, x, nrhs)?;
        let split = self.split();
        let erp = split.ext_row_ptr();
        let ecols = split.ext_cols();
        let irp = split.int_row_ptr();
        let icols = split.int_cols();
        let inv_diag = split.inv_diags();
        for p in 0..self.num_packs() {
            let rows = self.pack_rows(p);
            // Phase 1: external gather with the diagonal scale folded in.
            for i1 in rows.clone() {
                let r = erp[i1]..erp[i1 + 1];
                batch_row_update(
                    Some(b),
                    x,
                    i1,
                    &ecols[r.clone()],
                    &evals[r],
                    inv_diag[i1],
                    nrhs,
                );
            }
            // Phase 2: internal substitution over the chain rows.
            for t in 0..split.chain_super_rows(p).len() {
                for &i1 in split.chain_rows_of(p, t) {
                    let i1 = i1 as usize;
                    let r = irp[i1]..irp[i1 + 1];
                    batch_row_update(
                        None,
                        x,
                        i1,
                        &icols[r.clone()],
                        &ivals[r],
                        inv_diag[i1],
                        nrhs,
                    );
                }
            }
        }
        Ok(())
    }

    /// Solves the transposed system `L'ᵀ X' = B'` for `nrhs` interleaved
    /// right-hand sides sequentially on the transpose split layout (packs in
    /// reverse order, like
    /// [`StsStructure::solve_transpose_sequential_split`]). Bitwise
    /// identical per right-hand side to `nrhs` scalar transpose sequential
    /// split solves, for the same reason as
    /// [`StsStructure::solve_batch_sequential_split`].
    pub fn solve_transpose_batch_sequential_split(
        &self,
        b: &[f64],
        nrhs: usize,
    ) -> Result<Vec<f64>> {
        let mut x = vec![0.0; b.len()];
        self.solve_transpose_batch_sequential_split_into(b, &mut x, nrhs)?;
        Ok(x)
    }

    /// [`StsStructure::solve_transpose_batch_sequential_split`] into a
    /// caller-provided buffer (no heap allocation).
    pub fn solve_transpose_batch_sequential_split_into(
        &self,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let ts = self.transpose_split();
        self.transpose_batch_sequential_split_sweep_into(b, x, nrhs, ts.ext_vals(), ts.int_vals())
    }

    /// Mixed-precision
    /// [`StsStructure::solve_transpose_batch_sequential_split_into`]:
    /// `f32` value slabs, `f64` accumulation.
    pub fn solve_transpose_batch_sequential_split_f32_into(
        &self,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let ts = self.transpose_split();
        self.transpose_batch_sequential_split_sweep_into(
            b,
            x,
            nrhs,
            ts.ext_vals_f32(),
            ts.int_vals_f32(),
        )
    }

    /// The backward sequential batch sweep, generic over the stored value
    /// type (see [`StsStructure::sequential_split_sweep_into`]).
    fn transpose_batch_sequential_split_sweep_into<V: SlabValue>(
        &self,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        self.check_batch_lengths(b, x, nrhs)?;
        let ts = self.transpose_split();
        let erp = ts.ext_row_ptr();
        let ecols = ts.ext_cols();
        let irp = ts.int_row_ptr();
        let icols = ts.int_cols();
        let inv_diag = ts.inv_diags();
        for p in (0..self.num_packs()).rev() {
            // Phase 1: gather from later packs, all of which are final.
            for i1 in self.pack_rows(p) {
                let r = erp[i1]..erp[i1 + 1];
                batch_row_update(
                    Some(b),
                    x,
                    i1,
                    &ecols[r.clone()],
                    &evals[r],
                    inv_diag[i1],
                    nrhs,
                );
            }
            // Phase 2: backward chains, decreasing row order within a task.
            for t in 0..ts.chain_super_rows(p).len() {
                for &i1 in ts.chain_rows_of(p, t) {
                    let i1 = i1 as usize;
                    let r = irp[i1]..irp[i1 + 1];
                    batch_row_update(
                        None,
                        x,
                        i1,
                        &icols[r.clone()],
                        &ivals[r],
                        inv_diag[i1],
                        nrhs,
                    );
                }
            }
        }
        Ok(())
    }

    fn check_batch_lengths(&self, b: &[f64], x: &[f64], nrhs: usize) -> Result<()> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "batched solves need at least one right-hand side".into(),
            ));
        }
        if b.len() != self.n() * nrhs || x.len() != self.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B and X must both have length n * nrhs = {}, got {} and {}",
                self.n() * nrhs,
                b.len(),
                x.len()
            )));
        }
        Ok(())
    }

    /// Solves the transposed system `L'ᵀ x' = b'` sequentially on the
    /// transpose split layout, walking the packs in **reverse** order (see
    /// [`TransposeLayout`] for why that ordering is correct): per pack, an
    /// external gather against later (already finished) packs, then the
    /// within-super-row backward chains in decreasing row order.
    ///
    /// The per-row arithmetic is identical to the parallel backward kernels
    /// regardless of thread count, so sequential- and pipelined-sweep
    /// callers see bitwise-identical results.
    pub fn solve_transpose_sequential_split(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n()];
        self.solve_transpose_sequential_split_into(b, &mut x)?;
        Ok(x)
    }

    /// [`StsStructure::solve_transpose_sequential_split`] into a
    /// caller-provided buffer (no heap allocation).
    pub fn solve_transpose_sequential_split_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let ts = self.transpose_split();
        self.transpose_sequential_split_sweep_into(b, x, ts.ext_vals(), ts.int_vals())
    }

    /// Mixed-precision [`StsStructure::solve_transpose_sequential_split`]:
    /// `f32` value slabs, `f64` accumulation (see
    /// [`StsStructure::solve_sequential_split_f32`]).
    pub fn solve_transpose_sequential_split_f32(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n()];
        self.solve_transpose_sequential_split_f32_into(b, &mut x)?;
        Ok(x)
    }

    /// [`StsStructure::solve_transpose_sequential_split_f32`] into a
    /// caller-provided buffer (no heap allocation after the lazy `f32` slab
    /// build).
    pub fn solve_transpose_sequential_split_f32_into(
        &self,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<()> {
        let ts = self.transpose_split();
        self.transpose_sequential_split_sweep_into(b, x, ts.ext_vals_f32(), ts.int_vals_f32())
    }

    /// The backward sequential split sweep, generic over the stored value
    /// type (see [`StsStructure::sequential_split_sweep_into`]).
    fn transpose_sequential_split_sweep_into<V: SlabValue>(
        &self,
        b: &[f64],
        x: &mut [f64],
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        if b.len() != self.n() || x.len() != self.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b and x must both have length {}, got {} and {}",
                self.n(),
                b.len(),
                x.len()
            )));
        }
        let ts = self.transpose_split();
        let erp = ts.ext_row_ptr();
        let ecols = ts.ext_cols();
        let irp = ts.int_row_ptr();
        let icols = ts.int_cols();
        let inv_diag = ts.inv_diags();
        for p in (0..self.num_packs()).rev() {
            // Phase 1: gather from later packs, all of which are final.
            for i1 in self.pack_rows(p) {
                let mut acc = 0.0;
                for k in erp[i1]..erp[i1 + 1] {
                    acc += evals[k].to_f64() * x[ecols[k] as usize];
                }
                x[i1] = (b[i1] - acc) * inv_diag[i1];
            }
            // Phase 2: backward chains, decreasing row order within a task.
            for t in 0..ts.chain_super_rows(p).len() {
                for &i1 in ts.chain_rows_of(p, t) {
                    let i1 = i1 as usize;
                    let mut acc = 0.0;
                    for k in irp[i1]..irp[i1 + 1] {
                        acc += ivals[k].to_f64() * x[icols[k] as usize];
                    }
                    x[i1] -= acc * inv_diag[i1];
                }
            }
        }
        Ok(())
    }

    /// Solves `L' X' = B'` for `nrhs` right-hand sides at once on the split
    /// layout, amortising the index traffic of every row over the batch.
    ///
    /// `b` holds the right-hand sides row-major (`b[i * nrhs + r]` is
    /// component `i` of system `r`) and the solution uses the same layout.
    pub fn solve_batch(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_batch needs at least one right-hand side".into(),
            ));
        }
        if b.len() != self.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B has length {}, expected n * nrhs = {}",
                b.len(),
                self.n() * nrhs
            )));
        }
        let mut x = vec![0.0; self.n() * nrhs];
        let split = self.split();
        for p in 0..self.num_packs() {
            let rows = self.pack_rows(p);
            for i1 in rows.clone() {
                let (cols, vals) = split.ext_row(i1);
                let d = split.inv_diag(i1);
                // Every referenced column is < i1, so splitting at the row
                // boundary separates the reads from the written row.
                let (done, cur) = x.split_at_mut(i1 * nrhs);
                let row = &mut cur[..nrhs];
                row.copy_from_slice(&b[i1 * nrhs..(i1 + 1) * nrhs]);
                for (&j, &v) in cols.iter().zip(vals) {
                    // One (col, val) load serves all nrhs systems.
                    let xj = &done[j as usize * nrhs..(j as usize + 1) * nrhs];
                    for r in 0..nrhs {
                        row[r] -= v * xj[r];
                    }
                }
                for value in row.iter_mut() {
                    *value *= d;
                }
            }
            for t in 0..split.chain_super_rows(p).len() {
                for &i1 in split.chain_rows_of(p, t) {
                    let i1 = i1 as usize;
                    let (cols, vals) = split.int_row(i1);
                    let d = split.inv_diag(i1);
                    let (done, cur) = x.split_at_mut(i1 * nrhs);
                    let row = &mut cur[..nrhs];
                    for (&j, &v) in cols.iter().zip(vals) {
                        let xj = &done[j as usize * nrhs..(j as usize + 1) * nrhs];
                        for r in 0..nrhs {
                            row[r] -= v * d * xj[r];
                        }
                    }
                }
            }
        }
        Ok(x)
    }

    /// Solves the transposed (upper-triangular) system `L'ᵀ x' = b'`
    /// sequentially.
    ///
    /// Together with [`StsStructure::solve_sequential`] this provides the
    /// forward/backward sweep pair that symmetric Gauss–Seidel and incomplete
    /// Cholesky preconditioners perform per iteration. The backward sweep is
    /// mathematically equivalent to processing the packs in reverse order.
    pub fn solve_transpose_sequential(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.l.solve_transpose_seq(b)
    }

    /// Maps a solution vector of the reordered system back to the original
    /// row numbering (`result[original] = x_new[new]`).
    pub fn scatter_to_original(&self, x_new: &[f64]) -> Vec<f64> {
        self.perm.scatter_to_original(x_new)
    }

    /// Gathers a vector given in original numbering into the reordered
    /// numbering (`result[new] = v[original]`).
    pub fn gather_from_original(&self, v: &[f64]) -> Vec<f64> {
        self.perm.apply_to_slice(v)
    }

    /// Validates every structural invariant:
    ///
    /// 1. `index3`/`index2` are monotone, start at 0 and end at the number of
    ///    super-rows / rows respectively;
    /// 2. the permutation has the right size;
    /// 3. **pack independence** — no row depends (through a strictly-lower
    ///    nonzero of `L'`) on a row of a *different* super-row of the same
    ///    pack; dependencies must come from earlier packs or from earlier rows
    ///    of the same super-row.
    pub fn validate(&self) -> Result<()> {
        let n = self.l.n();
        if self.perm.len() != n {
            return Err(MatrixError::InvalidStructure(format!(
                "permutation length {} does not match n = {n}",
                self.perm.len()
            )));
        }
        check_monotone_cover(&self.index2, n, "index2")?;
        check_monotone_cover(&self.index3, self.index2.len() - 1, "index3")?;
        // Row → super-row and super-row → pack lookup tables.
        let mut super_row_of = vec![0usize; n];
        for s in 0..self.num_super_rows() {
            for r in self.super_row_rows(s) {
                super_row_of[r] = s;
            }
        }
        let mut pack_of = vec![0usize; self.num_super_rows()];
        for p in 0..self.num_packs() {
            for s in self.pack_super_rows(p) {
                pack_of[s] = p;
            }
        }
        for i in 0..n {
            let si = super_row_of[i];
            for &j in self.l.row_off_diag_cols(i) {
                let sj = super_row_of[j];
                if sj == si {
                    continue; // internal to the task: solved sequentially
                }
                if pack_of[sj] >= pack_of[si] {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {i} (pack {}) depends on row {j} (pack {}) which is not in an \
                         earlier pack",
                        pack_of[si], pack_of[sj]
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Right-hand sides processed per stack accumulator block by the sequential
/// batch kernels — wide enough that typical batches (4–8 RHS) stream the
/// column/value slabs exactly once, small enough to stay in registers.
pub const BATCH_CHUNK: usize = 8;

/// One row of a sequential batched sweep, for every right-hand side, in
/// chunks of [`BATCH_CHUNK`]: accumulates `acc[q] = Σ_k vals[k] ·
/// x[cols[k], q]` in slab order (the *same* floating-point sequence as the
/// scalar split kernels, so each lane is bitwise identical to a standalone
/// solve) and then applies either the phase-1 external update
/// `x[i, q] = (b[i, q] − acc[q]) · d` (when `b` is provided) or the phase-2
/// chain update `x[i, q] −= acc[q] · d` (when it is not).
#[inline]
fn batch_row_update<V: SlabValue>(
    b: Option<&[f64]>,
    x: &mut [f64],
    i1: usize,
    cols: &[u32],
    vals: &[V],
    d: f64,
    nrhs: usize,
) {
    let mut q0 = 0;
    while q0 < nrhs {
        let width = (nrhs - q0).min(BATCH_CHUNK);
        let mut acc = [0.0f64; BATCH_CHUNK];
        for (&j, &v) in cols.iter().zip(vals) {
            let v = v.to_f64();
            let xj = &x[j as usize * nrhs + q0..];
            for (a, &xq) in acc[..width].iter_mut().zip(&xj[..width]) {
                *a += v * xq;
            }
        }
        let row = &mut x[i1 * nrhs + q0..i1 * nrhs + q0 + width];
        if let Some(b) = b {
            let bi = &b[i1 * nrhs + q0..];
            for ((xv, &a), &bq) in row.iter_mut().zip(&acc[..width]).zip(bi) {
                *xv = (bq - a) * d;
            }
        } else {
            for (xv, &a) in row.iter_mut().zip(&acc[..width]) {
                *xv -= a * d;
            }
        }
        q0 += width;
    }
}

fn check_monotone_cover(index: &[usize], total: usize, name: &str) -> Result<()> {
    let Some((&first, &last)) = index.first().zip(index.last()) else {
        return Err(MatrixError::InvalidStructure(format!(
            "{name} must start at 0"
        )));
    };
    if first != 0 {
        return Err(MatrixError::InvalidStructure(format!(
            "{name} must start at 0"
        )));
    }
    if last != total {
        return Err(MatrixError::InvalidStructure(format!(
            "{name} must end at {total}, got {last}"
        )));
    }
    if index.windows(2).any(|w| w[0] > w[1]) {
        return Err(MatrixError::InvalidStructure(format!(
            "{name} must be non-decreasing"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    /// A hand-built flat structure over the Figure-1 example: each row is its
    /// own super-row, packs = dependency levels.
    fn figure1_flat_structure() -> StsStructure {
        let l = generators::paper_figure1_l();
        // Dependency levels of the example: {0,1,4}, {2,3}, {5}, {6}, {7}, {8}.
        // Reorder rows level by level.
        let order = vec![0usize, 1, 4, 2, 3, 5, 6, 7, 8];
        let perm = Permutation::from_new_to_old(order).unwrap();
        // Value-preserving symmetric permutation of the operand.
        let lp = l.permute_symmetric(perm.new_to_old()).unwrap();
        let index2: Vec<usize> = (0..=9).collect();
        let index3 = vec![0, 3, 5, 6, 7, 8, 9];
        StsStructure::new(1, Ordering::LevelSet, index3, index2, lp, perm).unwrap()
    }

    #[test]
    fn flat_structure_reports_counts() {
        let s = figure1_flat_structure();
        assert_eq!(s.n(), 9);
        assert_eq!(s.num_packs(), 6);
        assert_eq!(s.num_super_rows(), 9);
        assert_eq!(s.components_per_pack(), vec![3, 2, 1, 1, 1, 1]);
        assert_eq!(s.work_per_pack().iter().sum::<usize>(), s.nnz());
        assert_eq!(s.k(), 1);
        assert_eq!(s.ordering(), Ordering::LevelSet);
    }

    #[test]
    fn sequential_solve_matches_plain_forward_substitution() {
        let s = figure1_flat_structure();
        let x_true: Vec<f64> = (0..9).map(|i| 1.0 + i as f64 * 0.25).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let x = s.solve_sequential(&b).unwrap();
        let x_ref = s.lower().solve_seq(&b).unwrap();
        for ((a, b), c) in x.iter().zip(&x_ref).zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
            assert!((a - c).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let s = figure1_flat_structure();
        assert!(s.solve_sequential(&[1.0; 3]).is_err());
        assert!(s.solve_transpose_sequential(&[1.0; 3]).is_err());
        assert!(s.solve_sequential_split(&[1.0; 3]).is_err());
        assert!(s.solve_batch(&[1.0; 3], 1).is_err());
        assert!(s.solve_batch(&[1.0; 9], 0).is_err());
    }

    #[test]
    fn split_sequential_solve_matches_the_unsplit_kernel() {
        let s = figure1_flat_structure();
        let x_true: Vec<f64> = (0..9).map(|i| 1.0 + i as f64 * 0.25).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let x = s.solve_sequential(&b).unwrap();
        let x_split = s.solve_sequential_split(&b).unwrap();
        for (a, b) in x_split.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_solve_with_one_rhs_matches_the_single_solve() {
        let s = figure1_flat_structure();
        let b: Vec<f64> = (0..9).map(|i| 1.0 - i as f64 * 0.5).collect();
        let x = s.solve_sequential(&b).unwrap();
        let xb = s.solve_batch(&b, 1).unwrap();
        for (a, b) in xb.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sequential_batch_kernels_are_bitwise_identical_to_per_rhs_sweeps() {
        // The engine-matrix invariant: each lane of the sequential batch
        // kernels runs the scalar split kernels' exact floating-point
        // sequence, so equality is ==, not a tolerance. A width above
        // BATCH_CHUNK exercises the chunked accumulator path too.
        let s = figure1_flat_structure();
        let n = s.n();
        for nrhs in [1usize, 3, super::BATCH_CHUNK + 2] {
            let mut bb = vec![0.0; n * nrhs];
            for q in 0..nrhs {
                for i in 0..n {
                    bb[i * nrhs + q] = 1.0 + (i * 7 + q * 3) as f64 * 0.31;
                }
            }
            let xb = s.solve_batch_sequential_split(&bb, nrhs).unwrap();
            let tb = s.solve_transpose_batch_sequential_split(&bb, nrhs).unwrap();
            for q in 0..nrhs {
                let bq: Vec<f64> = (0..n).map(|i| bb[i * nrhs + q]).collect();
                let xq = s.solve_sequential_split(&bq).unwrap();
                let tq = s.solve_transpose_sequential_split(&bq).unwrap();
                for i in 0..n {
                    assert_eq!(
                        xb[i * nrhs + q],
                        xq[i],
                        "forward lane {q} diverged at row {i}"
                    );
                    assert_eq!(
                        tb[i * nrhs + q],
                        tq[i],
                        "backward lane {q} diverged at row {i}"
                    );
                }
            }
        }
        // Length and nrhs validation.
        let mut x = vec![0.0; n * 2];
        assert!(s.solve_batch_sequential_split(&[1.0; 3], 2).is_err());
        assert!(s
            .solve_batch_sequential_split_into(&vec![1.0; n * 2], &mut x[..3], 2)
            .is_err());
        assert!(s.solve_batch_sequential_split(&[], 0).is_err());
        assert!(s
            .solve_transpose_batch_sequential_split(&[1.0; 3], 2)
            .is_err());
    }

    #[test]
    fn forward_then_backward_sweep_inverts_the_normal_operator() {
        // (L' L'ᵀ) x = b solved by a forward then a backward sweep.
        let s = figure1_flat_structure();
        let x_true: Vec<f64> = (0..9).map(|i| 0.5 + i as f64 * 0.1).collect();
        let lt_x = s.lower().multiply_transpose(&x_true).unwrap();
        let b = s.lower().multiply(&lt_x).unwrap();
        let y = s.solve_sequential(&b).unwrap();
        let x = s.solve_transpose_sequential(&y).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_split_sequential_solve_matches_the_column_sweep() {
        let s = figure1_flat_structure();
        let x_true: Vec<f64> = (0..9).map(|i| 1.0 - i as f64 * 0.2).collect();
        let b = s.lower().multiply_transpose(&x_true).unwrap();
        let x_ref = s.solve_transpose_sequential(&b).unwrap();
        assert!(!s.transpose_split_built());
        let x = s.solve_transpose_sequential_split(&b).unwrap();
        assert!(s.transpose_split_built());
        for ((a, b), c) in x.iter().zip(&x_ref).zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
            assert!((a - c).abs() < 1e-10);
        }
    }

    #[test]
    fn with_operand_reuses_the_hierarchy_for_new_values() {
        let s = figure1_flat_structure();
        // Same pattern, shifted values: scale every stored entry.
        let mut csr = s.lower().to_csr();
        for v in csr.values_mut() {
            *v *= 2.0;
        }
        let l2 = LowerTriangularCsr::from_csr(&csr).unwrap();
        let s2 = s.with_operand(l2).unwrap();
        assert_eq!(s2.num_packs(), s.num_packs());
        assert_eq!(s2.index2(), s.index2());
        let b = vec![1.0; 9];
        let x = s.solve_sequential(&b).unwrap();
        let x2 = s2.solve_sequential(&b).unwrap();
        for (a, b) in x2.iter().zip(&x) {
            // L₂ = 2 L ⇒ x₂ = x / 2.
            assert!((a - b / 2.0).abs() < 1e-12);
        }
        // A wrong-sized operand is rejected.
        let tiny = generators::paper_figure1_l();
        let small = LowerTriangularCsr::from_csr(&tiny.to_csr().lower_triangle()).unwrap();
        let shrunk = StsStructure::new(
            1,
            Ordering::LevelSet,
            vec![0, 1],
            vec![0, 5],
            {
                let mut coo = sts_matrix::CooMatrix::new(5, 5);
                for i in 0..5 {
                    coo.push(i, i, 1.0).unwrap();
                }
                LowerTriangularCsr::from_csr(&coo.to_csr()).unwrap()
            },
            Permutation::identity(5),
        )
        .unwrap();
        assert_eq!(small.n(), 9);
        assert!(shrunk.with_operand(small).is_err());
    }

    #[test]
    fn equality_ignores_the_lazy_split_cache() {
        let a = figure1_flat_structure();
        let b = a.clone();
        let _ = a.split(); // populate a's cache only
        assert!(a.split_built() && !b.split_built());
        assert_eq!(a, b, "the split cache is derived state, not identity");
    }

    #[test]
    fn split_layout_is_built_lazily_and_only_once() {
        let s = figure1_flat_structure();
        assert!(
            !s.split_built(),
            "construction must not pay the split storage cost"
        );
        // Unsplit kernels never force it.
        let b = vec![1.0; 9];
        let _ = s.solve_sequential(&b).unwrap();
        assert!(!s.split_built());
        // The first split use builds it; later calls reuse the same layout.
        let first = s.split() as *const _;
        assert!(s.split_built());
        let _ = s.solve_sequential_split(&b).unwrap();
        assert_eq!(first, s.split() as *const _);
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let s = figure1_flat_structure();
        let original: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let gathered = s.gather_from_original(&original);
        let back = s.scatter_to_original(&gathered);
        assert_eq!(back, original);
        // The gathered vector is a genuine permutation of the original.
        let mut sorted = gathered.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, original);
    }

    #[test]
    fn validation_rejects_bad_index_arrays() {
        let s = figure1_flat_structure();
        let l = s.lower().clone();
        let perm = s.permutation().clone();
        // index2 not covering all rows
        let bad = StsStructure::new(
            1,
            Ordering::LevelSet,
            vec![0, 8],
            (0..=8).collect(),
            l.clone(),
            perm.clone(),
        );
        assert!(bad.is_err());
        // index3 not starting at zero
        let bad = StsStructure::new(
            1,
            Ordering::LevelSet,
            vec![1, 9],
            (0..=9).collect(),
            l,
            perm,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn validation_rejects_intra_pack_dependencies() {
        // Put every row of the Figure-1 example into one single pack with one
        // row per super-row: rows 2..8 depend on earlier rows in the same
        // pack, which must be rejected.
        let l = generators::paper_figure1_l();
        let perm = Permutation::identity(9);
        let index2: Vec<usize> = (0..=9).collect();
        let index3 = vec![0, 9];
        let err = StsStructure::new(1, Ordering::Coloring, index3, index2, l, perm);
        assert!(err.is_err());
    }

    #[test]
    fn single_pack_is_valid_when_rows_share_one_super_row() {
        // The same rows are fine if they form ONE super-row (sequential task).
        let l = generators::paper_figure1_l();
        let perm = Permutation::identity(9);
        let index2 = vec![0, 9];
        let index3 = vec![0, 1];
        let s = StsStructure::new(3, Ordering::Coloring, index3, index2, l, perm).unwrap();
        assert_eq!(s.num_packs(), 1);
        assert_eq!(s.num_super_rows(), 1);
        let b = vec![1.0; 9];
        let x = s.solve_sequential(&b).unwrap();
        let x_ref = s.lower().solve_seq(&b).unwrap();
        assert_eq!(x, x_ref);
    }
}
