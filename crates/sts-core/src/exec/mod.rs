//! Execution engines for STS-k structures.
//!
//! [`simulated`] prices a solve on a *modelled* NUMA machine (the paper's
//! 32-core Intel Westmere-EX or 24-core AMD MagnyCours presets): it replays
//! the pack-by-pack schedule, charges every solution-component access the
//! latency of the NUMA distance between the reading core and the core that
//! produced the component, and charges a barrier between packs. This is the
//! engine behind the figure harnesses, so the evaluation can be reproduced on
//! hosts with any core count (including the single-core CI machine); the
//! wall-clock path uses [`crate::solver::ParallelSolver`] instead.

pub mod simulated;

pub use simulated::{SimReport, SimSchedule, SimulatedExecutor, SimulationParams};
