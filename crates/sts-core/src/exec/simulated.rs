//! The simulated NUMA executor.
//!
//! The simulator replays the exact schedule the threaded solver would run —
//! packs in order, super-rows of a pack distributed over the cores with a
//! static / dynamic / guided policy — and charges costs from the machine's
//! [`LatencyModel`](sts_numa::LatencyModel):
//!
//! * streaming the rows of `L'` (values + column indices) costs
//!   [`SimulationParams::stream_cycles_per_nnz`] per stored entry plus one
//!   fused multiply-add per entry;
//! * reading a solution component costs the *reuse* latency of the NUMA
//!   distance between the reading core and the core that produced it (L1 if
//!   this core produced or already fetched it during the current pack, local
//!   L3 within a sharing group, remote otherwise) — exactly the effect the
//!   within-pack DAR reordering and compact pinning exploit;
//! * each pack ends with a barrier whose cost grows with the core count;
//! * dynamic/guided scheduling pays a small dispatch overhead per claimed
//!   chunk.
//!
//! Absolute cycle counts are model outputs, not hardware measurements; the
//! figure harnesses only use ratios between methods, which is also how the
//! paper reports its results.

use serde::Serialize;

use sts_numa::{NumaTopology, Schedule};

use crate::csrk::StsStructure;
use crate::options::PrecisionPolicy;

/// Intra-pack scheduling policy used by the simulator (mirrors
/// [`sts_numa::Schedule`]).
pub type SimSchedule = Schedule;

/// Tunable cost parameters of the simulator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimulationParams {
    /// Cycles to stream one stored nonzero of `L'` (value + index), assuming
    /// hardware prefetching of the sequential row data.
    pub stream_cycles_per_nnz: f64,
    /// Cycles per fused multiply-add.
    pub flop_cycles: f64,
    /// Barrier cost per pack: `barrier_base_cycles * (1 + log2(cores))`.
    pub barrier_base_cycles: f64,
    /// Overhead per dynamically claimed chunk (shared-counter contention).
    pub dispatch_cycles: f64,
    /// Number of consecutive solution components per cache line (8 doubles on
    /// the evaluation machines). A core that fetches component `j` gets the
    /// rest of `j`'s line for free, which is how the super-row/RCM spatial
    /// locality shows up in the model.
    pub cache_line_doubles: usize,
    /// Memory-level parallelism of the *unordered* external gather phase of
    /// the split kernel: how many outstanding misses the hardware overlaps
    /// when no dependence chain serialises the reads. Inside the scheduled
    /// substitution phase each read feeds the chain and pays full latency;
    /// the gather's reads are independent and their latencies divide by this
    /// factor. Out-of-order cores of the evaluation era sustain ~4–8
    /// outstanding L1 misses (line-fill buffers).
    pub gather_mlp: f64,
}

impl Default for SimulationParams {
    fn default() -> Self {
        SimulationParams {
            stream_cycles_per_nnz: 6.0,
            flop_cycles: 1.0,
            // Chosen so the synchronisation-to-compute ratio of the reference
            // CSR-LS solver at the generated matrix sizes sits in the regime
            // the paper reports for its much larger inputs; see DESIGN.md.
            barrier_base_cycles: 300.0,
            dispatch_cycles: 60.0,
            cache_line_doubles: 8,
            gather_mlp: 4.0,
        }
    }
}

/// The outcome of one simulated solve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimReport {
    /// Total modelled cycles (compute + synchronisation).
    pub total_cycles: f64,
    /// Cycles spent in the per-pack critical paths (max over cores, summed
    /// over packs).
    pub compute_cycles: f64,
    /// Cycles spent in inter-pack barriers.
    pub sync_cycles: f64,
    /// Total converted to seconds with the machine's clock.
    pub seconds: f64,
    /// Number of cores simulated.
    pub cores: usize,
    /// Number of packs executed.
    pub num_packs: usize,
}

/// The modelled memory traffic of one split/pipelined triangular sweep
/// under a given [`PrecisionPolicy`] — the bandwidth side of the simulator,
/// complementing the cycle model.
///
/// The sweeps are bandwidth-bound: each solve streams the slab arrays once
/// (compulsory traffic), so the model is exact arithmetic over the layout
/// sizes, not a cache simulation. Counted per solve:
///
/// * **value bytes** — the external + internal value slabs at the policy's
///   storage width, plus the reciprocal diagonal (always `f64`: the
///   storage/accumulation invariant keeps the diagonal scale exact);
/// * **index bytes** — the `u32` column slabs plus the two `usize` row
///   pointers;
/// * **vector bytes** — reading `b` and writing `x` once each (`f64`).
///   Gather *reads* of `x` are reuse-dependent and are priced by the cycle
///   model instead.
///
/// Demoting the slabs to `f32` halves the value-slab term and nothing else,
/// which is exactly the ~2× value-traffic reduction `bench_smoke` confirms
/// on the wall clock.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SolveBytesModel {
    /// Rows of the modelled structure.
    pub n: usize,
    /// Value-slab traffic (slabs at storage width + `f64` reciprocal
    /// diagonal).
    pub value_bytes: u64,
    /// Index traffic (`u32` columns + `usize` row pointers).
    pub index_bytes: u64,
    /// Right-hand-side read + solution write.
    pub vector_bytes: u64,
}

impl SolveBytesModel {
    /// Total modelled traffic of one sweep.
    pub fn total_bytes(&self) -> u64 {
        self.value_bytes + self.index_bytes + self.vector_bytes
    }

    /// Value-slab traffic per row — the number `bench_smoke` reports as
    /// `sim_bytes_per_row_{f64,f32}`.
    pub fn value_bytes_per_row(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.value_bytes as f64 / self.n as f64
        }
    }

    /// Total traffic per row.
    pub fn total_bytes_per_row(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.n as f64
        }
    }
}

/// Simulates STS-k solves on a modelled NUMA machine.
#[derive(Debug, Clone)]
pub struct SimulatedExecutor {
    topology: NumaTopology,
    params: SimulationParams,
}

impl SimulatedExecutor {
    /// Creates a simulator for the given machine with default parameters.
    pub fn new(topology: NumaTopology) -> Self {
        SimulatedExecutor {
            topology,
            params: SimulationParams::default(),
        }
    }

    /// Creates a simulator with explicit cost parameters.
    pub fn with_params(topology: NumaTopology, params: SimulationParams) -> Self {
        SimulatedExecutor { topology, params }
    }

    /// The modelled machine.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// The cost parameters.
    pub fn params(&self) -> &SimulationParams {
        &self.params
    }

    /// Simulates a full solve of `s` on `cores` cores with the given schedule.
    pub fn simulate(&self, s: &StsStructure, cores: usize, schedule: SimSchedule) -> SimReport {
        self.simulate_packs(s, cores, schedule, 0..s.num_packs())
    }

    /// Models the compulsory memory traffic of one forward split/pipelined
    /// sweep of `s` under `precision` (see [`SolveBytesModel`] for what is
    /// counted). Forces the lazy split layout; pure arithmetic otherwise.
    pub fn model_solve_bytes(
        &self,
        s: &StsStructure,
        precision: PrecisionPolicy,
    ) -> SolveBytesModel {
        let split = s.split();
        let n = split.n() as u64;
        let slab_nnz = (split.ext_nnz() + split.int_nnz()) as u64;
        let usize_bytes = std::mem::size_of::<usize>() as u64;
        SolveBytesModel {
            n: split.n(),
            value_bytes: slab_nnz * precision.value_bytes() as u64 + n * 8,
            index_bytes: slab_nnz * 4 + 2 * (n + 1) * usize_bytes,
            vector_bytes: 2 * n * 8,
        }
    }

    /// Simulates a single pack (no barriers), used by the Figure-14 harness to
    /// price the largest pack in isolation.
    pub fn simulate_single_pack(
        &self,
        s: &StsStructure,
        pack: usize,
        cores: usize,
        schedule: SimSchedule,
    ) -> SimReport {
        // Warm up producer information with every earlier pack so the target
        // pack sees realistic producer placement, then report only the target
        // pack's cycles.
        let warm = self.simulate_packs(s, cores, schedule, 0..pack);
        let upto = self.simulate_packs(s, cores, schedule, 0..pack + 1);
        let compute = upto.compute_cycles - warm.compute_cycles;
        SimReport {
            total_cycles: compute,
            compute_cycles: compute,
            sync_cycles: 0.0,
            seconds: self.topology.latency.cycles_to_seconds(compute),
            cores: upto.cores,
            num_packs: 1,
        }
    }

    /// Simulates a full solve of `s` with the two-phase split kernel
    /// ([`ParallelSolver::solve_split`]): per pack, a statically chunked
    /// external gather, a phase barrier, then the internal substitution under
    /// `schedule`, and the pack barrier.
    ///
    /// The external gather streams each pack's contiguous slab, so its cost
    /// is charged at streaming rates — with fetch latencies divided by
    /// [`SimulationParams::gather_mlp`], because nothing serialises the
    /// gather's reads — plus the diagonal scale; the scheduled phase only
    /// pays for the chain rows of the internal slab. Packs with internal
    /// entries pay **two** barriers instead of one — the split must save
    /// more critical-path work than the extra barrier costs to win, which is
    /// exactly the trade-off the bench harnesses measure.
    ///
    /// [`ParallelSolver::solve_split`]:
    ///     crate::solver::parallel::ParallelSolver::solve_split
    pub fn simulate_split(
        &self,
        s: &StsStructure,
        cores: usize,
        schedule: SimSchedule,
    ) -> SimReport {
        let cores = cores.clamp(1, self.topology.total_cores());
        let core_ids = self.topology.compact_core_order(cores);
        let lat = &self.topology.latency;
        let split = s.split();
        let n = s.n();

        let mut producer_core = vec![usize::MAX; n];
        let mut producer_pack = vec![usize::MAX; n];
        let line = self.params.cache_line_doubles.max(1);
        let num_lines = n / line + 1;
        let mut fetched = vec![vec![0u32; num_lines]; cores];
        // Which core slot ran row i's phase-1 gather during the current pack.
        let mut phase1_slot = vec![usize::MAX; n];

        let mut compute_cycles = 0.0f64;
        let mut sync_cycles = 0.0f64;
        let barrier = self.params.barrier_base_cycles * (1.0 + (cores as f64).log2());
        let num_packs = s.num_packs();

        for p in 0..num_packs {
            let rows = s.pack_rows(p);
            if rows.is_empty() {
                continue;
            }
            let stamp = p as u32 + 1;
            let m = rows.len();
            let mlp = self.params.gather_mlp.max(1.0);

            // Phase 1: the external gather with the diagonal scale folded
            // in, rows statically chunked over the cores. Every row is
            // produced here; chain rows are then corrected by phase 2.
            let mut core_time = vec![0.0f64; cores];
            for (slot, time) in core_time.iter_mut().enumerate() {
                let chunk = (slot * m / cores)..((slot + 1) * m / cores);
                let core = core_ids[slot];
                let mut cycles = 0.0;
                for r in chunk {
                    let i1 = rows.start + r;
                    phase1_slot[i1] = slot;
                    producer_core[i1] = core;
                    producer_pack[i1] = p;
                    // The gathered value is written to x[i1]: write-allocate
                    // leaves its line in this core's cache.
                    fetched[slot][i1 / line] = stamp;
                    let (cols, _) = split.ext_row(i1);
                    // external entries + the diagonal scale
                    cycles += (cols.len() + 1) as f64
                        * (self.params.stream_cycles_per_nnz + self.params.flop_cycles);
                    for &j in cols {
                        let j = j as usize;
                        let line_of_j = j / line;
                        if fetched[slot][line_of_j] == stamp {
                            cycles += lat.l1_cycles;
                            continue;
                        }
                        fetched[slot][line_of_j] = stamp;
                        let pc = producer_core[j];
                        // No dependence chain serialises the gather, so
                        // fetch latencies overlap up to the hardware's miss
                        // parallelism.
                        let fetch = if pc == usize::MAX {
                            lat.dram_local_cycles
                        } else if producer_pack[j] + 1 == p {
                            lat.reuse_cycles(self.topology.distance(core, pc))
                        } else {
                            lat.memory_cycles(self.topology.distance(core, pc))
                        };
                        cycles += fetch / mlp;
                    }
                }
                *time += cycles;
            }
            compute_cycles += core_time.iter().copied().fold(0.0, f64::max);
            sync_cycles += barrier; // phase (or pack, if phase 2 is empty) barrier

            // Phase 2: only the chain tasks, under the requested schedule.
            // Packs without internal entries skip the phase and its barrier.
            let tasks: Vec<usize> = split.chain_super_rows(p).to_vec();
            if tasks.is_empty() {
                continue;
            }
            let mut core_time = vec![0.0f64; cores];
            let mut assignment = vec![0usize; tasks.len()];
            {
                let fetched = &mut fetched;
                let mut task_cost = |sr: usize, slot: usize| -> f64 {
                    let core = core_ids[slot];
                    let mut cycles = 0.0;
                    for i1 in s.super_row_rows(sr) {
                        let (cols, _) = split.int_row(i1);
                        if cols.is_empty() {
                            continue;
                        }
                        // internal entries + the correction flop
                        cycles += cols.len() as f64
                            * (self.params.stream_cycles_per_nnz + self.params.flop_cycles)
                            + self.params.flop_cycles;
                        // The phase-1 value of row i1: line-granular reuse
                        // from the core that gathered it (L1 if this core
                        // already holds the line). The addresses are known
                        // before the chain starts, so fetches overlap.
                        let line_of_i = i1 / line;
                        let p1 = phase1_slot[i1];
                        if fetched[slot][line_of_i] == stamp || p1 == usize::MAX {
                            cycles += lat.l1_cycles;
                        } else {
                            cycles +=
                                lat.reuse_cycles(self.topology.distance(core, core_ids[p1])) / mlp;
                        }
                        fetched[slot][line_of_i] = stamp;
                        // Chain reads stay inside the super-row: produced by
                        // this worker (chain rows) or already fetched lines.
                        cycles += cols.len() as f64 * lat.l1_cycles;
                    }
                    cycles
                };
                match schedule {
                    Schedule::Static => {
                        let m2 = tasks.len();
                        for (t, a) in assignment.iter_mut().enumerate() {
                            *a = t * cores / m2.max(1);
                        }
                        for (t, &slot) in assignment.iter().enumerate() {
                            core_time[slot] += task_cost(tasks[t], slot);
                        }
                    }
                    Schedule::Dynamic { chunk } | Schedule::Guided { min_chunk: chunk } => {
                        let guided = matches!(schedule, Schedule::Guided { .. });
                        let min_chunk = chunk.max(1);
                        let m2 = tasks.len();
                        let mut next = 0usize;
                        while next < m2 {
                            let size = if guided {
                                ((m2 - next) / (2 * cores)).max(min_chunk)
                            } else {
                                min_chunk
                            };
                            let slot = (0..cores)
                                .min_by(|&a, &b| core_time[a].total_cmp(&core_time[b]))
                                .unwrap_or(0);
                            core_time[slot] += self.params.dispatch_cycles;
                            for t in next..(next + size).min(m2) {
                                assignment[t] = slot;
                                core_time[slot] += task_cost(tasks[t], slot);
                            }
                            next += size;
                        }
                    }
                }
            }
            // Chain rows were corrected by their phase-2 core; that core is
            // their producer for subsequent packs.
            for (t, &slot) in assignment.iter().enumerate() {
                let core = core_ids[slot];
                for r in s.super_row_rows(tasks[t]) {
                    if !split.int_row(r).0.is_empty() {
                        producer_core[r] = core;
                    }
                }
            }
            compute_cycles += core_time.iter().copied().fold(0.0, f64::max);
            sync_cycles += barrier; // pack barrier
        }

        let total = compute_cycles + sync_cycles;
        SimReport {
            total_cycles: total,
            compute_cycles,
            sync_cycles,
            seconds: lat.cycles_to_seconds(total),
            cores,
            num_packs,
        }
    }

    /// Simulates a full solve of `s` with the pack-pipelined kernel
    /// ([`ParallelSolver::solve_pipelined`]): the same per-row costs as
    /// [`SimulatedExecutor::simulate_split`], but the two per-pack barriers
    /// are fused into per-pack completion flags, so the model tracks a clock
    /// per core slot and lets a slot start the phase-1 gather of pack `p`
    /// as soon as the packs its chunk actually reads
    /// ([`SplitLayout::range_ext_dep`](crate::split::SplitLayout::range_ext_dep))
    /// are done — overlapping it with other slots' phase 2 of earlier packs.
    ///
    /// The report separates the **critical path** (`compute_cycles`, the
    /// makespan of the overlapped schedule, including any readiness stalls
    /// and the per-claim dispatch charge, which lands on the claiming slot's
    /// clock exactly as `simulate_split` charges dispatch to core time) from
    /// the **barrier-bound** cycles (`sync_cycles`): the pipelined kernel
    /// pays one pool-completion barrier per solve instead of two full
    /// barriers per chained pack — comparing `sync_cycles` against
    /// `simulate_split`'s quantifies exactly the synchronisation the fusion
    /// removed.
    ///
    /// [`ParallelSolver::solve_pipelined`]:
    ///     crate::solver::parallel::ParallelSolver::solve_pipelined
    pub fn simulate_pipelined(
        &self,
        s: &StsStructure,
        cores: usize,
        schedule: SimSchedule,
    ) -> SimReport {
        // The kernel claims phase-2 tasks one ticket at a time whatever the
        // configured schedule; `schedule` only matters through the cost
        // model's dispatch charge, which the ticket counter pays per task.
        let _ = schedule;
        let cores = cores.clamp(1, self.topology.total_cores());
        let core_ids = self.topology.compact_core_order(cores);
        let lat = &self.topology.latency;
        let split = s.split();
        let n = s.n();

        let mut producer_core = vec![usize::MAX; n];
        let mut producer_pack = vec![usize::MAX; n];
        let line = self.params.cache_line_doubles.max(1);
        let num_lines = n / line + 1;
        let mut fetched = vec![vec![0u32; num_lines]; cores];
        let mut phase1_slot = vec![usize::MAX; n];

        // Per-slot clocks and per-pack completion times of the overlapped
        // schedule. `done_time[p]` mirrors the gate's epoch: it is monotone
        // over packs (a gate opens only once every leading pack is done).
        let mut slot_time = vec![0.0f64; cores];
        let mut done_time = vec![0.0f64; s.num_packs()];
        let mut sync_cycles = 0.0f64;
        let barrier = self.params.barrier_base_cycles * (1.0 + (cores as f64).log2());
        let num_packs = s.num_packs();
        let mlp = self.params.gather_mlp.max(1.0);

        for p in 0..num_packs {
            let rows = s.pack_rows(p);
            let prev_done = if p == 0 { 0.0 } else { done_time[p - 1] };
            if rows.is_empty() {
                done_time[p] = prev_done;
                continue;
            }
            let stamp = p as u32 + 1;
            let m = rows.len();
            let nchunks = cores.min(m);

            // Phase 1: chunk c is owned by slot c (as in the kernel); it may
            // start once the packs its external reads target are done.
            let mut phase1_done = 0.0f64;
            for slot in 0..nchunks {
                let chunk =
                    (rows.start + slot * m / nchunks)..(rows.start + (slot + 1) * m / nchunks);
                let dep = split.range_ext_dep(chunk.clone()) as usize;
                let ready = if dep == 0 { 0.0 } else { done_time[dep - 1] };
                let core = core_ids[slot];
                let mut cycles = 0.0;
                for i1 in chunk {
                    phase1_slot[i1] = slot;
                    producer_core[i1] = core;
                    producer_pack[i1] = p;
                    fetched[slot][i1 / line] = stamp;
                    let (cols, _) = split.ext_row(i1);
                    cycles += (cols.len() + 1) as f64
                        * (self.params.stream_cycles_per_nnz + self.params.flop_cycles);
                    for &j in cols {
                        let j = j as usize;
                        let line_of_j = j / line;
                        if fetched[slot][line_of_j] == stamp {
                            cycles += lat.l1_cycles;
                            continue;
                        }
                        fetched[slot][line_of_j] = stamp;
                        let pc = producer_core[j];
                        let fetch = if pc == usize::MAX {
                            lat.dram_local_cycles
                        } else if producer_pack[j] + 1 == p {
                            lat.reuse_cycles(self.topology.distance(core, pc))
                        } else {
                            lat.memory_cycles(self.topology.distance(core, pc))
                        };
                        cycles += fetch / mlp;
                    }
                }
                let start = slot_time[slot].max(ready);
                slot_time[slot] = start + cycles;
                phase1_done = phase1_done.max(slot_time[slot]);
            }

            // Phase 2: chain tasks claimed one ticket at a time by the
            // earliest-available slot, each gated on phase 1 being drained.
            let tasks: Vec<usize> = split.chain_super_rows(p).to_vec();
            if tasks.is_empty() {
                done_time[p] = prev_done.max(phase1_done);
                continue;
            }
            let mut pack_done = phase1_done;
            for &sr in &tasks {
                let slot = (0..cores)
                    .min_by(|&a, &b| slot_time[a].total_cmp(&slot_time[b]))
                    .unwrap_or(0);
                let core = core_ids[slot];
                let mut cycles = self.params.dispatch_cycles; // the ticket claim
                for i1 in s.super_row_rows(sr) {
                    let (cols, _) = split.int_row(i1);
                    if cols.is_empty() {
                        continue;
                    }
                    cycles += cols.len() as f64
                        * (self.params.stream_cycles_per_nnz + self.params.flop_cycles)
                        + self.params.flop_cycles;
                    let line_of_i = i1 / line;
                    let p1 = phase1_slot[i1];
                    if fetched[slot][line_of_i] == stamp || p1 == usize::MAX {
                        cycles += lat.l1_cycles;
                    } else {
                        cycles +=
                            lat.reuse_cycles(self.topology.distance(core, core_ids[p1])) / mlp;
                    }
                    fetched[slot][line_of_i] = stamp;
                    cycles += cols.len() as f64 * lat.l1_cycles;
                    producer_core[i1] = core;
                }
                let start = slot_time[slot].max(phase1_done);
                slot_time[slot] = start + cycles;
                pack_done = pack_done.max(slot_time[slot]);
            }
            done_time[p] = prev_done.max(pack_done);
        }

        // One pool-completion barrier for the whole solve replaces the two
        // per-pack barriers of the split kernel.
        sync_cycles += barrier;
        let makespan = slot_time.iter().copied().fold(0.0, f64::max);
        let total = makespan + sync_cycles;
        SimReport {
            total_cycles: total,
            compute_cycles: makespan,
            sync_cycles,
            seconds: lat.cycles_to_seconds(total),
            cores,
            num_packs,
        }
    }

    /// Simulates the level-scheduled IC(0) construction
    /// ([`ParallelSolver::parallel_ic0`]) on `cores` cores: per pack, the
    /// super-rows are statically chunked over the core slots, and — as in
    /// [`SimulatedExecutor::simulate_pipelined`] — a chunk starts as soon as
    /// the packs its rows' external columns reference
    /// ([`SplitLayout::range_ext_dep`](crate::split::SplitLayout::range_ext_dep))
    /// are done, so setup work of pack `p + 1` overlaps stragglers of pack
    /// `p` on per-slot clocks.
    ///
    /// Cost per row `i`: each retained strictly-lower entry `(i, k)` pays a
    /// two-pointer merge that streams row `i`'s prefix and row `k`'s
    /// off-diagonal entries (at streaming + FMA rates) plus one fetch of row
    /// `k`'s slab at the NUMA reuse/memory latency of its producer (divided
    /// by [`SimulationParams::gather_mlp`] — the merges of a row's entries
    /// are independent reads); the diagonal update pays one pass over the
    /// prefix. With `cores = 1` this collapses to the sequential up-looking
    /// sweep, so the ratio of the two reports is the modelled setup speedup
    /// the bench harness compares against the measured one.
    ///
    /// [`ParallelSolver::parallel_ic0`]:
    ///     crate::solver::parallel::ParallelSolver
    pub fn simulate_ic0_build(&self, s: &StsStructure, cores: usize) -> SimReport {
        let cores = cores.clamp(1, self.topology.total_cores());
        let core_ids = self.topology.compact_core_order(cores);
        let lat = &self.topology.latency;
        let split = s.split();
        let l = s.lower();
        let row_ptr = l.row_ptr();
        let n = s.n();
        let num_packs = s.num_packs();
        let mlp = self.params.gather_mlp.max(1.0);

        // Which core slot factored each row (usize::MAX = not yet): row k's
        // slab is fetched from its producer's cache hierarchy.
        let mut producer_slot = vec![usize::MAX; n];
        let mut slot_time = vec![0.0f64; cores];
        let mut done_time = vec![0.0f64; num_packs];
        let index2 = s.index2();

        for p in 0..num_packs {
            let srs = s.pack_super_rows(p);
            let nsr = srs.len();
            let prev_done = if p == 0 { 0.0 } else { done_time[p - 1] };
            if nsr == 0 {
                done_time[p] = prev_done;
                continue;
            }
            let nchunks = cores.min(nsr);
            let mut pack_done = 0.0f64;
            for slot in 0..nchunks {
                let sr_lo = srs.start + slot * nsr / nchunks;
                let sr_hi = srs.start + (slot + 1) * nsr / nchunks;
                let rows = index2[sr_lo]..index2[sr_hi];
                let dep = split.range_ext_dep(rows.clone()) as usize;
                let ready = if dep == 0 { 0.0 } else { done_time[dep - 1] };
                let core = core_ids[slot];
                let mut cycles = 0.0;
                for i1 in rows {
                    let lo = row_ptr[i1];
                    let hi = row_ptr[i1 + 1];
                    let own_prefix = (hi - 1 - lo) as f64;
                    for (off, &k) in l.row_off_diag_cols(i1).iter().enumerate() {
                        // Merge of row i's prefix before this entry with row
                        // k's off-diagonal entries, then the diagonal scale.
                        let k_len = (row_ptr[k + 1] - 1 - row_ptr[k]) as f64;
                        cycles += (off as f64 + k_len + 1.0)
                            * (self.params.stream_cycles_per_nnz + self.params.flop_cycles);
                        let ps = producer_slot[k];
                        let fetch = if ps == usize::MAX || ps == slot {
                            lat.l1_cycles
                        } else {
                            lat.reuse_cycles(self.topology.distance(core, core_ids[ps]))
                        };
                        cycles += fetch / mlp;
                    }
                    // Diagonal: one squared-accumulate pass plus the root.
                    cycles += (own_prefix + 1.0) * self.params.flop_cycles;
                    producer_slot[i1] = slot;
                }
                let start = slot_time[slot].max(ready);
                slot_time[slot] = start + cycles;
                pack_done = pack_done.max(slot_time[slot]);
            }
            done_time[p] = prev_done.max(pack_done);
        }

        // Multi-core builds pay one pool-completion barrier; the sequential
        // sweep runs inline with no pool involvement.
        let sync_cycles = if cores > 1 {
            self.params.barrier_base_cycles * (1.0 + (cores as f64).log2())
        } else {
            0.0
        };
        let makespan = slot_time.iter().copied().fold(0.0, f64::max);
        let total = makespan + sync_cycles;
        SimReport {
            total_cycles: total,
            compute_cycles: makespan,
            sync_cycles,
            seconds: lat.cycles_to_seconds(total),
            cores,
            num_packs,
        }
    }

    fn simulate_packs(
        &self,
        s: &StsStructure,
        cores: usize,
        schedule: SimSchedule,
        packs: std::ops::Range<usize>,
    ) -> SimReport {
        let cores = cores.clamp(1, self.topology.total_cores());
        let core_ids = self.topology.compact_core_order(cores);
        let lat = &self.topology.latency;
        let l = s.lower();
        let row_ptr = l.row_ptr();
        let col_idx = l.col_idx();
        let n = s.n();

        // Which core produced each solution component (usize::MAX = not yet
        // produced; reads then come from memory, e.g. the right-hand side),
        // and during which pack it was produced. Components produced by the
        // *immediately preceding* pack are assumed to still be resident in
        // their producer's cache hierarchy (reuse at the NUMA distance);
        // older components have been displaced and come from memory. Ordering
        // packs by increasing size exploits exactly this window.
        let mut producer_core = vec![usize::MAX; n];
        let mut producer_pack = vec![usize::MAX; n];
        // Stamp per (core slot, cache line of x): fetched during the current
        // pack. Line granularity rewards orderings whose tasks touch
        // neighbouring components, which is the spatial-locality effect the
        // super-row formulation targets.
        let line = self.params.cache_line_doubles.max(1);
        let num_lines = n / line + 1;
        let mut fetched = vec![vec![0u32; num_lines]; cores];
        // Which super-row owns each row (to recognise intra-task reads).
        let mut super_row_of = vec![0usize; n];
        for sr in 0..s.num_super_rows() {
            for r in s.super_row_rows(sr) {
                super_row_of[r] = sr;
            }
        }

        let mut compute_cycles = 0.0f64;
        let mut sync_cycles = 0.0f64;
        let barrier = self.params.barrier_base_cycles * (1.0 + (cores as f64).log2());
        let num_packs = packs.len();

        for p in packs {
            let pack_range = s.pack_super_rows(p);
            let tasks: Vec<usize> = pack_range.collect();
            let m = tasks.len();
            if m == 0 {
                continue;
            }
            let stamp = p as u32 + 1;
            let mut core_time = vec![0.0f64; cores];

            // Cost of running task `sr` on core slot `slot`, updating that
            // core's fetched stamps.
            let mut task_cost = |sr: usize, slot: usize, producer_core: &[usize]| -> f64 {
                let core = core_ids[slot];
                let mut cycles = 0.0;
                for i1 in s.super_row_rows(sr) {
                    let start = row_ptr[i1];
                    let end = row_ptr[i1 + 1];
                    let nnz_row = (end - start) as f64;
                    cycles +=
                        nnz_row * (self.params.stream_cycles_per_nnz + self.params.flop_cycles);
                    for &j in &col_idx[start..end - 1] {
                        let line_of_j = j / line;
                        if super_row_of[j] == sr || fetched[slot][line_of_j] == stamp {
                            cycles += lat.l1_cycles;
                            continue;
                        }
                        fetched[slot][line_of_j] = stamp;
                        let pc = producer_core[j];
                        if pc == usize::MAX {
                            // Never produced in this solve (e.g. inputs of the
                            // very first pack): comes from memory.
                            cycles += lat.dram_local_cycles;
                        } else if producer_pack[j] + 1 == p {
                            // Produced by the immediately preceding pack:
                            // still resident near its producer.
                            cycles += lat.reuse_cycles(self.topology.distance(core, pc));
                        } else {
                            // Produced long ago: displaced to memory, NUMA
                            // placement follows the producing socket.
                            cycles += lat.memory_cycles(self.topology.distance(core, pc));
                        }
                    }
                }
                cycles
            };

            // Distribute the tasks over the core slots with the requested
            // schedule, mirroring the worker pool.
            let mut assignment = vec![0usize; m];
            match schedule {
                Schedule::Static => {
                    for (t, a) in assignment.iter_mut().enumerate() {
                        *a = t * cores / m.max(1);
                    }
                    for (t, &slot) in assignment.iter().enumerate() {
                        core_time[slot] += task_cost(tasks[t], slot, &producer_core);
                    }
                }
                Schedule::Dynamic { chunk } | Schedule::Guided { min_chunk: chunk } => {
                    let guided = matches!(schedule, Schedule::Guided { .. });
                    let min_chunk = chunk.max(1);
                    let mut next = 0usize;
                    while next < m {
                        let size = if guided {
                            ((m - next) / (2 * cores)).max(min_chunk)
                        } else {
                            min_chunk
                        };
                        let slot = (0..cores)
                            .min_by(|&a, &b| core_time[a].total_cmp(&core_time[b]))
                            .unwrap_or(0);
                        core_time[slot] += self.params.dispatch_cycles;
                        for t in next..(next + size).min(m) {
                            assignment[t] = slot;
                            core_time[slot] += task_cost(tasks[t], slot, &producer_core);
                        }
                        next += size;
                    }
                }
            }

            // Record producers for subsequent packs.
            for (t, &slot) in assignment.iter().enumerate() {
                let core = core_ids[slot];
                for r in s.super_row_rows(tasks[t]) {
                    producer_core[r] = core;
                    producer_pack[r] = p;
                }
            }

            let pack_elapsed = core_time.iter().copied().fold(0.0, f64::max);
            compute_cycles += pack_elapsed;
            sync_cycles += barrier;
        }

        let total = compute_cycles + sync_cycles;
        SimReport {
            total_cycles: total,
            compute_cycles,
            sync_cycles,
            seconds: lat.cycles_to_seconds(total),
            cores,
            num_packs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Method;
    use sts_matrix::generators;
    use sts_numa::NumaTopology;

    fn build(method: Method) -> StsStructure {
        let a = generators::triangulated_grid(24, 24, 3).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        method.build(&l, 16).unwrap()
    }

    #[test]
    fn report_components_are_consistent() {
        let s = build(Method::Sts3);
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let r = sim.simulate(&s, 16, Schedule::Guided { min_chunk: 1 });
        assert!(r.total_cycles > 0.0);
        assert!((r.total_cycles - (r.compute_cycles + r.sync_cycles)).abs() < 1e-6);
        assert_eq!(r.num_packs, s.num_packs());
        assert_eq!(r.cores, 16);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn more_cores_do_not_increase_compute_time_for_large_packs() {
        let s = build(Method::Sts3);
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let t1 = sim.simulate(&s, 1, Schedule::Guided { min_chunk: 1 });
        let t16 = sim.simulate(&s, 16, Schedule::Guided { min_chunk: 1 });
        assert!(
            t16.compute_cycles < t1.compute_cycles,
            "16 cores ({}) should be faster than 1 core ({})",
            t16.compute_cycles,
            t1.compute_cycles
        );
        // Speedup is bounded by the core count.
        assert!(t1.compute_cycles / t16.compute_cycles <= 16.0 + 1e-9);
    }

    #[test]
    fn core_count_is_clamped_to_the_topology() {
        let s = build(Method::Sts3);
        let sim = SimulatedExecutor::new(NumaTopology::amd_magny_cours_24());
        let r = sim.simulate(&s, 999, Schedule::Static);
        assert_eq!(r.cores, 24);
    }

    #[test]
    fn level_set_pays_more_synchronisation_than_coloring() {
        let ls = build(Method::CsrLs);
        let col = build(Method::CsrCol);
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let r_ls = sim.simulate(&ls, 16, Schedule::Dynamic { chunk: 32 });
        let r_col = sim.simulate(&col, 16, Schedule::Dynamic { chunk: 32 });
        assert!(ls.num_packs() > col.num_packs());
        assert!(r_ls.sync_cycles > r_col.sync_cycles);
    }

    #[test]
    fn sts3_beats_the_reference_on_the_modelled_machine() {
        // The headline claim of the paper at miniature scale: STS-3 is faster
        // than CSR-LS on the modelled 16-core Intel node.
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let ls = build(Method::CsrLs);
        let sts = build(Method::Sts3);
        let t_ls = sim
            .simulate(&ls, 16, Schedule::Dynamic { chunk: 32 })
            .total_cycles;
        let t_sts = sim
            .simulate(&sts, 16, Schedule::Guided { min_chunk: 1 })
            .total_cycles;
        assert!(
            t_sts < t_ls,
            "STS-3 ({t_sts}) should beat CSR-LS ({t_ls}) on the modelled machine"
        );
    }

    #[test]
    fn single_pack_simulation_prices_only_that_pack() {
        let s = build(Method::Sts3);
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let largest = (0..s.num_packs())
            .max_by_key(|&p| s.pack_rows(p).len())
            .unwrap();
        let r = sim.simulate_single_pack(&s, largest, 16, Schedule::Guided { min_chunk: 1 });
        let full = sim.simulate(&s, 16, Schedule::Guided { min_chunk: 1 });
        assert!(r.total_cycles > 0.0);
        assert!(r.total_cycles < full.compute_cycles);
        assert_eq!(r.sync_cycles, 0.0);
    }

    #[test]
    fn split_simulation_reports_consistent_components() {
        let s = build(Method::Sts3);
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let r = sim.simulate_split(&s, 16, Schedule::Guided { min_chunk: 1 });
        assert!(r.total_cycles > 0.0);
        assert!((r.total_cycles - (r.compute_cycles + r.sync_cycles)).abs() < 1e-6);
        assert_eq!(r.num_packs, s.num_packs());
        // Packs with external entries pay a phase barrier on top of the pack
        // barrier; ext-free packs (at least the first) skip it.
        let unsplit = sim.simulate(&s, 16, Schedule::Guided { min_chunk: 1 });
        assert!(r.sync_cycles > unsplit.sync_cycles);
        assert!(r.sync_cycles < 2.0 * unsplit.sync_cycles + 1e-6);
    }

    #[test]
    fn split_kernel_shortens_the_modelled_critical_path() {
        // The tentpole claim the model can check directly: taking the
        // external gather out of the ordered phase shortens the per-pack
        // critical paths (compute cycles). Whether *total* time wins depends
        // on the extra phase barrier amortising against the pack's external
        // volume — on the miniature test matrices the barrier often does not
        // amortise, which is why the bench harness reports both numbers.
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        for method in [Method::Csr3Ls, Method::Sts3] {
            let s = build(method);
            let unsplit = sim.simulate(&s, 16, Schedule::Guided { min_chunk: 1 });
            let split = sim.simulate_split(&s, 16, Schedule::Guided { min_chunk: 1 });
            assert!(
                split.compute_cycles < unsplit.compute_cycles,
                "split critical path ({}) should be shorter than unsplit ({}) for {:?}",
                split.compute_cycles,
                unsplit.compute_cycles,
                method
            );
        }
    }

    #[test]
    fn pipelined_simulation_reports_consistent_components() {
        let s = build(Method::Sts3);
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let r = sim.simulate_pipelined(&s, 16, Schedule::Guided { min_chunk: 1 });
        assert!(r.total_cycles > 0.0);
        assert!((r.total_cycles - (r.compute_cycles + r.sync_cycles)).abs() < 1e-6);
        assert_eq!(r.num_packs, s.num_packs());
        assert_eq!(r.cores, 16);
    }

    #[test]
    fn pipelining_removes_barrier_bound_cycles() {
        // The tentpole claim: fusing the per-pack barriers into completion
        // flags strips almost all barrier-bound cycles (one pool-completion
        // barrier per solve remains) and the overlapped schedule's critical
        // path never exceeds the barrier-synchronised one.
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        for method in [Method::CsrLs, Method::Csr3Ls, Method::Sts3] {
            let s = build(method);
            let split = sim.simulate_split(&s, 16, Schedule::Guided { min_chunk: 1 });
            let piped = sim.simulate_pipelined(&s, 16, Schedule::Guided { min_chunk: 1 });
            assert!(
                piped.sync_cycles < split.sync_cycles / 2.0,
                "{:?}: pipelined sync {} should be far below split sync {}",
                method,
                piped.sync_cycles,
                split.sync_cycles
            );
            assert!(
                piped.total_cycles < split.total_cycles,
                "{:?}: pipelined total {} should beat split total {}",
                method,
                piped.total_cycles,
                split.total_cycles
            );
        }
    }

    #[test]
    fn pipelined_overlap_grows_with_pack_count() {
        // Level-set orderings chain hundreds of packs; that is where barrier
        // fusion pays the most, so the ratio split/pipelined must be larger
        // for CSR-LS than for the coloring ordering with its few packs.
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        let ls = build(Method::CsrLs);
        let col = build(Method::CsrCol);
        let gain = |s: &StsStructure| {
            let split = sim.simulate_split(s, 16, Schedule::Dynamic { chunk: 32 });
            let piped = sim.simulate_pipelined(s, 16, Schedule::Dynamic { chunk: 32 });
            split.total_cycles / piped.total_cycles
        };
        assert!(ls.num_packs() > col.num_packs());
        assert!(
            gain(&ls) > gain(&col),
            "barrier fusion should pay more on chained level sets"
        );
    }

    #[test]
    fn pipelined_simulation_is_deterministic() {
        let s = build(Method::Csr3Ls);
        let sim = SimulatedExecutor::new(NumaTopology::amd_magny_cours_24());
        let a = sim.simulate_pipelined(&s, 12, Schedule::Guided { min_chunk: 1 });
        let b = sim.simulate_pipelined(&s, 12, Schedule::Guided { min_chunk: 1 });
        assert_eq!(a, b);
    }

    #[test]
    fn split_simulation_is_deterministic() {
        let s = build(Method::Csr3Ls);
        let sim = SimulatedExecutor::new(NumaTopology::amd_magny_cours_24());
        let a = sim.simulate_split(&s, 12, Schedule::Guided { min_chunk: 1 });
        let b = sim.simulate_split(&s, 12, Schedule::Guided { min_chunk: 1 });
        assert_eq!(a, b);
    }

    #[test]
    fn ic0_build_simulation_is_consistent_and_parallel_wins() {
        let sim = SimulatedExecutor::new(NumaTopology::intel_westmere_ex_32());
        for method in [Method::CsrCol, Method::Sts3] {
            // Coloring packs hold many independent (super-)rows, so the
            // level-scheduled build must shorten the makespan; level-set
            // packs on the miniature matrices often hold a single super-row
            // each, leaving nothing to overlap (covered by the ≤ bound in
            // the deterministic test below).
            let s = build(method);
            let seq = sim.simulate_ic0_build(&s, 1);
            let par = sim.simulate_ic0_build(&s, 16);
            assert!(seq.total_cycles > 0.0 && par.total_cycles > 0.0);
            assert!((seq.total_cycles - (seq.compute_cycles + seq.sync_cycles)).abs() < 1e-6);
            assert_eq!(seq.sync_cycles, 0.0, "sequential build pays no barrier");
            assert!(par.sync_cycles > 0.0);
            assert!(
                par.compute_cycles < seq.compute_cycles,
                "{:?}: level-scheduled build ({}) should beat the sequential sweep ({})",
                method,
                par.compute_cycles,
                seq.compute_cycles
            );
            // Speedup is bounded by the core count.
            assert!(seq.compute_cycles / par.compute_cycles <= 16.0 + 1e-9);
        }
    }

    #[test]
    fn ic0_build_simulation_is_deterministic() {
        let sim = SimulatedExecutor::new(NumaTopology::amd_magny_cours_24());
        for method in [Method::Csr3Ls, Method::Sts3] {
            let s = build(method);
            assert_eq!(
                sim.simulate_ic0_build(&s, 12),
                sim.simulate_ic0_build(&s, 12)
            );
            // More cores never lengthen the modelled makespan.
            let seq = sim.simulate_ic0_build(&s, 1);
            let par = sim.simulate_ic0_build(&s, 12);
            assert!(par.compute_cycles <= seq.compute_cycles + 1e-9);
        }
    }

    #[test]
    fn deterministic_across_repeated_runs() {
        let s = build(Method::Csr3Ls);
        let sim = SimulatedExecutor::new(NumaTopology::amd_magny_cours_24());
        let a = sim.simulate(&s, 12, Schedule::Guided { min_chunk: 1 });
        let b = sim.simulate(&s, 12, Schedule::Guided { min_chunk: 1 });
        assert_eq!(a, b);
    }
}
