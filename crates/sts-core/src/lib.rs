//! STS-k: a multilevel sparse triangular solution scheme for NUMA multicores.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates (`sts-matrix`, `sts-graph`, `sts-numa`, `sts-sched`):
//!
//! * [`csrk`] — the k-level CSR-k structure (`index3`/`index2`/`index1`) that
//!   stores the reordered triangular operand together with its pack /
//!   super-row hierarchy, plus the sequential reference solve (Algorithm 1);
//! * [`pack`] — pack construction on the (coarse) graph by greedy coloring or
//!   dependency level sets, ordered by increasing size;
//! * [`reorder`] — the within-pack DAR reordering (RCM on the data-affinity
//!   graph) that exposes line-graph structure for cache reuse;
//! * [`builder`] — the [`StsBuilder`] pipeline and the four named methods of
//!   the evaluation (`CSR-LS`, `CSR-COL`, `CSR-3-LS`, `STS-3`);
//! * [`split`] — the dependency-split CSR layout (built lazily on first
//!   use): per pack, an *external* slab of entries referencing earlier packs
//!   (streamed by the embarrassingly-parallel gather phase) and an
//!   *internal* slab holding the true in-pack dependence chains, plus
//!   per-row readiness metadata for pack pipelining;
//! * [`transpose`] — the transpose (backward-sweep) split layout: the same
//!   split applied to `L'ᵀ`, with the packs consumed in reverse order, so
//!   preconditioner forward/backward sweep pairs both run on the parallel
//!   engine;
//! * [`solver`] — the threaded pack-parallel solver (worker pool + barriers),
//!   its two-phase split variants (`solve_split`, `solve_batch`), the
//!   pack-pipelined barrier-fused variants (`solve_pipelined`,
//!   `solve_batch_pipelined`), a schedule-only level-scheduled solver
//!   for callers who cannot reorder their system, and the level-scheduled
//!   parallel IC(0) construction (`ParallelSolver::parallel_ic0`) that runs
//!   the preconditioner *setup* over the same pack hierarchy and epoch-gate
//!   readiness scheme as the solves;
//! * [`options`] — the typed [`SolveOptions`] request (engine × direction ×
//!   batch width × [`PrecisionPolicy`]) consumed by
//!   [`solver::parallel::ParallelSolver::solve_with`], and the [`SlabValue`]
//!   abstraction behind the mixed-precision (f32-storage / f64-accumulation)
//!   sweep kernels;
//! * [`exec`] — the simulated NUMA executor that prices a solve on a modelled
//!   machine (the paper's 32-core Intel and 24-core AMD nodes), used by the
//!   figure harnesses, including the bytes-per-row bandwidth model that
//!   predicts the mixed-precision traffic reduction;
//! * [`analysis`] — the parallelism and work-distribution statistics behind
//!   Figures 7 and 8;
//! * [`verify`] — static schedule verification: extracts every task's exact
//!   read/write footprint and happens-before edges from the split layouts
//!   and checks race-freedom, deadlock-freedom and write completeness via
//!   the dependency-free `sts-verify` checker
//!   ([`StsStructure::verify_schedule`]); re-run automatically on first
//!   layout build under `debug_assertions`.
//!
//! # Semantics of the reordering
//!
//! Like the paper (and like coloring-based triangular solves in general), the
//! builder *reorders the system symmetrically*: from the input operand `L` it
//! forms `A = L + Lᵀ` (keeping `L`'s diagonal), applies the computed
//! permutation `P`, and the structure solves the reordered system
//! `lower(P A Pᵀ) · x' = b'`. This matches the intended use in iterative
//! solvers, where the application permutes its matrix once and then performs
//! many triangular solves in the new ordering. Callers who must solve a fixed
//! `L x = b` without reordering can use
//! [`solver::LevelScheduledSolver`], which schedules the original system.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod builder;
pub mod csrk;
pub mod exec;
pub mod options;
pub mod pack;
pub mod reorder;
pub mod solver;
pub mod split;
pub mod transpose;
pub mod verify;

pub use builder::{Method, Ordering, StsBuilder, SuperRowSizing};
pub use csrk::StsStructure;
pub use exec::simulated::{
    SimReport, SimSchedule, SimulatedExecutor, SimulationParams, SolveBytesModel,
};
pub use options::{PrecisionPolicy, SlabValue, SolveEngine, SolveOptions, SweepDirection};
pub use solver::parallel::{ChaosHook, ParallelSolver, PipelinePlan};
pub use split::SplitLayout;
pub use transpose::TransposeLayout;
pub use verify::{factor_spec, solve_spec};
