//! Typed solve options: the one place engine, direction, batch width, and
//! numeric precision are selected.
//!
//! [`ParallelSolver`](crate::solver::parallel::ParallelSolver) grew its entry
//! points one at a time — engine (sequential / parallel / split / pipelined)
//! × direction (forward / transpose) × single / batch — until callers had a
//! 12-way method matrix to navigate and no way to thread a *new* axis (like
//! precision) through it. [`SolveOptions`] collapses the matrix into one
//! typed request consumed by
//! [`ParallelSolver::solve_with`](crate::solver::parallel::ParallelSolver::solve_with);
//! the named entries remain as thin delegating wrappers with bitwise
//! identical behavior.
//!
//! # Precision
//!
//! [`PrecisionPolicy`] selects how the *value slabs* are stored, never how
//! arithmetic is performed:
//!
//! * [`PrecisionPolicy::ValuesF64`] — the default full-precision path;
//! * [`PrecisionPolicy::ValuesF32WithRefinement`] — the split layouts keep
//!   demoted `f32` copies of the external/internal value slabs, halving the
//!   value traffic of the bandwidth-bound sweeps. Kernels *load* `f32` but
//!   **accumulate in `f64`** (`acc += v as f64 * x[col]`), and the reciprocal
//!   diagonal stays `f64`, so a sweep's only error source is the one-time
//!   storage rounding of the off-diagonal values. A single mixed-precision
//!   sweep is therefore accurate to ≈ `f32` epsilon relative and is driven
//!   back to `f64` accuracy by an outer corrector: the Krylov iteration for
//!   preconditioned solves, or the explicit iterative-refinement wrapper in
//!   `sts-krylov` for direct solves.

/// How the triangular-sweep value slabs are stored (storage only — all
/// accumulation is `f64` under every policy; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionPolicy {
    /// Full-precision `f64` value slabs (the default).
    #[default]
    ValuesF64,
    /// Demoted `f32` value slabs with `f64` accumulation; results are meant
    /// to be driven to full accuracy by an outer corrector (Krylov iteration
    /// or iterative refinement).
    ValuesF32WithRefinement,
}

impl PrecisionPolicy {
    /// Bytes each stored slab value occupies under this policy.
    pub fn value_bytes(self) -> usize {
        match self {
            PrecisionPolicy::ValuesF64 => 8,
            PrecisionPolicy::ValuesF32WithRefinement => 4,
        }
    }

    /// The wire/diagnostic label (`"f64"` / `"f32"`), matching the
    /// `precision` field of the service protocol.
    pub fn as_str(self) -> &'static str {
        match self {
            PrecisionPolicy::ValuesF64 => "f64",
            PrecisionPolicy::ValuesF32WithRefinement => "f32",
        }
    }
}

/// Which solve engine runs the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolveEngine {
    /// Single-threaded two-phase sweep on the split layout
    /// ([`StsStructure`](crate::csrk::StsStructure)'s sequential split
    /// kernels).
    Sequential,
    /// The pack-parallel kernel on the *unsplit* CSR operand (one barrier
    /// per pack). Forward, single right-hand side, `f64` only.
    Parallel,
    /// The two-phase split kernel (external gather, phase barrier, internal
    /// chains).
    Split,
    /// The pack-pipelined kernel (barriers fused into an epoch gate) — the
    /// paper's best engine and the default.
    #[default]
    Pipelined,
}

impl SolveEngine {
    /// Diagnostic label.
    pub fn as_str(self) -> &'static str {
        match self {
            SolveEngine::Sequential => "sequential",
            SolveEngine::Parallel => "parallel",
            SolveEngine::Split => "split",
            SolveEngine::Pipelined => "pipelined",
        }
    }
}

/// Sweep direction: the lower-triangular system or its transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepDirection {
    /// Solve `L' x' = b'` (forward substitution).
    #[default]
    Forward,
    /// Solve `L'ᵀ x' = b'` (backward substitution over the packs in reverse
    /// order).
    Transpose,
}

impl SweepDirection {
    /// Diagnostic label.
    pub fn as_str(self) -> &'static str {
        match self {
            SweepDirection::Forward => "forward",
            SweepDirection::Transpose => "transpose",
        }
    }
}

/// One typed solve request:
/// [`ParallelSolver::solve_with`](crate::solver::parallel::ParallelSolver::solve_with)
/// consumes it, and the Krylov / service layers thread it through unchanged.
///
/// The default is the common case: pipelined engine, forward sweep, one
/// right-hand side, full `f64` precision.
///
/// ```
/// use sts_core::{PrecisionPolicy, SolveEngine, SolveOptions, SweepDirection};
///
/// let opts = SolveOptions::default();
/// assert_eq!(opts.engine, SolveEngine::Pipelined);
/// assert_eq!(opts.direction, SweepDirection::Forward);
/// assert_eq!(opts.nrhs, 1);
/// assert_eq!(opts.precision, PrecisionPolicy::ValuesF64);
///
/// let mixed = SolveOptions::default().with_precision(PrecisionPolicy::ValuesF32WithRefinement);
/// assert_eq!(mixed.precision.value_bytes(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SolveOptions {
    /// The engine to run.
    pub engine: SolveEngine,
    /// Forward or transpose sweep.
    pub direction: SweepDirection,
    /// Number of interleaved right-hand sides (`b[i * nrhs + r]`); must be
    /// ≥ 1.
    pub nrhs: usize,
    /// Value-slab storage precision.
    pub precision: PrecisionPolicy,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            engine: SolveEngine::default(),
            direction: SweepDirection::default(),
            nrhs: 1,
            precision: PrecisionPolicy::default(),
        }
    }
}

impl SolveOptions {
    /// `self` with a different engine.
    pub fn with_engine(mut self, engine: SolveEngine) -> SolveOptions {
        self.engine = engine;
        self
    }

    /// `self` with a different direction.
    pub fn with_direction(mut self, direction: SweepDirection) -> SolveOptions {
        self.direction = direction;
        self
    }

    /// `self` with a different batch width.
    pub fn with_nrhs(mut self, nrhs: usize) -> SolveOptions {
        self.nrhs = nrhs;
        self
    }

    /// `self` with a different precision policy.
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> SolveOptions {
        self.precision = precision;
        self
    }
}

/// A value type the triangular-sweep kernels can load from a slab.
///
/// The kernels are generic over the *stored* type only; every accumulation
/// happens in `f64` through [`SlabValue::to_f64`]. For `f64` the conversion
/// is the identity and inlines away, so the monomorphized `f64` kernels are
/// instruction-for-instruction the pre-generic kernels — the bitwise-parity
/// invariants of the engine matrix are untouched. For `f32` the conversion
/// is the exact widening `as f64` (every `f32` is exactly representable in
/// `f64`), so a mixed-precision sweep's only error is the slab's one-time
/// storage rounding.
pub trait SlabValue: Copy + Send + Sync + 'static {
    /// Widen the stored value to the `f64` accumulation domain.
    fn to_f64(self) -> f64;
}

impl SlabValue for f64 {
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

impl SlabValue for f32 {
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_full_precision_pipelined_single_solve() {
        let opts = SolveOptions::default();
        assert_eq!(opts.engine, SolveEngine::Pipelined);
        assert_eq!(opts.direction, SweepDirection::Forward);
        assert_eq!(opts.nrhs, 1);
        assert_eq!(opts.precision, PrecisionPolicy::ValuesF64);
    }

    #[test]
    fn builder_style_setters_compose() {
        let opts = SolveOptions::default()
            .with_engine(SolveEngine::Sequential)
            .with_direction(SweepDirection::Transpose)
            .with_nrhs(4)
            .with_precision(PrecisionPolicy::ValuesF32WithRefinement);
        assert_eq!(opts.engine, SolveEngine::Sequential);
        assert_eq!(opts.direction, SweepDirection::Transpose);
        assert_eq!(opts.nrhs, 4);
        assert_eq!(opts.precision, PrecisionPolicy::ValuesF32WithRefinement);
    }

    #[test]
    fn precision_labels_and_widths_match_the_wire_contract() {
        assert_eq!(PrecisionPolicy::ValuesF64.as_str(), "f64");
        assert_eq!(PrecisionPolicy::ValuesF32WithRefinement.as_str(), "f32");
        assert_eq!(PrecisionPolicy::ValuesF64.value_bytes(), 8);
        assert_eq!(PrecisionPolicy::ValuesF32WithRefinement.value_bytes(), 4);
    }

    #[test]
    fn slab_values_widen_exactly() {
        assert_eq!(1.5f64.to_f64().to_bits(), 1.5f64.to_bits());
        let v = 0.1f32; // not exactly representable; widening is still exact
        assert_eq!(v.to_f64(), v as f64);
    }
}
