//! Pack construction: partitioning (super-)rows into independent sets.
//!
//! A *pack* is a set of super-rows that can be processed concurrently once all
//! earlier packs are done (Section 3.2). Packs are obtained either by greedy
//! coloring of the (coarse) undirected graph — no two adjacent super-rows
//! share a color, hence no dependencies inside a pack — or by dependency
//! level sets of the super-row DAG. Packs are then ordered by increasing size
//! (number of unknowns) as the paper proposes, which places the small,
//! latency-bound packs first and lets the large packs reuse the most recently
//! produced components.

use sts_graph::{Coloring, ColoringOrder, Graph, LevelSets};

/// An ordered partition of entities (rows or super-rows) into packs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packs {
    packs: Vec<Vec<usize>>,
}

impl Packs {
    /// Builds packs as the color classes of a greedy coloring of `graph`.
    pub fn by_coloring(graph: &Graph, order: ColoringOrder) -> Packs {
        let coloring = Coloring::greedy(graph, order);
        Packs {
            packs: coloring.classes(),
        }
    }

    /// Builds packs as the dependency levels of a DAG given by per-entity
    /// predecessor lists (every predecessor index must be smaller than its
    /// entity, see [`LevelSets::from_predecessors`]).
    pub fn by_level_set(preds: &[Vec<usize>]) -> Packs {
        let levels = LevelSets::from_predecessors(preds);
        Packs {
            packs: levels.levels().to_vec(),
        }
    }

    /// Builds packs directly from an explicit partition (used by tests).
    pub fn from_partition(packs: Vec<Vec<usize>>) -> Packs {
        Packs { packs }
    }

    /// Number of packs.
    pub fn num_packs(&self) -> usize {
        self.packs.len()
    }

    /// The entities of pack `p`.
    pub fn pack(&self, p: usize) -> &[usize] {
        &self.packs[p]
    }

    /// All packs in execution order.
    pub fn all(&self) -> &[Vec<usize>] {
        &self.packs
    }

    /// Total number of entities across packs.
    pub fn num_entities(&self) -> usize {
        self.packs.iter().map(|p| p.len()).sum()
    }

    /// Sorts the packs by increasing size, where the size of a pack is the sum
    /// of `entity_size` over its members (the number of unknowns it computes).
    /// Ties are broken by the original pack index so the ordering is stable.
    pub fn order_by_increasing_size(&mut self, entity_size: &[usize]) {
        let mut keyed: Vec<(usize, usize, Vec<usize>)> = self
            .packs
            .drain(..)
            .enumerate()
            .map(|(idx, pack)| {
                let size: usize = pack.iter().map(|&e| entity_size[e]).sum();
                (size, idx, pack)
            })
            .collect();
        keyed.sort_by_key(|&(size, idx, _)| (size, idx));
        self.packs = keyed.into_iter().map(|(_, _, pack)| pack).collect();
    }

    /// Verifies that no two entities in the same pack are adjacent in `graph`
    /// (the coloring invariant).
    pub fn is_independent(&self, graph: &Graph) -> bool {
        self.packs.iter().all(|pack| {
            pack.iter()
                .all(|&a| graph.neighbors(a).iter().all(|&b| !pack.contains(&b)))
        })
    }

    /// Verifies that every predecessor of every entity lies in a strictly
    /// earlier pack (the schedulability invariant for level sets *and* for
    /// coloring after the symmetric reordering).
    pub fn respects_dependencies(&self, preds: &[Vec<usize>]) -> bool {
        let mut pack_of = vec![usize::MAX; preds.len()];
        for (p, pack) in self.packs.iter().enumerate() {
            for &e in pack {
                pack_of[e] = p;
            }
        }
        if pack_of.contains(&usize::MAX) {
            return false;
        }
        preds
            .iter()
            .enumerate()
            .all(|(e, pe)| pe.iter().all(|&d| pack_of[d] < pack_of[e]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    fn figure1_graph() -> Graph {
        Graph::from_lower_triangular(&generators::paper_figure1_l())
    }

    #[test]
    fn coloring_packs_are_independent_sets() {
        let g = figure1_graph();
        let packs = Packs::by_coloring(&g, ColoringOrder::LargestDegreeFirst);
        assert!(packs.is_independent(&g));
        assert_eq!(packs.num_entities(), 9);
        assert!((2..=4).contains(&packs.num_packs()));
    }

    #[test]
    fn level_set_packs_respect_dependencies() {
        let l = generators::paper_figure1_l();
        let preds: Vec<Vec<usize>> = (0..l.n())
            .map(|i| l.row_off_diag_cols(i).to_vec())
            .collect();
        let packs = Packs::by_level_set(&preds);
        assert_eq!(packs.num_packs(), 6);
        assert!(packs.respects_dependencies(&preds));
        assert_eq!(packs.num_entities(), 9);
    }

    #[test]
    fn ordering_by_size_is_monotone_and_stable() {
        let mut packs = Packs::from_partition(vec![vec![0, 1, 2], vec![3], vec![4, 5], vec![6]]);
        let sizes = vec![1usize; 7];
        packs.order_by_increasing_size(&sizes);
        let sizes_after: Vec<usize> = packs.all().iter().map(|p| p.len()).collect();
        assert_eq!(sizes_after, vec![1, 1, 2, 3]);
        // Stability: the singleton pack {3} (original index 1) precedes {6}.
        assert_eq!(packs.pack(0), &[3]);
        assert_eq!(packs.pack(1), &[6]);
    }

    #[test]
    fn ordering_uses_entity_sizes_not_counts() {
        let mut packs = Packs::from_partition(vec![vec![0], vec![1, 2]]);
        // Entity 0 is huge, entities 1 and 2 are tiny.
        packs.order_by_increasing_size(&[100, 1, 1]);
        assert_eq!(packs.pack(0), &[1, 2]);
        assert_eq!(packs.pack(1), &[0]);
    }

    #[test]
    fn independence_check_detects_adjacent_pairs() {
        let g = figure1_graph();
        // Rows 0 and 2 are adjacent in the Figure-1 graph.
        let packs = Packs::from_partition(vec![vec![0, 2], (1..9).filter(|&v| v != 2).collect()]);
        assert!(!packs.is_independent(&g));
    }

    #[test]
    fn respects_dependencies_detects_missing_entities() {
        let preds = vec![vec![], vec![0]];
        let packs = Packs::from_partition(vec![vec![0]]);
        assert!(!packs.respects_dependencies(&preds));
    }

    #[test]
    fn coloring_on_coarse_graph_gives_fewer_packs_than_levels_on_rows() {
        // The headline observation of Figure 7 at miniature scale: coloring
        // produces far fewer packs than level sets.
        let a = generators::triangulated_grid(16, 16, 5).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let g = Graph::from_lower_triangular(&l);
        let color_packs = Packs::by_coloring(&g, ColoringOrder::LargestDegreeFirst);
        let preds: Vec<Vec<usize>> = (0..l.n())
            .map(|i| l.row_off_diag_cols(i).to_vec())
            .collect();
        let ls_packs = Packs::by_level_set(&preds);
        assert!(
            color_packs.num_packs() * 3 < ls_packs.num_packs(),
            "coloring ({}) should need far fewer packs than level sets ({})",
            color_packs.num_packs(),
            ls_packs.num_packs()
        );
    }
}
