//! Within-pack reordering through the Data Affinity and Reuse graph.
//!
//! Section 3.4: for a pack `P_k`, the DAR graph connects two super-rows when
//! they consume the same solution component from an earlier pack. Reordering
//! the super-rows of the pack with RCM on that graph (equivalently, on the
//! implicit matrix `Âk`) makes the DAR approach a line graph, so that
//! consecutive tasks — which the block/guided schedule places on the same
//! core — share their inputs through that core's cache.

use sts_graph::{rcm, Graph};
use sts_matrix::LowerTriangularCsr;
use sts_sched::DarGraph;

/// Computes, for every super-row (given as its list of row indices in the
/// current numbering), the set of *external* inputs: strictly-lower columns
/// referenced by its rows that belong to a different super-row. These are the
/// `DX` sets of the paper, restricted to components produced outside the task.
pub fn super_row_inputs(l: &LowerTriangularCsr, groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut group_of = vec![usize::MAX; l.n()];
    for (s, g) in groups.iter().enumerate() {
        for &r in g {
            group_of[r] = s;
        }
    }
    groups
        .iter()
        .enumerate()
        .map(|(s, g)| {
            let mut inputs: Vec<usize> = g
                .iter()
                .flat_map(|&r| l.row_off_diag_cols(r).iter().copied())
                .filter(|&c| group_of[c] != s)
                .collect();
            inputs.sort_unstable();
            inputs.dedup();
            inputs
        })
        .collect()
}

/// Builds the DAR graph of one pack. `pack` lists the super-rows of the pack;
/// `inputs[s]` is the external input set of super-row `s` (over all
/// super-rows, as returned by [`super_row_inputs`]). Task `t` of the result
/// corresponds to `pack[t]`.
pub fn pack_dar(pack: &[usize], inputs: &[Vec<usize>]) -> DarGraph {
    DarGraph::from_inputs(pack.iter().map(|&s| inputs[s].clone()).collect())
}

/// Reorders the super-rows of a pack by RCM on its DAR graph and returns the
/// pack's super-rows in the new order. Packs whose DAR has no edges keep
/// their original order.
pub fn reorder_pack_by_dar(pack: &[usize], inputs: &[Vec<usize>]) -> Vec<usize> {
    if pack.len() <= 2 {
        return pack.to_vec();
    }
    let dar = pack_dar(pack, inputs);
    if dar.num_edges() == 0 {
        return pack.to_vec();
    }
    let graph = dar_to_graph(&dar);
    let perm = rcm::reverse_cuthill_mckee(&graph);
    perm.new_to_old().iter().map(|&t| pack[t]).collect()
}

/// Converts a DAR graph into an `sts-graph` adjacency graph (unit weights) so
/// the generic RCM implementation can be reused.
pub fn dar_to_graph(dar: &DarGraph) -> Graph {
    let n = dar.num_tasks();
    let mut adj_ptr = Vec::with_capacity(n + 1);
    let mut adj = Vec::new();
    adj_ptr.push(0);
    for t in 0..n {
        adj.extend_from_slice(dar.neighbors(t));
        adj_ptr.push(adj.len());
    }
    Graph::from_raw(adj_ptr, adj, vec![1; n])
}

/// A measure of how "line-like" an ordered pack is: the fraction of
/// consecutive task pairs that share at least one input. The paper's
/// restructuring aims to drive this toward 1.
pub fn consecutive_sharing_fraction(ordered_pack: &[usize], inputs: &[Vec<usize>]) -> f64 {
    if ordered_pack.len() < 2 {
        return 1.0;
    }
    let shares = ordered_pack
        .windows(2)
        .filter(|w| {
            let a = &inputs[w[0]];
            let b = &inputs[w[1]];
            // both sorted: linear intersection test
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Equal => return true,
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
            }
            false
        })
        .count();
    shares as f64 / (ordered_pack.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    #[test]
    fn super_row_inputs_exclude_internal_columns() {
        let l = generators::paper_figure1_l();
        // Two super-rows: {0..4} and {5..8}.
        let groups = vec![(0..5).collect::<Vec<_>>(), (5..9).collect::<Vec<_>>()];
        let inputs = super_row_inputs(&l, &groups);
        // Super-row 0 contains rows 0..4 whose dependencies (0,1) are internal.
        assert!(inputs[0].is_empty());
        // Super-row 1 rows: 5 deps {2,3}, 6 deps {3,4,5}, 7 deps {4,6}, 8 deps
        // {0,1,7}; external = {0,1,2,3,4}.
        assert_eq!(inputs[1], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pack_dar_links_tasks_sharing_inputs() {
        let inputs = vec![vec![10, 11], vec![11, 12], vec![20]];
        let dar = pack_dar(&[0, 1, 2], &inputs);
        assert_eq!(dar.num_edges(), 1);
        assert!(dar.neighbors(0).contains(&1));
        assert!(dar.neighbors(2).is_empty());
    }

    #[test]
    fn reorder_recovers_a_line_from_a_shuffled_chain() {
        // Tasks form a chain 0-1-2-3-4 via shared inputs, but the pack lists
        // them shuffled. RCM on the DAR must put chain neighbours next to each
        // other, maximising consecutive sharing.
        let inputs = vec![
            vec![0, 1], // task 0
            vec![1, 2], // task 1
            vec![2, 3], // task 2
            vec![3, 4], // task 3
            vec![4, 5], // task 4
        ];
        let pack = vec![2usize, 0, 4, 1, 3];
        let before = consecutive_sharing_fraction(&pack, &inputs);
        let reordered = reorder_pack_by_dar(&pack, &inputs);
        let after = consecutive_sharing_fraction(&reordered, &inputs);
        assert!(
            after > before,
            "sharing fraction should improve: {before} -> {after}"
        );
        assert!(
            (after - 1.0).abs() < 1e-12,
            "a chain must become a perfect line, got {after}"
        );
        // Same multiset of tasks.
        let mut sorted = reordered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn packs_without_sharing_keep_their_order() {
        let inputs = vec![vec![0], vec![1], vec![2], vec![3]];
        let pack = vec![3usize, 1, 0, 2];
        assert_eq!(reorder_pack_by_dar(&pack, &inputs), pack);
    }

    #[test]
    fn tiny_packs_are_returned_unchanged() {
        let inputs = vec![vec![0], vec![0]];
        assert_eq!(reorder_pack_by_dar(&[1, 0], &inputs), vec![1, 0]);
        assert_eq!(reorder_pack_by_dar(&[], &inputs), Vec::<usize>::new());
    }

    #[test]
    fn sharing_fraction_edge_cases() {
        let inputs = vec![vec![1], vec![1]];
        assert_eq!(consecutive_sharing_fraction(&[0], &inputs), 1.0);
        assert_eq!(consecutive_sharing_fraction(&[0, 1], &inputs), 1.0);
        let disjoint = vec![vec![1], vec![2]];
        assert_eq!(consecutive_sharing_fraction(&[0, 1], &disjoint), 0.0);
    }

    #[test]
    fn dar_to_graph_preserves_degrees() {
        let dar = DarGraph::line(6);
        let g = dar_to_graph(&dar);
        assert_eq!(g.n(), 6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
    }
}
