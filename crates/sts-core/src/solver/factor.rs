//! Level-scheduled parallel IC(0) construction on the pack hierarchy.
//!
//! `sts_matrix::factor::ic0` is an up-looking sweep whose dependency DAG is
//! exactly the triangular-solve DAG: row `i` reads the rows named by its
//! retained strictly-lower columns (completely — prefix and diagonal) plus
//! its own earlier entries. The pack / super-row hierarchy an
//! [`StsStructure`] validates for the solve therefore schedules the
//! factorization verbatim:
//!
//! * the super-rows of pack `p` are factored concurrently, statically
//!   chunked over the workers (chunk `c` of every pack is owned by worker
//!   `c`, so each row has exactly one writer);
//! * a chunk does not wait for pack `p − 1`; it waits — through the same
//!   [`EpochGate`] protocol the pipelined solve kernels use — only until the
//!   packs its rows' **external columns actually reference**
//!   ([`SplitLayout::range_ext_dep`](crate::split::SplitLayout::range_ext_dep),
//!   a pure function of the pattern, which IC(0) preserves) are fully
//!   factored. Chunks of pack `p + 1` overlap stragglers of pack `p`
//!   whenever the dependency structure allows, exactly as in the solves;
//! * within a chunk, rows run in increasing order, so same-super-row reads
//!   are this worker's own earlier writes in program order.
//!
//! # Bitwise identity
//!
//! Every value `L[i][·]` is a pure function of already-final inputs,
//! evaluated by [`ic0_factor_row`] in
//! the same merge order as the sequential sweep — so the level-scheduled
//! factor is **bitwise identical** to `sts_matrix::factor::ic0` for every
//! worker count and interleaving (asserted by the property tests).
//!
//! # Breakdown identity
//!
//! A worker that hits a non-SPD pivot does not abort the sweep (which would
//! strand waiters on the gate); it records the row and keeps factoring —
//! `sqrt` of the bad pivot propagates as NaN, and NaN-poisoned descendants
//! fail their own pivot checks. The *lowest* recorded row has all its
//! dependencies intact (any broken dependency would itself be a lower
//! recorded row), so its pivot is bitwise identical to the one the
//! sequential sweep reports when it stops there first: both engines return
//! the same [`MatrixError::FactorizationBreakdown`].
//!
//! # Memory ordering / race freedom
//!
//! The value array is shared through the same
//! `SharedVec` (`solver::parallel`) wrapper as the solve kernels.
//! Row `i`'s slice has one writer (the owner of its chunk). Reads target
//! (a) rows of packs `0..dep`, published by the gate's epoch edge
//! (`wait_open(dep)` happens-after every arrival of those packs), or
//! (b) rows of `i`'s own super-row, written earlier by the same worker in
//! program order. Pack independence ([`StsStructure::validate`]) rules out
//! every other target, so no slot is ever accessed concurrently with its
//! write.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::time::Instant;

use sts_matrix::factor::{ic0_factor_row, lower_pattern_copy};
use sts_matrix::{CsrMatrix, LowerTriangularCsr, MatrixError};
use sts_numa::{EpochGate, GateWait, Schedule};
use sts_trace::Phase;
use sts_verify::TaskKind;

use crate::csrk::{Result, StsStructure};
use crate::solver::parallel::{
    panic_message, pool_error_to_matrix, KernelFailure, ParallelSolver, SharedVec,
};

impl ParallelSolver {
    /// Zero-fill incomplete Cholesky of `a`, level-scheduled over `s`'s pack
    /// hierarchy on this solver's worker pool.
    ///
    /// `a` must be the reordered symmetric matrix whose lower triangle has
    /// **exactly** the sparsity pattern of `s.lower()` (the
    /// [`StsStructure::with_operand`] contract) — the schedule's readiness
    /// metadata and the pack-independence invariant are derived from that
    /// pattern, so a mismatch is rejected up front. Values may differ.
    ///
    /// The result is bitwise identical to `sts_matrix::factor::ic0(a)` —
    /// including the [`MatrixError::FactorizationBreakdown`] row and pivot
    /// on non-SPD input — for every thread count (see the module
    /// documentation for the argument).
    pub fn parallel_ic0(&self, s: &StsStructure, a: &CsrMatrix) -> Result<LowerTriangularCsr> {
        let (row_ptr, col_idx, mut vals) = lower_pattern_copy(a)?;
        if row_ptr != s.lower().row_ptr() || col_idx != s.lower().col_idx() {
            return Err(MatrixError::InvalidStructure(
                "parallel_ic0 needs lower(a) to have exactly the structure operand's sparsity \
                 pattern (the with_operand contract); the level schedule is derived from it"
                    .into(),
            ));
        }
        let n = s.n();
        let workers = self.num_threads();
        if workers == 1 || n == 0 {
            // One worker's program order is the sequential sweep; skip the
            // gate (and its atomics) entirely. The packs partition the rows
            // contiguously in order, so the pack-outer loop visits rows
            // 0..n exactly as the flat sweep does — it exists so the chaos
            // hook sees the same (worker, pack) schedule as the parallel
            // path, and `catch_unwind` gives a panicking hook (or kernel)
            // the same structured error.
            let current_pack = Cell::new(0usize);
            let rec = self.active_recorder();
            let swept = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                for p in 0..s.num_packs() {
                    current_pack.set(p);
                    if let Some(hook) = self.chaos_hook() {
                        hook(0, p);
                    }
                    let t0 = rec.map(|r| r.now_ns());
                    for i in s.pack_rows(p) {
                        let (done, rest) = vals.split_at_mut(row_ptr[i]);
                        let row = &mut rest[..row_ptr[i + 1] - row_ptr[i]];
                        let d = ic0_factor_row(&row_ptr, &col_idx, |k| done[k], row, i);
                        if d <= 0.0 || !d.is_finite() {
                            return Err(MatrixError::FactorizationBreakdown { row: i, pivot: d });
                        }
                        // Row-granularity reads: every slot ic0_factor_row
                        // touched belongs to a row named by i's strictly-lower
                        // columns (or to row i itself, which is the write).
                        self.shadow_record(
                            TaskKind::Gather,
                            i,
                            col_idx[row_ptr[i]..row_ptr[i + 1] - 1].iter().copied(),
                        );
                    }
                    if let Some(r) = rec {
                        r.record(0, p as u32, Phase::Factor, t0.unwrap_or(0), r.now_ns());
                    }
                }
                Ok(())
            }));
            match swept {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    return Err(MatrixError::WorkerPanicked {
                        slot: 0,
                        pack: current_pack.get(),
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
            let csr = CsrMatrix::from_raw_unchecked(n, n, row_ptr, col_idx, vals);
            return LowerTriangularCsr::from_csr(&csr);
        }

        // Static chunks of each pack's super-rows (chunk c owned by worker
        // c) with per-chunk readiness in pack numbering, as in the pipelined
        // solve plans. Forcing the lazy split layout here only borrows what
        // the preconditioner sweeps build anyway.
        let split = s.split();
        let num_packs = s.num_packs();
        let index2 = s.index2();
        let mut chunk_rows: Vec<std::ops::Range<usize>> = Vec::new();
        let mut chunk_dep: Vec<u32> = Vec::new();
        let mut chunk_ptr = Vec::with_capacity(num_packs + 1);
        let mut counts = Vec::with_capacity(num_packs);
        chunk_ptr.push(0usize);
        for p in 0..num_packs {
            let srs = s.pack_super_rows(p);
            let nsr = srs.len();
            let nchunks = workers.min(nsr);
            for c in 0..nchunks {
                let sr_lo = srs.start + c * nsr / nchunks;
                let sr_hi = srs.start + (c + 1) * nsr / nchunks;
                let rows = index2[sr_lo]..index2[sr_hi];
                chunk_dep.push(split.range_ext_dep(rows.clone()));
                chunk_rows.push(rows);
            }
            chunk_ptr.push(chunk_rows.len());
            counts.push((nchunks, 0));
        }
        let gate = EpochGate::new(&counts);
        // Per-worker-slot breakdown records (row, pivot bits); usize::MAX
        // marks "none". Each slot has exactly one writer.
        let bd_row: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let bd_pivot: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let deadline = Instant::now() + self.watchdog();
        let failure = KernelFailure::new();
        let rec = self.active_recorder();
        {
            let shared = SharedVec::new(&mut vals);
            let row_ptr = &row_ptr;
            let col_idx = &col_idx;
            let failure = &failure;
            self.pool()
                .parallel_for(workers, Schedule::Static, &|w| {
                    let current_pack = Cell::new(0usize);
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        let mut local_row = usize::MAX;
                        let mut local_pivot = 0.0f64;
                        for p in 0..num_packs {
                            let nchunks = chunk_ptr[p + 1] - chunk_ptr[p];
                            if w >= nchunks {
                                continue;
                            }
                            let idx = chunk_ptr[p] + w;
                            current_pack.set(p);
                            // Wait only for the packs this chunk's external
                            // columns reference (dep ≤ p, so progress is
                            // guaranteed: every worker only ever waits on
                            // strictly earlier packs). Poisoned or timed-out
                            // waits unwind the sweep instead of hanging.
                            let t0 = rec.map(|r| r.now_ns());
                            let wait = gate.wait_open_until(chunk_dep[idx] as usize, deadline);
                            if let Some(r) = rec {
                                r.record(
                                    w as u32,
                                    p as u32,
                                    Phase::GateWait,
                                    t0.unwrap_or(0),
                                    r.now_ns(),
                                );
                            }
                            match wait {
                                GateWait::Ready => {}
                                GateWait::Poisoned => break,
                                GateWait::TimedOut => {
                                    failure.record_timeout(p);
                                    gate.poison();
                                    break;
                                }
                            }
                            if let Some(hook) = self.chaos_hook() {
                                hook(w, p);
                            }
                            let t0 = rec.map(|r| r.now_ns());
                            for i in chunk_rows[idx].clone() {
                                let lo = row_ptr[i];
                                // SAFETY: row i's slots are written only by
                                // this chunk's owner; reads inside
                                // ic0_factor_row target strictly earlier rows
                                // — published by the epoch edge (earlier
                                // packs) or written earlier by this worker
                                // (own super-row). See the module docs.
                                let row = unsafe { shared.slice_mut(lo, row_ptr[i + 1] - lo) };
                                let d = ic0_factor_row(
                                    row_ptr,
                                    col_idx,
                                    // SAFETY: same argument as the slice
                                    // above — k names a finalized slot.
                                    |k| unsafe { shared.read(k) },
                                    row,
                                    i,
                                );
                                if (d <= 0.0 || !d.is_finite()) && i < local_row {
                                    local_row = i;
                                    local_pivot = d;
                                }
                                // Same row-granularity read set as the
                                // single-worker path above.
                                self.shadow_record(
                                    TaskKind::Gather,
                                    i,
                                    col_idx[lo..row_ptr[i + 1] - 1].iter().copied(),
                                );
                            }
                            if let Some(r) = rec {
                                r.record(
                                    w as u32,
                                    p as u32,
                                    Phase::Factor,
                                    t0.unwrap_or(0),
                                    r.now_ns(),
                                );
                            }
                            gate.arrive_phase1(p);
                        }
                        if local_row != usize::MAX {
                            // Relaxed suffices: the pool's completion barrier
                            // publishes these slots to the orchestrator below.
                            bd_row[w].store(local_row, AtomicOrdering::Relaxed);
                            bd_pivot[w].store(local_pivot.to_bits(), AtomicOrdering::Relaxed);
                        }
                    }));
                    if let Err(payload) = body {
                        failure.record_panic(
                            w,
                            current_pack.get(),
                            panic_message(payload.as_ref()),
                        );
                        gate.poison();
                    }
                })
                .map_err(pool_error_to_matrix)?;
        }
        // A panic or timeout outranks the breakdown merge: the sweep did not
        // finish, so the per-worker records may be incomplete.
        failure.into_result(self.watchdog().as_millis() as u64)?;
        let mut first = usize::MAX;
        let mut pivot = 0.0f64;
        for w in 0..workers {
            let r = bd_row[w].load(AtomicOrdering::Relaxed);
            if r < first {
                first = r;
                pivot = f64::from_bits(bd_pivot[w].load(AtomicOrdering::Relaxed));
            }
        }
        if first != usize::MAX {
            return Err(MatrixError::FactorizationBreakdown { row: first, pivot });
        }
        let csr = CsrMatrix::from_raw_unchecked(n, n, row_ptr, col_idx, vals);
        LowerTriangularCsr::from_csr(&csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Method;
    use sts_matrix::{factor, generators};

    /// The structure and reordered full matrix for a grid Laplacian: the
    /// SpdSystem shape without depending on sts-krylov.
    fn laplacian_setup(nx: usize, ny: usize) -> (StsStructure, CsrMatrix) {
        let a = generators::grid2d_laplacian(nx, ny).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 8).unwrap();
        let a_perm = a.permute_symmetric(s.permutation().new_to_old()).unwrap();
        (s, a_perm)
    }

    #[test]
    fn parallel_factor_is_bitwise_identical_across_thread_counts() {
        let (s, a) = laplacian_setup(17, 15);
        let reference = factor::ic0(&a).unwrap();
        for threads in [1, 2, 4, 8] {
            let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
            let f = solver.parallel_ic0(&s, &a).unwrap();
            assert_eq!(
                f.values(),
                reference.values(),
                "parallel IC(0) diverged from sequential with {threads} threads"
            );
            assert_eq!(f.row_ptr(), reference.row_ptr());
            assert_eq!(f.col_idx(), reference.col_idx());
        }
    }

    #[test]
    fn repeated_contended_builds_stay_identical() {
        // Oversubscribed pool, chain-heavy level-set ordering: readiness
        // races would show up as sporadic divergence.
        let a = generators::grid2d_laplacian(20, 20).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Csr3Ls.build(&l, 6).unwrap();
        let a_perm = a.permute_symmetric(s.permutation().new_to_old()).unwrap();
        let reference = factor::ic0(&a_perm).unwrap();
        let solver = ParallelSolver::new(8, Schedule::Guided { min_chunk: 1 });
        for round in 0..20 {
            let f = solver.parallel_ic0(&s, &a_perm).unwrap();
            assert_eq!(
                f.values(),
                reference.values(),
                "parallel IC(0) diverged on round {round}"
            );
        }
    }

    #[test]
    fn breakdown_reports_the_same_row_and_pivot_as_sequential() {
        let (s, mut a) = laplacian_setup(9, 9);
        // Poison one diagonal in the *reordered* numbering so the pivot at
        // that row goes non-positive; rows depending on it NaN-poison, and
        // both engines must stop at the same first row with the same pivot.
        let target = s.n() / 2;
        let pos = a
            .row_cols(target)
            .iter()
            .position(|&c| c == target)
            .unwrap();
        let start = a.row_ptr()[target];
        a.values_mut()[start + pos] = 1e-9;
        let seq = factor::ic0(&a);
        let Err(MatrixError::FactorizationBreakdown {
            row: seq_row,
            pivot: seq_pivot,
        }) = seq
        else {
            panic!("poisoned diagonal must break the sequential factorization");
        };
        for threads in [2, 4, 8] {
            let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
            match solver.parallel_ic0(&s, &a) {
                Err(MatrixError::FactorizationBreakdown { row, pivot }) => {
                    assert_eq!(row, seq_row, "{threads} threads: breakdown row differs");
                    assert_eq!(
                        pivot.to_bits(),
                        seq_pivot.to_bits(),
                        "{threads} threads: breakdown pivot differs"
                    );
                }
                other => panic!("{threads} threads: expected breakdown, got {other:?}"),
            }
        }
    }

    #[test]
    fn pattern_mismatch_is_rejected() {
        let (s, a) = laplacian_setup(6, 6);
        // A matrix of the right size but a different pattern (identity).
        let other = CsrMatrix::identity(s.n());
        let solver = ParallelSolver::new(2, Schedule::Static);
        assert!(matches!(
            solver.parallel_ic0(&s, &other),
            Err(MatrixError::InvalidStructure(_))
        ));
        // And the happy path still works afterwards (pool reusable).
        assert!(solver.parallel_ic0(&s, &a).is_ok());
    }

    #[test]
    fn factor_preconditions_through_the_structure_sweeps() {
        // End-to-end: the parallel factor hosted by with_operand inverts
        // F Fᵀ through the structure's forward/backward sweeps.
        let (s, a) = laplacian_setup(10, 8);
        let solver = ParallelSolver::new(4, Schedule::Guided { min_chunk: 1 });
        let f = solver.parallel_ic0(&s, &a).unwrap();
        let fs = s.with_operand(f).unwrap();
        let w: Vec<f64> = (0..s.n()).map(|i| 1.0 - (i % 4) as f64 * 0.2).collect();
        let ftw = fs.lower().multiply_transpose(&w).unwrap();
        let r = fs.lower().multiply(&ftw).unwrap();
        let y = fs.solve_sequential_split(&r).unwrap();
        let z = fs.solve_transpose_sequential_split(&y).unwrap();
        for (got, want) in z.iter().zip(&w) {
            assert!((got - want).abs() < 1e-10);
        }
    }
}
