//! Triangular solvers on top of the STS-k structure.
//!
//! * [`parallel`] — the pack-parallel solver: one `parallel_for` over the
//!   super-rows of each pack on a persistent (optionally pinned) worker pool,
//!   a barrier between packs; this is Algorithm 1 executed with threads.
//! * [`scheduled`] — a schedule-only level-scheduled solver for callers who
//!   must solve their original `L x = b` without any reordering (classical
//!   Saltz level scheduling); it shares no storage transformation with STS-k
//!   and serves as an additional baseline.
//! * [`factor`] — level-scheduled parallel IC(0) construction
//!   ([`ParallelSolver::parallel_ic0`]): the preconditioner *setup* run over
//!   the same pack hierarchy and epoch-gate readiness scheme as the solves,
//!   bitwise identical to the sequential up-looking sweep.

pub mod factor;
pub mod parallel;
pub mod scheduled;

pub use parallel::ParallelSolver;
pub use scheduled::LevelScheduledSolver;
