//! The pack-parallel triangular solver.
//!
//! For each pack, the super-rows are distributed over the worker pool with the
//! configured OpenMP-style schedule (the paper uses `dynamic,32` for the flat
//! methods and `guided,1` for the 3-level methods); the pool's completion
//! acts as the inter-pack barrier. Rows inside a super-row are solved
//! sequentially by the owning worker.
//!
//! # Data-race freedom
//!
//! The solution vector is shared mutably across workers through a small
//! `UnsafeCell` wrapper. This is sound because:
//!
//! * every row index is written by exactly one super-row, and every super-row
//!   is executed by exactly one worker within its pack;
//! * a row only *reads* components written either by earlier rows of the same
//!   super-row (same worker, program order) or by rows of earlier packs
//!   (separated by the pool's completion barrier, which synchronises memory);
//! * [`StsStructure::validate`] enforces exactly this dependency discipline at
//!   construction time.

use sts_matrix::MatrixError;
use sts_numa::{Schedule, WorkerPool};

use crate::csrk::{Result, StsStructure};

/// Shared mutable solution vector; see the module documentation for the
/// aliasing discipline that makes this sound.
pub(crate) struct SharedVec {
    ptr: *mut f64,
    len: usize,
}

unsafe impl Sync for SharedVec {}

impl SharedVec {
    /// Wraps a vector for shared mutable access; the vector must outlive every
    /// use of the wrapper.
    pub(crate) fn new(v: &mut [f64]) -> Self {
        SharedVec { ptr: v.as_mut_ptr(), len: v.len() }
    }

    /// # Safety
    /// Caller must guarantee the index is in bounds and not concurrently
    /// accessed by another thread.
    pub(crate) unsafe fn write(&self, idx: usize, value: f64) {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = value;
    }

    /// # Safety
    /// Caller must guarantee the index is in bounds and not concurrently
    /// written by another thread.
    pub(crate) unsafe fn read(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx)
    }
}

/// A reusable parallel solver bound to a worker pool.
pub struct ParallelSolver {
    pool: WorkerPool,
    schedule: Schedule,
}

impl ParallelSolver {
    /// Creates a solver that runs on `threads` unpinned workers with the given
    /// intra-pack schedule.
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        ParallelSolver { pool: WorkerPool::new(threads), schedule }
    }

    /// Creates a solver whose workers are pinned to the given core order
    /// (typically [`NumaTopology::compact_core_order`]).
    ///
    /// [`NumaTopology::compact_core_order`]:
    ///     sts_numa::NumaTopology::compact_core_order
    pub fn with_pinning(threads: usize, schedule: Schedule, core_order: &[usize]) -> Self {
        ParallelSolver { pool: WorkerPool::with_pinning(threads, core_order), schedule }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The intra-pack schedule in use.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Solves the reordered system `L' x' = b'` in parallel and returns `x'`.
    pub fn solve(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                s.n()
            )));
        }
        let mut x = vec![0.0f64; s.n()];
        {
            let shared = SharedVec::new(&mut x);
            let l = s.lower();
            let row_ptr = l.row_ptr();
            let col_idx = l.col_idx();
            let values = l.values();
            for p in 0..s.num_packs() {
                let pack = s.pack_super_rows(p);
                let first_super_row = pack.start;
                let pack_len = pack.len();
                self.pool.parallel_for(pack_len, self.schedule, &|t| {
                    let sr = first_super_row + t;
                    for i1 in s.super_row_rows(sr) {
                        let start = row_ptr[i1];
                        let end = row_ptr[i1 + 1];
                        let mut acc = 0.0;
                        for k in start..end - 1 {
                            // SAFETY: column k refers either to an earlier pack
                            // (completed before this pack started) or to an
                            // earlier row of this same super-row (written by
                            // this worker earlier in this closure).
                            acc += values[k] * unsafe { shared.read(col_idx[k]) };
                        }
                        // SAFETY: row i1 belongs to exactly one super-row,
                        // executed by exactly one worker.
                        unsafe { shared.write(i1, (b[i1] - acc) / values[end - 1]) };
                    }
                });
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Method;
    use sts_matrix::{generators, ops};

    fn check_parallel_matches_sequential(
        a: &sts_matrix::CsrMatrix,
        method: Method,
        threads: usize,
        schedule: Schedule,
    ) {
        let l = generators::lower_operand(a).unwrap();
        let s = method.build(&l, 8).unwrap();
        let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let seq = s.solve_sequential(&b).unwrap();
        let solver = ParallelSolver::new(threads, schedule);
        let par = solver.solve(&s, &b).unwrap();
        assert!(ops::relative_error_inf(&par, &seq) < 1e-12, "parallel must match sequential");
        assert!(ops::relative_error_inf(&par, &x_true) < 1e-10);
    }

    #[test]
    fn parallel_matches_sequential_for_all_methods() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        for method in Method::all() {
            check_parallel_matches_sequential(&a, method, 4, Schedule::Dynamic { chunk: 4 });
        }
    }

    #[test]
    fn parallel_matches_sequential_across_schedules() {
        let a = generators::grid2d_9point(13, 13).unwrap();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 32 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            check_parallel_matches_sequential(&a, Method::Sts3, 4, schedule);
        }
    }

    #[test]
    fn single_threaded_solver_works() {
        let a = generators::road_network(12, 12, 0.6, 4).unwrap();
        check_parallel_matches_sequential(&a, Method::CsrCol, 1, Schedule::Static);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let l = generators::paper_figure1_l();
        let s = Method::Sts3.build(&l, 2).unwrap();
        let b = vec![1.0; 9];
        let solver = ParallelSolver::new(8, Schedule::Guided { min_chunk: 1 });
        let x = solver.solve(&s, &b).unwrap();
        let x_ref = s.solve_sequential(&b).unwrap();
        assert!(ops::relative_error_inf(&x, &x_ref) < 1e-14);
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let l = generators::paper_figure1_l();
        let s = Method::CsrLs.build(&l, 2).unwrap();
        let solver = ParallelSolver::new(2, Schedule::Static);
        assert!(solver.solve(&s, &[1.0; 4]).is_err());
    }

    #[test]
    fn solver_is_reusable_across_structures_and_right_hand_sides() {
        let solver = ParallelSolver::new(3, Schedule::Dynamic { chunk: 2 });
        for seed in 0..3 {
            let a = generators::triangulated_grid(9, 9, seed).unwrap();
            let l = generators::lower_operand(&a).unwrap();
            let s = Method::Sts3.build(&l, 4).unwrap();
            for shift in 0..3 {
                let x_true: Vec<f64> = (0..s.n()).map(|i| (i + shift) as f64 * 0.1 + 1.0).collect();
                let b = s.lower().multiply(&x_true).unwrap();
                let x = solver.solve(&s, &b).unwrap();
                assert!(ops::relative_error_inf(&x, &x_true) < 1e-10);
            }
        }
    }

    #[test]
    fn pinned_solver_solves_correctly() {
        let topo = sts_numa::NumaTopology::detect_host();
        let order = topo.compact_core_order(2);
        let a = generators::grid2d_laplacian(10, 10).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 4).unwrap();
        let solver = ParallelSolver::with_pinning(2, Schedule::Guided { min_chunk: 1 }, &order);
        let x_true = vec![2.0; s.n()];
        let b = s.lower().multiply(&x_true).unwrap();
        let x = solver.solve(&s, &b).unwrap();
        assert!(ops::relative_error_inf(&x, &x_true) < 1e-10);
    }
}
