//! The pack-parallel triangular solver.
//!
//! For each pack, the super-rows are distributed over the worker pool with the
//! configured OpenMP-style schedule (the paper uses `dynamic,32` for the flat
//! methods and `guided,1` for the 3-level methods); the pool's completion
//! acts as the inter-pack barrier. Rows inside a super-row are solved
//! sequentially by the owning worker.
//!
//! # The two-phase split kernels
//!
//! [`ParallelSolver::solve_split`] and [`ParallelSolver::solve_batch`] run
//! each pack in two phases on the precomputed
//! [`SplitLayout`](crate::split::SplitLayout):
//!
//! 1. **external gather** — `x[i] = b[i] − Σ L_ext·x` for every row `i` of
//!    the pack, statically chunked over the workers. Every column of the
//!    external slab belongs to an *earlier* pack, so all inputs are final:
//!    rows can run in any order and any interleaving, and the slab streams
//!    contiguously (the pack's rows are consecutive);
//! 2. **internal substitution** — the short in-pack dependence chains,
//!    distributed over super-rows under the solver's configured schedule.
//!
//! This moves the bulk of the memory traffic out of the ordered critical
//! path: phase 1 is a bandwidth-bound SpMV-style sweep with perfect load
//! balance, and phase 2's critical path only walks the internal slab, which
//! is a small fraction of the nonzeros for coloring/level-set packs.
//!
//! # Data-race freedom
//!
//! The solution vector is shared mutably across workers through a small
//! `UnsafeCell`-style wrapper. For the one-phase kernel this is sound
//! because:
//!
//! * every row index is written by exactly one super-row, and every super-row
//!   is executed by exactly one worker within its pack;
//! * a row only *reads* components written either by earlier rows of the same
//!   super-row (same worker, program order) or by rows of earlier packs
//!   (separated by the pool's completion barrier, which synchronises memory);
//! * [`StsStructure::validate`] enforces exactly this dependency discipline at
//!   construction time.
//!
//! The two-phase kernels share `x` across an extra barrier, and the argument
//! extends as follows:
//!
//! * **phase 1** writes `x[i]` only for rows `i` of the current pack — each
//!   row belongs to exactly one statically-assigned chunk, so each index has
//!   one writer — and reads `x[j]` only through the external slab, whose
//!   columns `j` lie in earlier packs and were finalized before the previous
//!   pack's completion barrier;
//! * the pool's completion of phase 1 is a barrier that publishes every
//!   phase-1 write before phase 2 starts;
//! * **phase 2** writes `x[i]` for the rows of exactly one super-row per
//!   worker and reads, besides those same rows, only phase-1 results of the
//!   current pack (published by the phase barrier) through the internal
//!   slab, whose columns stay inside the writer's own super-row (same
//!   worker, program order).
//!
//! # The pack-pipelined kernels (barrier fusion)
//!
//! [`ParallelSolver::solve_pipelined`] and
//! [`ParallelSolver::solve_batch_pipelined`] run the *same* per-row
//! arithmetic as the split kernels but fuse the two full-pool barriers per
//! pack into an [`EpochGate`](sts_numa::EpochGate): one pool dispatch covers
//! the whole solve, and workers coordinate through per-pack completion
//! counters instead of barriers. The schedule per worker `w`:
//!
//! * **phase 1** of pack `p` is statically chunked exactly as in
//!   `solve_split`, and chunk `c` is *owned* by worker `c` — ownership is a
//!   compile-time-static function of `(p, w)`, so no two workers ever write
//!   the same row;
//! * a chunk does not wait for pack `p − 1`; it waits only until the gate's
//!   epoch covers the chunk's precomputed readiness
//!   ([`SplitLayout::range_ext_dep`](crate::split::SplitLayout::range_ext_dep)
//!   — the latest pack its external slab range actually reads). Phase 1 of
//!   pack `p + 1` therefore overlaps phase 2 of pack `p` whenever the
//!   dependency structure allows;
//! * **phase 2** chain tasks of pack `p` are claimed one at a time from a
//!   shared ticket counter once the gate reports pack `p`'s phase 1 drained;
//!   a worker that finds no ticket left moves straight on to its phase-1
//!   chunk of pack `p + 1`. While phase 1 of pack `p` is still draining, a
//!   parked worker *looks ahead*: it runs its chunks of packs `p + 1` and
//!   `p + 2` (readiness permitting) instead of spinning.
//!
//! ## Memory-ordering argument (which flag publishes which `x` entries)
//!
//! Data-race freedom needs every read of `x[j]` to happen-after the write it
//! observes. The gate provides exactly two publication edges:
//!
//! * **`is_open(d)` / `wait_open(d)`** (epoch ≥ `d`) happens-after *every*
//!   arrival of packs `0..d` — both phases — via the release sequences on the
//!   gate's per-pack counters and the release CAS chain on the epoch. A
//!   phase-1 chunk with readiness `d` reads `x[j]` only for external columns
//!   `j` in packs `< d`, each finalized (phase-1 write, plus phase-2
//!   correction for chain rows) before its pack's last arrival. The chunk
//!   runs behind `wait_open(d)`, so all those entries are published to it.
//! * **`phase1_drained(p)`** happens-after every phase-1 arrival of pack `p`.
//!   A phase-2 task reads `x[j]` only for internal columns `j` of its own
//!   super-row (phase-1 values published by the drained flag, or its own
//!   earlier chain-row corrections in program order) and corrects rows owned
//!   by no other task. Its writes are in turn published to later packs by
//!   its `arrive_phase2` and the epoch edge above.
//!
//! Lookahead never weakens this: a worker running a chunk of pack `p + 2`
//! early still passed that chunk's own readiness check, and writes only rows
//! of pack `p + 2`, which no other worker touches until the epoch covers
//! `p + 2` — which cannot happen before the chunk's own arrival.

use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

use sts_matrix::MatrixError;
use sts_numa::{EpochGate, Schedule, WorkerPool};

use crate::csrk::{Result, StsStructure};
use crate::split::SplitLayout;

/// Shared mutable solution vector; see the module documentation for the
/// aliasing discipline that makes this sound.
pub(crate) struct SharedVec {
    ptr: *mut f64,
    len: usize,
}

unsafe impl Sync for SharedVec {}

impl SharedVec {
    /// Wraps a vector for shared mutable access; the vector must outlive every
    /// use of the wrapper.
    pub(crate) fn new(v: &mut [f64]) -> Self {
        SharedVec {
            ptr: v.as_mut_ptr(),
            len: v.len(),
        }
    }

    /// # Safety
    /// Caller must guarantee the index is in bounds and not concurrently
    /// accessed by another thread.
    pub(crate) unsafe fn write(&self, idx: usize, value: f64) {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = value;
    }

    /// # Safety
    /// Caller must guarantee the index is in bounds and not concurrently
    /// written by another thread.
    pub(crate) unsafe fn read(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx)
    }
}

/// A reusable parallel solver bound to a worker pool.
pub struct ParallelSolver {
    pool: WorkerPool,
    schedule: Schedule,
}

impl ParallelSolver {
    /// Creates a solver that runs on `threads` unpinned workers with the given
    /// intra-pack schedule.
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        ParallelSolver {
            pool: WorkerPool::new(threads),
            schedule,
        }
    }

    /// Creates a solver whose workers are pinned to the given core order
    /// (typically [`NumaTopology::compact_core_order`]).
    ///
    /// [`NumaTopology::compact_core_order`]:
    ///     sts_numa::NumaTopology::compact_core_order
    pub fn with_pinning(threads: usize, schedule: Schedule, core_order: &[usize]) -> Self {
        ParallelSolver {
            pool: WorkerPool::with_pinning(threads, core_order),
            schedule,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The intra-pack schedule in use.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Solves the reordered system `L' x' = b'` in parallel and returns `x'`.
    pub fn solve(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                s.n()
            )));
        }
        let mut x = vec![0.0f64; s.n()];
        {
            let shared = SharedVec::new(&mut x);
            let l = s.lower();
            let row_ptr = l.row_ptr();
            let col_idx = l.col_idx();
            let values = l.values();
            for p in 0..s.num_packs() {
                let pack = s.pack_super_rows(p);
                let first_super_row = pack.start;
                let pack_len = pack.len();
                self.pool.parallel_for(pack_len, self.schedule, &|t| {
                    let sr = first_super_row + t;
                    for i1 in s.super_row_rows(sr) {
                        let start = row_ptr[i1];
                        let end = row_ptr[i1 + 1];
                        let mut acc = 0.0;
                        for k in start..end - 1 {
                            // SAFETY: column k refers either to an earlier pack
                            // (completed before this pack started) or to an
                            // earlier row of this same super-row (written by
                            // this worker earlier in this closure).
                            acc += values[k] * unsafe { shared.read(col_idx[k]) };
                        }
                        // SAFETY: row i1 belongs to exactly one super-row,
                        // executed by exactly one worker.
                        unsafe { shared.write(i1, (b[i1] - acc) / values[end - 1]) };
                    }
                });
            }
        }
        Ok(x)
    }

    /// Solves `L' x' = b'` with the two-phase split kernel (see the module
    /// documentation): per pack, a statically-chunked external gather over
    /// the rows, a phase barrier, then the internal substitution over the
    /// super-rows under the configured schedule.
    pub fn solve_split(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                s.n()
            )));
        }
        let mut x = vec![0.0f64; s.n()];
        {
            let shared = SharedVec::new(&mut x);
            let split = s.split();
            let erp = split.ext_row_ptr();
            let ecols = split.ext_cols();
            let evals = split.ext_vals();
            let irp = split.int_row_ptr();
            let icols = split.int_cols();
            let ivals = split.int_vals();
            let inv_diag = split.inv_diags();
            let workers = self.pool.num_threads();
            for p in 0..s.num_packs() {
                let rows = s.pack_rows(p);
                let first_row = rows.start;
                let m = rows.len();
                // Phase 1: external gather with the diagonal scale folded in,
                // statically chunked — one contiguous block of rows (and one
                // contiguous slab range) per worker, one dispatch per worker.
                // Rows without internal entries are final after this sweep.
                let nchunks = workers.min(m);
                self.pool.parallel_for(nchunks, Schedule::Static, &|c| {
                    let chunk_start = first_row + c * m / nchunks;
                    let chunk_end = first_row + (c + 1) * m / nchunks;
                    for i1 in chunk_start..chunk_end {
                        let mut acc = 0.0;
                        for k in erp[i1]..erp[i1 + 1] {
                            // SAFETY: external columns belong to earlier
                            // packs, finalized before this pack's first
                            // barrier.
                            acc += evals[k] * unsafe { shared.read(ecols[k] as usize) };
                        }
                        // SAFETY: row i1 is written by exactly one phase-1
                        // chunk.
                        unsafe { shared.write(i1, (b[i1] - acc) * inv_diag[i1]) };
                    }
                });
                // Phase 2: internal substitution along the super-row chains.
                // Only the precomputed chain tasks are dispatched, and each
                // task visits only its chain rows; chain-free packs skip the
                // phase (and its barrier) entirely.
                let chain = split.chain_super_rows(p);
                if chain.is_empty() {
                    continue;
                }
                self.pool.parallel_for(chain.len(), self.schedule, &|t| {
                    for &i1 in split.chain_rows_of(p, t) {
                        let i1 = i1 as usize;
                        let mut acc = 0.0;
                        for k in irp[i1]..irp[i1 + 1] {
                            // SAFETY: internal columns stay inside this
                            // super-row — written earlier by this worker if
                            // they are chain rows, published by the phase
                            // barrier otherwise.
                            acc += ivals[k] * unsafe { shared.read(icols[k] as usize) };
                        }
                        // SAFETY: row i1 belongs to exactly one chain task;
                        // its phase-1 value was published by the barrier.
                        let partial = unsafe { shared.read(i1) };
                        unsafe { shared.write(i1, partial - acc * inv_diag[i1]) };
                    }
                });
            }
        }
        Ok(x)
    }

    /// Solves `L' X' = B'` for `nrhs` right-hand sides with the two-phase
    /// split kernel, amortising each `(col, val)` load over the whole batch.
    /// Layout matches [`StsStructure::solve_batch`]: `b[i * nrhs + r]`.
    pub fn solve_batch(&self, s: &StsStructure, b: &[f64], nrhs: usize) -> Result<Vec<f64>> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_batch needs at least one right-hand side".into(),
            ));
        }
        if b.len() != s.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B has length {}, expected n * nrhs = {}",
                b.len(),
                s.n() * nrhs
            )));
        }
        let mut x = vec![0.0f64; s.n() * nrhs];
        {
            let shared = SharedVec::new(&mut x);
            let split = s.split();
            let erp = split.ext_row_ptr();
            let ecols = split.ext_cols();
            let evals = split.ext_vals();
            let irp = split.int_row_ptr();
            let icols = split.int_cols();
            let ivals = split.int_vals();
            let inv_diag = split.inv_diags();
            // The aliasing argument is identical to solve_split's, with "row
            // i1" standing for the nrhs consecutive slots of row i1.
            let workers = self.pool.num_threads();
            for p in 0..s.num_packs() {
                let rows = s.pack_rows(p);
                let first_row = rows.start;
                let m = rows.len();
                let nchunks = workers.min(m);
                // Rows are exclusively owned by their chunk/task, so each
                // row's partial sums accumulate in a stack-local tile
                // (registers, no round-trips through the shared pointer) and
                // are written back once; right-hand sides beyond the tile
                // width are processed in further passes over the row.
                const TILE: usize = 8;
                self.pool.parallel_for(nchunks, Schedule::Static, &|c| {
                    let chunk_start = first_row + c * m / nchunks;
                    let chunk_end = first_row + (c + 1) * m / nchunks;
                    for i1 in chunk_start..chunk_end {
                        let base = i1 * nrhs;
                        let d = inv_diag[i1];
                        for r0 in (0..nrhs).step_by(TILE) {
                            let w = TILE.min(nrhs - r0);
                            let mut acc = [0.0f64; TILE];
                            acc[..w].copy_from_slice(&b[base + r0..base + r0 + w]);
                            for k in erp[i1]..erp[i1 + 1] {
                                let (j, v) = (ecols[k] as usize, evals[k]);
                                for (r, a) in acc[..w].iter_mut().enumerate() {
                                    // SAFETY: as in solve_split, reads target
                                    // earlier packs, finalized before this
                                    // pack's first barrier.
                                    *a -= v * unsafe { shared.read(j * nrhs + r0 + r) };
                                }
                            }
                            for (r, a) in acc[..w].iter().enumerate() {
                                // SAFETY: the nrhs slots of row i1 have
                                // exactly one phase-1 writer (this chunk).
                                unsafe { shared.write(base + r0 + r, a * d) };
                            }
                        }
                    }
                });
                let chain = split.chain_super_rows(p);
                if chain.is_empty() {
                    continue;
                }
                self.pool.parallel_for(chain.len(), self.schedule, &|t| {
                    for &i1 in split.chain_rows_of(p, t) {
                        let i1 = i1 as usize;
                        let base = i1 * nrhs;
                        let d = inv_diag[i1];
                        for r0 in (0..nrhs).step_by(TILE) {
                            let w = TILE.min(nrhs - r0);
                            let mut acc = [0.0f64; TILE];
                            for (r, a) in acc[..w].iter_mut().enumerate() {
                                // SAFETY: row i1 belongs to exactly one chain
                                // task; its phase-1 values were published by
                                // the barrier.
                                *a = unsafe { shared.read(base + r0 + r) };
                            }
                            for k in irp[i1]..irp[i1 + 1] {
                                let (j, v) = (icols[k] as usize, ivals[k]);
                                let vd = v * d;
                                for (r, a) in acc[..w].iter_mut().enumerate() {
                                    // SAFETY: same-super-row reads — this
                                    // worker's earlier writes, or phase-1
                                    // results published by the barrier.
                                    *a -= vd * unsafe { shared.read(j * nrhs + r0 + r) };
                                }
                            }
                            for (r, a) in acc[..w].iter().enumerate() {
                                // SAFETY: row i1 is owned by this chain task.
                                unsafe { shared.write(base + r0 + r, *a) };
                            }
                        }
                    }
                });
            }
        }
        Ok(x)
    }

    /// Solves `L' x' = b'` with the pack-pipelined kernel: same arithmetic as
    /// [`ParallelSolver::solve_split`], but the per-pack phase barriers are
    /// fused into an [`EpochGate`] so phase 1 of later packs overlaps phase 2
    /// of earlier ones (see the module documentation). One pool dispatch
    /// covers the whole solve.
    pub fn solve_pipelined(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                s.n()
            )));
        }
        let mut x = vec![0.0f64; s.n()];
        {
            let shared = SharedVec::new(&mut x);
            let split = s.split();
            let erp = split.ext_row_ptr();
            let ecols = split.ext_cols();
            let evals = split.ext_vals();
            let irp = split.int_row_ptr();
            let icols = split.int_cols();
            let ivals = split.int_vals();
            let inv_diag = split.inv_diags();
            let gather = |rows: std::ops::Range<usize>| {
                for i1 in rows {
                    let mut acc = 0.0;
                    for k in erp[i1]..erp[i1 + 1] {
                        // SAFETY: external columns lie in packs the chunk's
                        // readiness wait covered; the epoch edge published
                        // their final values (module docs).
                        acc += evals[k] * unsafe { shared.read(ecols[k] as usize) };
                    }
                    // SAFETY: row i1 is written by exactly one statically
                    // owned chunk.
                    unsafe { shared.write(i1, (b[i1] - acc) * inv_diag[i1]) };
                }
            };
            let chain = |p: usize, t: usize| {
                for &i1 in split.chain_rows_of(p, t) {
                    let i1 = i1 as usize;
                    let mut acc = 0.0;
                    for k in irp[i1]..irp[i1 + 1] {
                        // SAFETY: internal columns stay inside this
                        // super-row — written earlier by this task if they
                        // are chain rows, published by the drained flag
                        // otherwise.
                        acc += ivals[k] * unsafe { shared.read(icols[k] as usize) };
                    }
                    // SAFETY: row i1 belongs to exactly one chain task; its
                    // phase-1 value was published by the drained flag.
                    let partial = unsafe { shared.read(i1) };
                    unsafe { shared.write(i1, partial - acc * inv_diag[i1]) };
                }
            };
            self.run_pipelined(s, split, &gather, &chain);
        }
        Ok(x)
    }

    /// Solves `L' X' = B'` for `nrhs` right-hand sides with the
    /// pack-pipelined kernel (the multi-RHS analogue of
    /// [`ParallelSolver::solve_pipelined`]; layout matches
    /// [`StsStructure::solve_batch`]: `b[i * nrhs + r]`).
    pub fn solve_batch_pipelined(
        &self,
        s: &StsStructure,
        b: &[f64],
        nrhs: usize,
    ) -> Result<Vec<f64>> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_batch_pipelined needs at least one right-hand side".into(),
            ));
        }
        if b.len() != s.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B has length {}, expected n * nrhs = {}",
                b.len(),
                s.n() * nrhs
            )));
        }
        let mut x = vec![0.0f64; s.n() * nrhs];
        {
            let shared = SharedVec::new(&mut x);
            let split = s.split();
            let erp = split.ext_row_ptr();
            let ecols = split.ext_cols();
            let evals = split.ext_vals();
            let irp = split.int_row_ptr();
            let icols = split.int_cols();
            let ivals = split.int_vals();
            let inv_diag = split.inv_diags();
            // The aliasing argument is solve_pipelined's, with "row i1"
            // standing for the nrhs consecutive slots of row i1; the
            // register-tile accumulation mirrors solve_batch.
            const TILE: usize = 8;
            let gather = |rows: std::ops::Range<usize>| {
                for i1 in rows {
                    let base = i1 * nrhs;
                    let d = inv_diag[i1];
                    for r0 in (0..nrhs).step_by(TILE) {
                        let w = TILE.min(nrhs - r0);
                        let mut acc = [0.0f64; TILE];
                        acc[..w].copy_from_slice(&b[base + r0..base + r0 + w]);
                        for k in erp[i1]..erp[i1 + 1] {
                            let (j, v) = (ecols[k] as usize, evals[k]);
                            for (r, a) in acc[..w].iter_mut().enumerate() {
                                // SAFETY: external reads target packs the
                                // readiness wait covered (epoch edge).
                                *a -= v * unsafe { shared.read(j * nrhs + r0 + r) };
                            }
                        }
                        for (r, a) in acc[..w].iter().enumerate() {
                            // SAFETY: the nrhs slots of row i1 have exactly
                            // one phase-1 writer (this chunk).
                            unsafe { shared.write(base + r0 + r, a * d) };
                        }
                    }
                }
            };
            let chain = |p: usize, t: usize| {
                for &i1 in split.chain_rows_of(p, t) {
                    let i1 = i1 as usize;
                    let base = i1 * nrhs;
                    let d = inv_diag[i1];
                    for r0 in (0..nrhs).step_by(TILE) {
                        let w = TILE.min(nrhs - r0);
                        let mut acc = [0.0f64; TILE];
                        for (r, a) in acc[..w].iter_mut().enumerate() {
                            // SAFETY: row i1 belongs to exactly one chain
                            // task; its phase-1 values were published by the
                            // drained flag.
                            *a = unsafe { shared.read(base + r0 + r) };
                        }
                        for k in irp[i1]..irp[i1 + 1] {
                            let (j, v) = (icols[k] as usize, ivals[k]);
                            let vd = v * d;
                            for (r, a) in acc[..w].iter_mut().enumerate() {
                                // SAFETY: same-super-row reads — this task's
                                // earlier writes, or phase-1 results behind
                                // the drained flag.
                                *a -= vd * unsafe { shared.read(j * nrhs + r0 + r) };
                            }
                        }
                        for (r, a) in acc[..w].iter().enumerate() {
                            // SAFETY: row i1 is owned by this chain task.
                            unsafe { shared.write(base + r0 + r, *a) };
                        }
                    }
                }
            };
            self.run_pipelined(s, split, &gather, &chain);
        }
        Ok(x)
    }

    /// The pipelined orchestrator shared by the single- and multi-RHS
    /// kernels: one pool dispatch, per-pack completion counters instead of
    /// barriers, statically owned phase-1 chunks with readiness waits,
    /// ticket-claimed phase-2 chain tasks, and bounded gather lookahead for
    /// parked workers. `gather` runs one contiguous phase-1 row range;
    /// `chain(p, t)` runs chain task `t` of pack `p`.
    fn run_pipelined(
        &self,
        s: &StsStructure,
        split: &SplitLayout,
        gather: &(dyn Fn(std::ops::Range<usize>) + Sync),
        chain: &(dyn Fn(usize, usize) + Sync),
    ) {
        let workers = self.pool.num_threads();
        let num_packs = s.num_packs();
        if workers == 1 {
            // A single worker's program order is exactly the two-phase sweep;
            // skip the gate and ticket atomics entirely.
            for p in 0..num_packs {
                let rows = s.pack_rows(p);
                if !rows.is_empty() {
                    gather(rows);
                }
                for t in 0..split.chain_super_rows(p).len() {
                    chain(p, t);
                }
            }
            return;
        }
        // Gate arrival counts and per-chunk readiness, precomputed by the
        // calling thread (one O(n) sweep over the readiness metadata).
        let mut counts = Vec::with_capacity(num_packs);
        let mut chunk_ptr = Vec::with_capacity(num_packs + 1);
        let mut chunk_dep: Vec<u32> = Vec::new();
        chunk_ptr.push(0usize);
        for p in 0..num_packs {
            let rows = s.pack_rows(p);
            let m = rows.len();
            let nchunks = workers.min(m);
            for c in 0..nchunks {
                let chunk = rows.start + c * m / nchunks..rows.start + (c + 1) * m / nchunks;
                chunk_dep.push(split.range_ext_dep(chunk));
            }
            chunk_ptr.push(chunk_dep.len());
            counts.push((nchunks, split.chain_super_rows(p).len()));
        }
        let gate = EpochGate::new(&counts);
        let tickets: Vec<AtomicUsize> = (0..num_packs).map(|_| AtomicUsize::new(0)).collect();
        // Runs worker `w`'s phase-1 chunk of pack `p` (a no-op returning
        // `true` when the worker owns none). Non-blocking mode refuses —
        // returning `false` — instead of waiting for the chunk's readiness.
        let run_chunk = |w: usize, p: usize, blocking: bool| -> bool {
            let nchunks = chunk_ptr[p + 1] - chunk_ptr[p];
            if w < nchunks {
                let dep = chunk_dep[chunk_ptr[p] + w] as usize;
                if blocking {
                    gate.wait_open(dep);
                } else if !gate.is_open(dep) {
                    return false;
                }
                let rows = s.pack_rows(p);
                let m = rows.len();
                gather(rows.start + w * m / nchunks..rows.start + (w + 1) * m / nchunks);
                gate.arrive_phase1(p);
            }
            true
        };
        self.pool.parallel_for(workers, Schedule::Static, &|w| {
            // The next pack whose phase-1 chunk this worker still owes;
            // lookahead advances it past the pack being processed.
            let mut next_p1 = 0usize;
            for p in 0..num_packs {
                if next_p1 == p {
                    run_chunk(w, p, true);
                    next_p1 = p + 1;
                }
                let ntasks = counts[p].1;
                if ntasks == 0 {
                    continue;
                }
                let mut spins = 0u32;
                loop {
                    if !gate.phase1_drained(p) {
                        // Parked: gather ahead into the next packs instead of
                        // spinning (readiness permitting).
                        if next_p1 < num_packs
                            && next_p1 - p <= PIPELINE_LOOKAHEAD
                            && run_chunk(w, next_p1, false)
                        {
                            next_p1 += 1;
                            spins = 0;
                        } else if spins < 64 {
                            spins += 1;
                            std::hint::spin_loop();
                        } else {
                            // Possibly oversubscribed: let the stragglers run.
                            std::thread::yield_now();
                        }
                        continue;
                    }
                    let t = tickets[p].fetch_add(1, AtomicOrdering::Relaxed);
                    if t >= ntasks {
                        break;
                    }
                    chain(p, t);
                    gate.arrive_phase2(p);
                }
            }
        });
    }
}

/// How many packs past the one a worker is parked on it may gather ahead
/// into (packs `p + 1` and `p + 2`): enough to hide short chains without
/// letting fast workers run arbitrarily far from the cache-resident frontier.
const PIPELINE_LOOKAHEAD: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Method;
    use sts_matrix::{generators, ops};

    fn check_parallel_matches_sequential(
        a: &sts_matrix::CsrMatrix,
        method: Method,
        threads: usize,
        schedule: Schedule,
    ) {
        let l = generators::lower_operand(a).unwrap();
        let s = method.build(&l, 8).unwrap();
        let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let seq = s.solve_sequential(&b).unwrap();
        let solver = ParallelSolver::new(threads, schedule);
        let par = solver.solve(&s, &b).unwrap();
        assert!(
            ops::relative_error_inf(&par, &seq) < 1e-12,
            "parallel must match sequential"
        );
        assert!(ops::relative_error_inf(&par, &x_true) < 1e-10);
    }

    #[test]
    fn parallel_matches_sequential_for_all_methods() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        for method in Method::all() {
            check_parallel_matches_sequential(&a, method, 4, Schedule::Dynamic { chunk: 4 });
        }
    }

    #[test]
    fn parallel_matches_sequential_across_schedules() {
        let a = generators::grid2d_9point(13, 13).unwrap();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 32 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            check_parallel_matches_sequential(&a, Method::Sts3, 4, schedule);
        }
    }

    #[test]
    fn single_threaded_solver_works() {
        let a = generators::road_network(12, 12, 0.6, 4).unwrap();
        check_parallel_matches_sequential(&a, Method::CsrCol, 1, Schedule::Static);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let l = generators::paper_figure1_l();
        let s = Method::Sts3.build(&l, 2).unwrap();
        let b = vec![1.0; 9];
        let solver = ParallelSolver::new(8, Schedule::Guided { min_chunk: 1 });
        let x = solver.solve(&s, &b).unwrap();
        let x_ref = s.solve_sequential(&b).unwrap();
        assert!(ops::relative_error_inf(&x, &x_ref) < 1e-14);
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let l = generators::paper_figure1_l();
        let s = Method::CsrLs.build(&l, 2).unwrap();
        let solver = ParallelSolver::new(2, Schedule::Static);
        assert!(solver.solve(&s, &[1.0; 4]).is_err());
    }

    #[test]
    fn solver_is_reusable_across_structures_and_right_hand_sides() {
        let solver = ParallelSolver::new(3, Schedule::Dynamic { chunk: 2 });
        for seed in 0..3 {
            let a = generators::triangulated_grid(9, 9, seed).unwrap();
            let l = generators::lower_operand(&a).unwrap();
            let s = Method::Sts3.build(&l, 4).unwrap();
            for shift in 0..3 {
                let x_true: Vec<f64> = (0..s.n()).map(|i| (i + shift) as f64 * 0.1 + 1.0).collect();
                let b = s.lower().multiply(&x_true).unwrap();
                let x = solver.solve(&s, &b).unwrap();
                assert!(ops::relative_error_inf(&x, &x_true) < 1e-10);
            }
        }
    }

    #[test]
    fn split_solver_matches_sequential_for_all_methods_and_schedules() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
            let b = s.lower().multiply(&x_true).unwrap();
            let seq = s.solve_sequential(&b).unwrap();
            for threads in [1, 2, 4] {
                for schedule in [
                    Schedule::Static,
                    Schedule::Dynamic { chunk: 4 },
                    Schedule::Guided { min_chunk: 1 },
                ] {
                    let solver = ParallelSolver::new(threads, schedule);
                    let par = solver.solve_split(&s, &b).unwrap();
                    assert!(
                        ops::relative_error_inf(&par, &seq) < 1e-12,
                        "{} with {threads} threads diverged from sequential",
                        method.label()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_solver_matches_single_rhs_solves() {
        let a = generators::grid2d_9point(12, 12).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let n = s.n();
        let nrhs = 3;
        // Three manufactured systems, interleaved row-major.
        let mut b = vec![0.0; n * nrhs];
        let mut expected = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            let x_true: Vec<f64> = (0..n).map(|i| (i + r) as f64 * 0.1 + 1.0).collect();
            let br = s.lower().multiply(&x_true).unwrap();
            let xr = s.solve_sequential(&br).unwrap();
            for i in 0..n {
                b[i * nrhs + r] = br[i];
                expected[i * nrhs + r] = xr[i];
            }
        }
        let solver = ParallelSolver::new(3, Schedule::Guided { min_chunk: 1 });
        let x = solver.solve_batch(&s, &b, nrhs).unwrap();
        assert!(ops::relative_error_inf(&x, &expected) < 1e-12);
        let x_seq = s.solve_batch(&b, nrhs).unwrap();
        assert!(ops::relative_error_inf(&x_seq, &expected) < 1e-12);
    }

    #[test]
    fn split_solver_rejects_bad_inputs() {
        let l = generators::paper_figure1_l();
        let s = Method::CsrLs.build(&l, 2).unwrap();
        let solver = ParallelSolver::new(2, Schedule::Static);
        assert!(solver.solve_split(&s, &[1.0; 4]).is_err());
        assert!(solver.solve_batch(&s, &[1.0; 9], 0).is_err());
        assert!(solver.solve_batch(&s, &[1.0; 10], 2).is_err());
        assert!(solver.solve_pipelined(&s, &[1.0; 4]).is_err());
        assert!(solver.solve_batch_pipelined(&s, &[1.0; 9], 0).is_err());
        assert!(solver.solve_batch_pipelined(&s, &[1.0; 10], 2).is_err());
    }

    #[test]
    fn pipelined_solver_matches_sequential_for_all_methods_and_threads() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
            let b = s.lower().multiply(&x_true).unwrap();
            let seq = s.solve_sequential(&b).unwrap();
            for threads in [1, 2, 4, 8] {
                let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
                let par = solver.solve_pipelined(&s, &b).unwrap();
                assert!(
                    ops::relative_error_inf(&par, &seq) < 1e-12,
                    "{} pipelined with {threads} threads diverged from sequential",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn pipelined_solver_is_stable_under_repeated_contention() {
        // The chain-heaviest ordering (level sets) re-solved many times on an
        // oversubscribed pool: races between lookahead gathers and chain
        // corrections would show up as sporadic divergence.
        let a = generators::grid2d_laplacian(24, 24).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Csr3Ls.build(&l, 6).unwrap();
        let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 7) as f64 * 0.2).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let seq = s.solve_sequential(&b).unwrap();
        let solver = ParallelSolver::new(8, Schedule::Guided { min_chunk: 1 });
        for round in 0..50 {
            let par = solver.solve_pipelined(&s, &b).unwrap();
            assert!(
                ops::relative_error_inf(&par, &seq) < 1e-12,
                "pipelined diverged on round {round}"
            );
        }
    }

    #[test]
    fn batch_pipelined_matches_single_rhs_solves() {
        let a = generators::grid2d_9point(12, 12).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let n = s.n();
        let nrhs = 3;
        let mut b = vec![0.0; n * nrhs];
        let mut expected = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            let x_true: Vec<f64> = (0..n).map(|i| (i + r) as f64 * 0.1 + 1.0).collect();
            let br = s.lower().multiply(&x_true).unwrap();
            let xr = s.solve_sequential(&br).unwrap();
            for i in 0..n {
                b[i * nrhs + r] = br[i];
                expected[i * nrhs + r] = xr[i];
            }
        }
        for threads in [1, 3, 8] {
            let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
            let x = solver.solve_batch_pipelined(&s, &b, nrhs).unwrap();
            assert!(
                ops::relative_error_inf(&x, &expected) < 1e-12,
                "batch pipelined diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn pinned_solver_solves_correctly() {
        let topo = sts_numa::NumaTopology::detect_host();
        let order = topo.compact_core_order(2);
        let a = generators::grid2d_laplacian(10, 10).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 4).unwrap();
        let solver = ParallelSolver::with_pinning(2, Schedule::Guided { min_chunk: 1 }, &order);
        let x_true = vec![2.0; s.n()];
        let b = s.lower().multiply(&x_true).unwrap();
        let x = solver.solve(&s, &b).unwrap();
        assert!(ops::relative_error_inf(&x, &x_true) < 1e-10);
    }
}
