//! The pack-parallel triangular solver.
//!
//! For each pack, the super-rows are distributed over the worker pool with the
//! configured OpenMP-style schedule (the paper uses `dynamic,32` for the flat
//! methods and `guided,1` for the 3-level methods); the pool's completion
//! acts as the inter-pack barrier. Rows inside a super-row are solved
//! sequentially by the owning worker.
//!
//! # The two-phase split kernels
//!
//! [`ParallelSolver::solve_split`] and [`ParallelSolver::solve_batch`] run
//! each pack in two phases on the precomputed
//! [`SplitLayout`](crate::split::SplitLayout):
//!
//! 1. **external gather** — `x[i] = b[i] − Σ L_ext·x` for every row `i` of
//!    the pack, statically chunked over the workers. Every column of the
//!    external slab belongs to an *earlier* pack, so all inputs are final:
//!    rows can run in any order and any interleaving, and the slab streams
//!    contiguously (the pack's rows are consecutive);
//! 2. **internal substitution** — the short in-pack dependence chains,
//!    distributed over super-rows under the solver's configured schedule.
//!
//! This moves the bulk of the memory traffic out of the ordered critical
//! path: phase 1 is a bandwidth-bound SpMV-style sweep with perfect load
//! balance, and phase 2's critical path only walks the internal slab, which
//! is a small fraction of the nonzeros for coloring/level-set packs.
//!
//! # Data-race freedom
//!
//! The solution vector is shared mutably across workers through a small
//! `UnsafeCell`-style wrapper. For the one-phase kernel this is sound
//! because:
//!
//! * every row index is written by exactly one super-row, and every super-row
//!   is executed by exactly one worker within its pack;
//! * a row only *reads* components written either by earlier rows of the same
//!   super-row (same worker, program order) or by rows of earlier packs
//!   (separated by the pool's completion barrier, which synchronises memory);
//! * [`StsStructure::validate`] enforces exactly this dependency discipline at
//!   construction time.
//!
//! The two-phase kernels share `x` across an extra barrier, and the argument
//! extends as follows:
//!
//! * **phase 1** writes `x[i]` only for rows `i` of the current pack — each
//!   row belongs to exactly one statically-assigned chunk, so each index has
//!   one writer — and reads `x[j]` only through the external slab, whose
//!   columns `j` lie in earlier packs and were finalized before the previous
//!   pack's completion barrier;
//! * the pool's completion of phase 1 is a barrier that publishes every
//!   phase-1 write before phase 2 starts;
//! * **phase 2** writes `x[i]` for the rows of exactly one super-row per
//!   worker and reads, besides those same rows, only phase-1 results of the
//!   current pack (published by the phase barrier) through the internal
//!   slab, whose columns stay inside the writer's own super-row (same
//!   worker, program order).
//!
//! # The pack-pipelined kernels (barrier fusion)
//!
//! [`ParallelSolver::solve_pipelined`] and
//! [`ParallelSolver::solve_batch_pipelined`] run the *same* per-row
//! arithmetic as the split kernels but fuse the two full-pool barriers per
//! pack into an [`EpochGate`]: one pool dispatch covers
//! the whole solve, and workers coordinate through per-pack completion
//! counters instead of barriers. The schedule per worker `w`:
//!
//! * **phase 1** of pack `p` is statically chunked exactly as in
//!   `solve_split`, and chunk `c` is *owned* by worker `c` — ownership is a
//!   compile-time-static function of `(p, w)`, so no two workers ever write
//!   the same row;
//! * a chunk does not wait for pack `p − 1`; it waits only until the gate's
//!   epoch covers the chunk's precomputed readiness
//!   ([`SplitLayout::range_ext_dep`](crate::split::SplitLayout::range_ext_dep)
//!   — the latest pack its external slab range actually reads). Phase 1 of
//!   pack `p + 1` therefore overlaps phase 2 of pack `p` whenever the
//!   dependency structure allows;
//! * **phase 2** chain tasks of pack `p` are claimed one at a time from a
//!   shared ticket counter once the gate reports pack `p`'s phase 1 drained;
//!   a worker that finds no ticket left moves straight on to its phase-1
//!   chunk of pack `p + 1`. While phase 1 of pack `p` is still draining, a
//!   parked worker *looks ahead*: it runs its chunks of packs `p + 1` and
//!   `p + 2` (readiness permitting) instead of spinning.
//!
//! ## Memory-ordering argument (which flag publishes which `x` entries)
//!
//! Data-race freedom needs every read of `x[j]` to happen-after the write it
//! observes. The gate provides exactly two publication edges:
//!
//! * **`is_open(d)` / `wait_open(d)`** (epoch ≥ `d`) happens-after *every*
//!   arrival of packs `0..d` — both phases — via the release sequences on the
//!   gate's per-pack counters and the release CAS chain on the epoch. A
//!   phase-1 chunk with readiness `d` reads `x[j]` only for external columns
//!   `j` in packs `< d`, each finalized (phase-1 write, plus phase-2
//!   correction for chain rows) before its pack's last arrival. The chunk
//!   runs behind `wait_open(d)`, so all those entries are published to it.
//! * **`phase1_drained(p)`** happens-after every phase-1 arrival of pack `p`.
//!   A phase-2 task reads `x[j]` only for internal columns `j` of its own
//!   super-row (phase-1 values published by the drained flag, or its own
//!   earlier chain-row corrections in program order) and corrects rows owned
//!   by no other task. Its writes are in turn published to later packs by
//!   its `arrive_phase2` and the epoch edge above.
//!
//! Lookahead never weakens this: a worker running a chunk of pack `p + 2`
//! early still passed that chunk's own readiness check, and writes only rows
//! of pack `p + 2`, which no other worker touches until the epoch covers
//! `p + 2` — which cannot happen before the chunk's own arrival.
//!
//! # The transpose (backward-sweep) kernels
//!
//! [`ParallelSolver::solve_transpose_split`] and
//! [`ParallelSolver::solve_transpose_pipelined`] run the upper-triangular
//! system `L'ᵀ x' = b'` with the *same* two-phase / pipelined machinery over
//! the packs in **reverse order**. The correctness argument (see
//! [`TransposeLayout`](crate::transpose::TransposeLayout) for the full
//! statement) is the mirror image of the forward one: in `L'ᵀ`, row `i`
//! reads only rows `j > i`, and pack independence puts every such
//! cross-super-row `j` in a strictly *later* pack — already finished when
//! the reverse sweep reaches `i`'s pack — while same-pack reads stay inside
//! `i`'s own super-row and run as phase-2 chains in decreasing row order.
//! The pipelined orchestrator is direction-agnostic: it walks *stages*, and
//! a [`PipelinePlan`] binds stage `s` to pack `s` (forward) or pack
//! `num_packs − 1 − s` (backward) with readiness metadata stamped in the
//! matching stage numbering. The epoch-gate memory-ordering argument above
//! carries over verbatim with "pack" read as "stage".
//!
//! # Reusable plans and the `_into` kernels
//!
//! Iterative solvers apply these kernels thousands of times on one
//! structure. The `solve_*_into` variants take a caller-provided solution
//! buffer plus a [`PipelinePlan`] — the per-solve scheduling state (gate
//! arrival counts, per-chunk readiness, phase-2 ticket counters) built once
//! by [`ParallelSolver::plan`] / [`ParallelSolver::plan_transpose`] and
//! rewound between solves via the gate's generation-stamped
//! [`reset`](sts_numa::EpochGate::reset) — so a solve performs **no heap
//! allocation**. `&mut` on the plan is what makes the reset sound: the
//! borrow checker guarantees no concurrent solve shares the scheduling
//! state.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sts_matrix::{CsrMatrix, MatrixError};
use sts_numa::{EpochGate, GateWait, PoolError, Schedule, WorkerPool};
use sts_trace::{Phase, SpanRecorder};
use sts_verify::TaskKind;

use crate::csrk::{Result, StsStructure};
use crate::options::{PrecisionPolicy, SlabValue, SolveEngine, SolveOptions, SweepDirection};

/// Maps a pool-level failure into the matrix error taxonomy the solver
/// surfaces.
pub(crate) fn pool_error_to_matrix(e: PoolError) -> MatrixError {
    match e {
        PoolError::WorkerPanicked {
            slot,
            pack,
            message,
        } => MatrixError::WorkerPanicked {
            slot,
            pack,
            message,
        },
    }
}

/// Stringifies a caught panic payload for error reporting.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A hook the fault-injection harness installs to perturb worker `w` at
/// stage/pack `st` of a parallel kernel (panic, stall, …). Runs inside the
/// kernel's `catch_unwind` region, so a panicking hook behaves exactly like a
/// panicking kernel body.
pub type ChaosHook = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// Shared failure record of one pipelined dispatch: the first panic and the
/// first watchdog timeout, whichever workers hit them.
pub(crate) struct KernelFailure {
    panic: Mutex<Option<(usize, usize, String)>>,
    timeout_stage: AtomicUsize,
}

impl KernelFailure {
    pub(crate) fn new() -> Self {
        KernelFailure {
            panic: Mutex::new(None),
            timeout_stage: AtomicUsize::new(usize::MAX),
        }
    }

    pub(crate) fn record_panic(&self, slot: usize, pack: usize, message: String) {
        if let Ok(mut guard) = self.panic.lock() {
            if guard.is_none() {
                *guard = Some((slot, pack, message));
            }
        }
    }

    pub(crate) fn record_timeout(&self, stage: usize) {
        let _ = self.timeout_stage.compare_exchange(
            usize::MAX,
            stage,
            AtomicOrdering::Relaxed,
            AtomicOrdering::Relaxed,
        );
    }

    /// Resolves the dispatch outcome; a recorded panic outranks a timeout
    /// (the timeout is usually collateral of the panic's poisoning).
    pub(crate) fn into_result(self, timeout_ms: u64) -> Result<()> {
        if let Ok(mut guard) = self.panic.lock() {
            if let Some((slot, pack, message)) = guard.take() {
                return Err(MatrixError::WorkerPanicked {
                    slot,
                    pack,
                    message,
                });
            }
        }
        match self.timeout_stage.load(AtomicOrdering::Relaxed) {
            usize::MAX => Ok(()),
            stage => Err(MatrixError::SolveTimeout { stage, timeout_ms }),
        }
    }
}

/// Default watchdog budget for one pipelined dispatch; generous enough that
/// no healthy solve on any matrix in the suite comes near it.
pub(crate) const DEFAULT_WATCHDOG_MS: u64 = 10_000;

/// Shared mutable solution vector; see the module documentation for the
/// aliasing discipline that makes this sound.
pub(crate) struct SharedVec {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: the wrapper only forwards raw-pointer accesses; every dereference
// goes through the unsafe methods below, whose contracts require the caller
// to provide the per-slot single-writer discipline argued in the module docs.
unsafe impl Sync for SharedVec {}

impl SharedVec {
    /// Wraps a vector for shared mutable access; the vector must outlive every
    /// use of the wrapper.
    pub(crate) fn new(v: &mut [f64]) -> Self {
        SharedVec {
            ptr: v.as_mut_ptr(),
            len: v.len(),
        }
    }

    /// # Safety
    /// Caller must guarantee the index is in bounds and not concurrently
    /// accessed by another thread.
    pub(crate) unsafe fn write(&self, idx: usize, value: f64) {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = value;
    }

    /// # Safety
    /// Caller must guarantee the index is in bounds and not concurrently
    /// written by another thread.
    pub(crate) unsafe fn read(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx)
    }

    /// Exclusive view of the `len` slots starting at `start`.
    ///
    /// # Safety
    /// Caller must guarantee the range is in bounds and that no other thread
    /// reads or writes any slot of the range for the lifetime of the
    /// returned slice (the level-scheduled factorization's per-row
    /// ownership discipline provides exactly this).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [f64] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

/// A reusable parallel solver bound to a worker pool.
pub struct ParallelSolver {
    pool: WorkerPool,
    schedule: Schedule,
    /// Watchdog budget for one pipelined dispatch, in milliseconds: gate
    /// waits past this deadline poison the gate and surface as
    /// [`MatrixError::SolveTimeout`].
    watchdog_ms: u64,
    /// Optional fault-injection hook; see [`ChaosHook`].
    chaos: Option<ChaosHook>,
    /// Optional span recorder; see [`ParallelSolver::set_trace_recorder`].
    trace: Option<Arc<SpanRecorder>>,
    /// Optional race-shadow access log; see
    /// [`ParallelSolver::set_shadow_log`].
    #[cfg(feature = "race-shadow")]
    shadow: Option<Arc<sts_verify::AccessLog>>,
}

impl ParallelSolver {
    /// Creates a solver that runs on `threads` unpinned workers with the given
    /// intra-pack schedule.
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        ParallelSolver {
            pool: WorkerPool::new(threads),
            schedule,
            watchdog_ms: DEFAULT_WATCHDOG_MS,
            chaos: None,
            trace: None,
            #[cfg(feature = "race-shadow")]
            shadow: None,
        }
    }

    /// Creates a solver whose workers are pinned to the given core order
    /// (typically [`NumaTopology::compact_core_order`]).
    ///
    /// [`NumaTopology::compact_core_order`]:
    ///     sts_numa::NumaTopology::compact_core_order
    pub fn with_pinning(threads: usize, schedule: Schedule, core_order: &[usize]) -> Self {
        ParallelSolver {
            pool: WorkerPool::with_pinning(threads, core_order),
            schedule,
            watchdog_ms: DEFAULT_WATCHDOG_MS,
            chaos: None,
            trace: None,
            #[cfg(feature = "race-shadow")]
            shadow: None,
        }
    }

    /// Sets the watchdog deadline of the pipelined kernels: a gate wait that
    /// exceeds this budget (counted from dispatch start) poisons the gate and
    /// the solve returns [`MatrixError::SolveTimeout`] instead of hanging
    /// behind a stalled worker. A stalled worker that is still *running* (as
    /// opposed to dead) is waited out before the error returns, so the caller
    /// regains control after roughly `max(stall, timeout)`, not `timeout`.
    /// Budgets below 1 ms are clamped up to 1 ms.
    pub fn set_watchdog(&mut self, budget: Duration) {
        self.watchdog_ms = (budget.as_millis() as u64).max(1);
    }

    /// The current watchdog budget of the pipelined kernels.
    pub fn watchdog(&self) -> Duration {
        Duration::from_millis(self.watchdog_ms)
    }

    /// Installs (or clears) a fault-injection hook invoked as `hook(w, st)`
    /// when worker `w` starts the phase-1 unit of stage/pack `st` in the
    /// pipelined kernels and the level-scheduled factorization. Test support:
    /// a hook that panics or stalls exercises the failure paths
    /// deterministically.
    pub fn set_chaos_hook(&mut self, hook: Option<ChaosHook>) {
        self.chaos = hook;
    }

    /// Installs (or clears) a span recorder fed by the parallel kernels:
    /// phase-1 gather chunks ([`Phase::Gather`]), phase-2 chain tasks
    /// ([`Phase::Chain`]), blocking epoch-gate waits ([`Phase::GateWait`])
    /// in the pipelined kernels, and level-scheduled IC(0) chunks
    /// ([`Phase::Factor`]).
    ///
    /// The recorder's enabled flag is sampled once per solve, so an
    /// installed-but-disabled recorder costs one `Option` check per kernel
    /// dispatch (`bench_smoke` measures this configuration and the CI gate
    /// bounds it below 2% of a PCG solve). The `worker` field of a span is
    /// the pool slot for the pipelined kernels and the static phase-1
    /// chunks; for `solve_split`'s dynamically scheduled phase-2 it carries
    /// the chain-task index instead (the pool does not expose which slot
    /// claimed a task). The `pack` field is the *stage* index: identical to
    /// the pack for forward sweeps, reversed for transpose sweeps.
    pub fn set_trace_recorder(&mut self, recorder: Option<Arc<SpanRecorder>>) {
        self.trace = recorder;
    }

    /// The installed span recorder, if any.
    pub fn trace_recorder(&self) -> Option<&Arc<SpanRecorder>> {
        self.trace.as_ref()
    }

    /// Installs (or clears) a race-shadow access log: the split, pipelined
    /// and factor kernels record one [`sts_verify::RowTrace`] per produced
    /// row (the exact shared slots the inner loop read), so
    /// [`sts_verify::check_replay`] can cross-check the static schedule
    /// model against what the kernels really touch. Test support: recording
    /// serialises on the log's mutex.
    #[cfg(feature = "race-shadow")]
    pub fn set_shadow_log(&mut self, log: Option<Arc<sts_verify::AccessLog>>) {
        self.shadow = log;
    }

    /// Records one produced row into the race-shadow log, if installed.
    #[cfg(feature = "race-shadow")]
    #[inline]
    pub(crate) fn shadow_record(
        &self,
        kind: sts_verify::TaskKind,
        row: usize,
        reads: impl IntoIterator<Item = usize>,
    ) {
        if let Some(log) = self.shadow.as_deref() {
            log.record(kind, row, reads);
        }
    }

    /// No-op twin of the `race-shadow` recorder: the lazy `reads` iterator is
    /// never consumed, so release kernels pay nothing.
    #[cfg(not(feature = "race-shadow"))]
    #[inline(always)]
    pub(crate) fn shadow_record(
        &self,
        _kind: sts_verify::TaskKind,
        _row: usize,
        _reads: impl IntoIterator<Item = usize>,
    ) {
    }

    /// The recorder to feed during one kernel dispatch: installed *and*
    /// enabled (sampled once, so the per-span cost is only paid when spans
    /// are actually wanted).
    pub(crate) fn active_recorder(&self) -> Option<&SpanRecorder> {
        self.trace.as_deref().filter(|r| r.is_enabled())
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The underlying worker pool (crate-internal: the level-scheduled
    /// factorization kernel dispatches on it).
    pub(crate) fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The installed chaos hook, if any (crate-internal: the level-scheduled
    /// factorization invokes it per `(worker, pack)` exactly like the
    /// pipelined kernels do).
    pub(crate) fn chaos_hook(&self) -> Option<&ChaosHook> {
        self.chaos.as_ref()
    }

    /// The intra-pack schedule in use.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Solves a triangular system described by a typed [`SolveOptions`]
    /// request — the single entry behind the named `solve_*` methods.
    ///
    /// The request selects the engine ([`SolveEngine`]), sweep direction
    /// ([`SweepDirection`]), batch width (`nrhs`, interleaved layout
    /// `b[i * nrhs + r]`) and value-slab precision ([`PrecisionPolicy`]).
    /// Every named entry (`solve`, `solve_split`, `solve_batch`,
    /// `solve_pipelined`, …) is a thin wrapper over this method and remains
    /// bitwise identical to its pre-`SolveOptions` behaviour; f64
    /// monomorphizations of the precision-generic kernels perform the exact
    /// same arithmetic as the original fixed-precision code.
    ///
    /// Mixed-precision requests ([`PrecisionPolicy::ValuesF32WithRefinement`])
    /// read the lazily demoted f32 value slabs but accumulate every partial
    /// product in f64; the sweep alone is accurate to roughly single
    /// precision, and callers needing f64 accuracy wrap it in iterative
    /// refinement (`sts-krylov`'s refinement driver does this).
    ///
    /// # Errors
    ///
    /// Combinations without a kernel return
    /// [`MatrixError::InvalidParameter`]: the unsplit [`SolveEngine::Parallel`]
    /// engine only supports forward single-RHS f64 solves, and the split
    /// engine has no transpose batch kernel (use the pipelined engine).
    /// `nrhs == 0` or a right-hand side whose length is not `n * nrhs`
    /// returns [`MatrixError::DimensionMismatch`].
    pub fn solve_with(&self, s: &StsStructure, b: &[f64], opts: &SolveOptions) -> Result<Vec<f64>> {
        let nrhs = opts.nrhs;
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_with needs at least one right-hand side".into(),
            ));
        }
        if b.len() != s.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B has length {}, expected n * nrhs = {}",
                b.len(),
                s.n() * nrhs
            )));
        }
        let f32_vals = opts.precision == PrecisionPolicy::ValuesF32WithRefinement;
        match opts.engine {
            SolveEngine::Sequential => {
                let mut x = vec![0.0f64; s.n() * nrhs];
                match (opts.direction, nrhs, f32_vals) {
                    (SweepDirection::Forward, 1, false) => {
                        s.solve_sequential_split_into(b, &mut x)?
                    }
                    (SweepDirection::Forward, 1, true) => {
                        s.solve_sequential_split_f32_into(b, &mut x)?
                    }
                    (SweepDirection::Forward, _, false) => {
                        s.solve_batch_sequential_split_into(b, &mut x, nrhs)?
                    }
                    (SweepDirection::Forward, _, true) => {
                        s.solve_batch_sequential_split_f32_into(b, &mut x, nrhs)?
                    }
                    (SweepDirection::Transpose, 1, false) => {
                        s.solve_transpose_sequential_split_into(b, &mut x)?
                    }
                    (SweepDirection::Transpose, 1, true) => {
                        s.solve_transpose_sequential_split_f32_into(b, &mut x)?
                    }
                    (SweepDirection::Transpose, _, false) => {
                        s.solve_transpose_batch_sequential_split_into(b, &mut x, nrhs)?
                    }
                    (SweepDirection::Transpose, _, true) => {
                        s.solve_transpose_batch_sequential_split_f32_into(b, &mut x, nrhs)?
                    }
                }
                Ok(x)
            }
            SolveEngine::Parallel => {
                if opts.direction != SweepDirection::Forward || nrhs != 1 || f32_vals {
                    return Err(MatrixError::InvalidParameter(
                        "the unsplit parallel engine supports only forward single-RHS f64 \
                         solves; use the split or pipelined engine"
                            .into(),
                    ));
                }
                self.solve_unsplit(s, b)
            }
            SolveEngine::Split => match opts.direction {
                SweepDirection::Forward => {
                    let split = s.split();
                    match (nrhs, f32_vals) {
                        (1, false) => {
                            self.solve_split_generic(s, b, split.ext_vals(), split.int_vals())
                        }
                        (1, true) => self.solve_split_generic(
                            s,
                            b,
                            split.ext_vals_f32(),
                            split.int_vals_f32(),
                        ),
                        (_, false) => {
                            self.solve_batch_generic(s, b, nrhs, split.ext_vals(), split.int_vals())
                        }
                        (_, true) => self.solve_batch_generic(
                            s,
                            b,
                            nrhs,
                            split.ext_vals_f32(),
                            split.int_vals_f32(),
                        ),
                    }
                }
                SweepDirection::Transpose => {
                    if nrhs != 1 {
                        return Err(MatrixError::InvalidParameter(
                            "the split engine has no transpose batch kernel; use the \
                             pipelined engine"
                                .into(),
                        ));
                    }
                    let ts = s.transpose_split();
                    if f32_vals {
                        self.solve_transpose_split_generic(
                            s,
                            b,
                            ts.ext_vals_f32(),
                            ts.int_vals_f32(),
                        )
                    } else {
                        self.solve_transpose_split_generic(s, b, ts.ext_vals(), ts.int_vals())
                    }
                }
            },
            SolveEngine::Pipelined => {
                let mut x = vec![0.0f64; s.n() * nrhs];
                match opts.direction {
                    SweepDirection::Forward => {
                        let mut plan = self.plan(s);
                        match (nrhs, f32_vals) {
                            (1, false) => self.solve_pipelined_into(s, &mut plan, b, &mut x)?,
                            (1, true) => self.solve_pipelined_f32_into(s, &mut plan, b, &mut x)?,
                            (_, false) => {
                                self.solve_batch_pipelined_into(s, &mut plan, b, &mut x, nrhs)?
                            }
                            (_, true) => {
                                self.solve_batch_pipelined_f32_into(s, &mut plan, b, &mut x, nrhs)?
                            }
                        }
                    }
                    SweepDirection::Transpose => {
                        let mut plan = self.plan_transpose(s);
                        match (nrhs, f32_vals) {
                            (1, false) => {
                                self.solve_transpose_pipelined_into(s, &mut plan, b, &mut x)?
                            }
                            (1, true) => {
                                self.solve_transpose_pipelined_f32_into(s, &mut plan, b, &mut x)?
                            }
                            (_, false) => self.solve_transpose_batch_pipelined_into(
                                s, &mut plan, b, &mut x, nrhs,
                            )?,
                            (_, true) => self.solve_transpose_batch_pipelined_f32_into(
                                s, &mut plan, b, &mut x, nrhs,
                            )?,
                        }
                    }
                }
                Ok(x)
            }
        }
    }

    /// Solves the reordered system `L' x' = b'` in parallel and returns `x'`.
    ///
    /// Named wrapper over [`ParallelSolver::solve_with`] with
    /// [`SolveEngine::Parallel`] (the unsplit barrier-per-pack kernel);
    /// output is bitwise identical to the pre-`SolveOptions` entry.
    pub fn solve(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default().with_engine(SolveEngine::Parallel),
        )
    }

    /// The unsplit barrier-per-pack kernel behind [`SolveEngine::Parallel`].
    fn solve_unsplit(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                s.n()
            )));
        }
        let mut x = vec![0.0f64; s.n()];
        {
            let shared = SharedVec::new(&mut x);
            let l = s.lower();
            let row_ptr = l.row_ptr();
            let col_idx = l.col_idx();
            let values = l.values();
            for p in 0..s.num_packs() {
                let pack = s.pack_super_rows(p);
                let first_super_row = pack.start;
                let pack_len = pack.len();
                self.pool
                    .parallel_for(pack_len, self.schedule, &|t| {
                        let sr = first_super_row + t;
                        for i1 in s.super_row_rows(sr) {
                            let start = row_ptr[i1];
                            let end = row_ptr[i1 + 1];
                            let mut acc = 0.0;
                            for k in start..end - 1 {
                                // SAFETY: column k refers either to an earlier pack
                                // (completed before this pack started) or to an
                                // earlier row of this same super-row (written by
                                // this worker earlier in this closure).
                                acc += values[k] * unsafe { shared.read(col_idx[k]) };
                            }
                            // SAFETY: row i1 belongs to exactly one super-row,
                            // executed by exactly one worker.
                            unsafe { shared.write(i1, (b[i1] - acc) / values[end - 1]) };
                        }
                    })
                    .map_err(pool_error_to_matrix)?;
            }
        }
        Ok(x)
    }

    /// Solves `L' x' = b'` with the two-phase split kernel (see the module
    /// documentation): per pack, a statically-chunked external gather over
    /// the rows, a phase barrier, then the internal substitution over the
    /// super-rows under the configured schedule.
    ///
    /// Named wrapper over [`ParallelSolver::solve_with`] with
    /// [`SolveEngine::Split`]; output is bitwise identical to the
    /// pre-`SolveOptions` entry.
    pub fn solve_split(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default().with_engine(SolveEngine::Split),
        )
    }

    /// [`ParallelSolver::solve_split`] reading the f32 value slabs
    /// (accumulation stays f64; see [`PrecisionPolicy`]).
    pub fn solve_split_f32(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default()
                .with_engine(SolveEngine::Split)
                .with_precision(PrecisionPolicy::ValuesF32WithRefinement),
        )
    }

    /// The two-phase split kernel, generic over the value-slab precision:
    /// `evals`/`ivals` are the external/internal slabs of `s.split()` in
    /// either width, and every partial product is accumulated in f64.
    fn solve_split_generic<V: SlabValue>(
        &self,
        s: &StsStructure,
        b: &[f64],
        evals: &[V],
        ivals: &[V],
    ) -> Result<Vec<f64>> {
        if b.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                s.n()
            )));
        }
        let mut x = vec![0.0f64; s.n()];
        {
            let shared = SharedVec::new(&mut x);
            let split = s.split();
            let erp = split.ext_row_ptr();
            let ecols = split.ext_cols();
            let irp = split.int_row_ptr();
            let icols = split.int_cols();
            let inv_diag = split.inv_diags();
            let workers = self.pool.num_threads();
            let rec = self.active_recorder();
            for p in 0..s.num_packs() {
                let rows = s.pack_rows(p);
                let first_row = rows.start;
                let m = rows.len();
                // Phase 1: external gather with the diagonal scale folded in,
                // statically chunked — one contiguous block of rows (and one
                // contiguous slab range) per worker, one dispatch per worker.
                // Rows without internal entries are final after this sweep.
                let nchunks = workers.min(m);
                self.pool
                    .parallel_for(nchunks, Schedule::Static, &|c| {
                        let t0 = rec.map(|r| r.now_ns());
                        let chunk_start = first_row + c * m / nchunks;
                        let chunk_end = first_row + (c + 1) * m / nchunks;
                        for i1 in chunk_start..chunk_end {
                            let mut acc = 0.0;
                            for k in erp[i1]..erp[i1 + 1] {
                                // SAFETY: external columns belong to earlier
                                // packs, finalized before this pack's first
                                // barrier.
                                acc +=
                                    evals[k].to_f64() * unsafe { shared.read(ecols[k] as usize) };
                            }
                            // SAFETY: row i1 is written by exactly one phase-1
                            // chunk.
                            unsafe { shared.write(i1, (b[i1] - acc) * inv_diag[i1]) };
                            self.shadow_record(
                                TaskKind::Gather,
                                i1,
                                ecols[erp[i1]..erp[i1 + 1]].iter().map(|&j| j as usize),
                            );
                        }
                        if let Some(r) = rec {
                            r.record(
                                c as u32,
                                p as u32,
                                Phase::Gather,
                                t0.unwrap_or(0),
                                r.now_ns(),
                            );
                        }
                    })
                    .map_err(pool_error_to_matrix)?;
                // Phase 2: internal substitution along the super-row chains.
                // Only the precomputed chain tasks are dispatched, and each
                // task visits only its chain rows; chain-free packs skip the
                // phase (and its barrier) entirely.
                let chain = split.chain_super_rows(p);
                if chain.is_empty() {
                    continue;
                }
                self.pool
                    .parallel_for(chain.len(), self.schedule, &|t| {
                        let t0 = rec.map(|r| r.now_ns());
                        for &i1 in split.chain_rows_of(p, t) {
                            let i1 = i1 as usize;
                            let mut acc = 0.0;
                            for k in irp[i1]..irp[i1 + 1] {
                                // SAFETY: internal columns stay inside this
                                // super-row — written earlier by this worker if
                                // they are chain rows, published by the phase
                                // barrier otherwise.
                                acc +=
                                    ivals[k].to_f64() * unsafe { shared.read(icols[k] as usize) };
                            }
                            // SAFETY: row i1 belongs to exactly one chain task;
                            // its phase-1 value was published by the barrier.
                            let partial = unsafe { shared.read(i1) };
                            unsafe { shared.write(i1, partial - acc * inv_diag[i1]) };
                            // The recorded reads: the internal columns plus
                            // the re-read of the row's own phase-1 partial.
                            self.shadow_record(
                                TaskKind::Chain,
                                i1,
                                (irp[i1]..irp[i1 + 1])
                                    .map(|k| icols[k] as usize)
                                    .chain(std::iter::once(i1)),
                            );
                        }
                        if let Some(r) = rec {
                            // The pool does not expose which slot claimed a
                            // dynamically scheduled task, so the worker field
                            // carries the chain-task index here.
                            r.record(
                                t as u32,
                                p as u32,
                                Phase::Chain,
                                t0.unwrap_or(0),
                                r.now_ns(),
                            );
                        }
                    })
                    .map_err(pool_error_to_matrix)?;
            }
        }
        Ok(x)
    }

    /// Solves `L' X' = B'` for `nrhs` right-hand sides with the two-phase
    /// split kernel, amortising each `(col, val)` load over the whole batch.
    /// Layout matches [`StsStructure::solve_batch`]: `b[i * nrhs + r]`.
    ///
    /// Named wrapper over [`ParallelSolver::solve_with`] with
    /// [`SolveEngine::Split`] and the given batch width; output is bitwise
    /// identical to the pre-`SolveOptions` entry.
    pub fn solve_batch(&self, s: &StsStructure, b: &[f64], nrhs: usize) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default()
                .with_engine(SolveEngine::Split)
                .with_nrhs(nrhs),
        )
    }

    /// The two-phase split batch kernel, generic over the value-slab
    /// precision (accumulation stays f64).
    fn solve_batch_generic<V: SlabValue>(
        &self,
        s: &StsStructure,
        b: &[f64],
        nrhs: usize,
        evals: &[V],
        ivals: &[V],
    ) -> Result<Vec<f64>> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_batch needs at least one right-hand side".into(),
            ));
        }
        if b.len() != s.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B has length {}, expected n * nrhs = {}",
                b.len(),
                s.n() * nrhs
            )));
        }
        let mut x = vec![0.0f64; s.n() * nrhs];
        {
            let shared = SharedVec::new(&mut x);
            let split = s.split();
            let erp = split.ext_row_ptr();
            let ecols = split.ext_cols();
            let irp = split.int_row_ptr();
            let icols = split.int_cols();
            let inv_diag = split.inv_diags();
            // The aliasing argument is identical to solve_split's, with "row
            // i1" standing for the nrhs consecutive slots of row i1.
            let workers = self.pool.num_threads();
            for p in 0..s.num_packs() {
                let rows = s.pack_rows(p);
                let first_row = rows.start;
                let m = rows.len();
                let nchunks = workers.min(m);
                // Rows are exclusively owned by their chunk/task, so each
                // row's partial sums accumulate in a stack-local tile
                // (registers, no round-trips through the shared pointer) and
                // are written back once; right-hand sides beyond the tile
                // width are processed in further passes over the row.
                const TILE: usize = 8;
                self.pool
                    .parallel_for(nchunks, Schedule::Static, &|c| {
                        let chunk_start = first_row + c * m / nchunks;
                        let chunk_end = first_row + (c + 1) * m / nchunks;
                        for i1 in chunk_start..chunk_end {
                            let base = i1 * nrhs;
                            let d = inv_diag[i1];
                            for r0 in (0..nrhs).step_by(TILE) {
                                let w = TILE.min(nrhs - r0);
                                let mut acc = [0.0f64; TILE];
                                acc[..w].copy_from_slice(&b[base + r0..base + r0 + w]);
                                for k in erp[i1]..erp[i1 + 1] {
                                    let (j, v) = (ecols[k] as usize, evals[k].to_f64());
                                    for (r, a) in acc[..w].iter_mut().enumerate() {
                                        // SAFETY: as in solve_split, reads target
                                        // earlier packs, finalized before this
                                        // pack's first barrier.
                                        *a -= v * unsafe { shared.read(j * nrhs + r0 + r) };
                                    }
                                }
                                for (r, a) in acc[..w].iter().enumerate() {
                                    // SAFETY: the nrhs slots of row i1 have
                                    // exactly one phase-1 writer (this chunk).
                                    unsafe { shared.write(base + r0 + r, a * d) };
                                }
                            }
                        }
                    })
                    .map_err(pool_error_to_matrix)?;
                let chain = split.chain_super_rows(p);
                if chain.is_empty() {
                    continue;
                }
                self.pool
                    .parallel_for(chain.len(), self.schedule, &|t| {
                        for &i1 in split.chain_rows_of(p, t) {
                            let i1 = i1 as usize;
                            let base = i1 * nrhs;
                            let d = inv_diag[i1];
                            for r0 in (0..nrhs).step_by(TILE) {
                                let w = TILE.min(nrhs - r0);
                                let mut acc = [0.0f64; TILE];
                                for (r, a) in acc[..w].iter_mut().enumerate() {
                                    // SAFETY: row i1 belongs to exactly one chain
                                    // task; its phase-1 values were published by
                                    // the barrier.
                                    *a = unsafe { shared.read(base + r0 + r) };
                                }
                                for k in irp[i1]..irp[i1 + 1] {
                                    let (j, v) = (icols[k] as usize, ivals[k].to_f64());
                                    let vd = v * d;
                                    for (r, a) in acc[..w].iter_mut().enumerate() {
                                        // SAFETY: same-super-row reads — this
                                        // worker's earlier writes, or phase-1
                                        // results published by the barrier.
                                        *a -= vd * unsafe { shared.read(j * nrhs + r0 + r) };
                                    }
                                }
                                for (r, a) in acc[..w].iter().enumerate() {
                                    // SAFETY: row i1 is owned by this chain task.
                                    unsafe { shared.write(base + r0 + r, *a) };
                                }
                            }
                        }
                    })
                    .map_err(pool_error_to_matrix)?;
            }
        }
        Ok(x)
    }

    /// Builds the reusable pipelined-scheduling state for `s` in the given
    /// direction (one O(n) sweep over the readiness metadata, forcing the
    /// corresponding lazy layout).
    fn build_plan(&self, s: &StsStructure, forward: bool) -> PipelinePlan {
        let workers = self.pool.num_threads();
        let num_packs = s.num_packs();
        let mut stage_rows = Vec::with_capacity(num_packs);
        let mut ntasks = Vec::with_capacity(num_packs);
        let mut counts = Vec::with_capacity(num_packs);
        let mut chunk_ptr = Vec::with_capacity(num_packs + 1);
        let mut chunk_dep: Vec<u32> = Vec::new();
        chunk_ptr.push(0usize);
        for st in 0..num_packs {
            let p = if forward { st } else { num_packs - 1 - st };
            let rows = s.pack_rows(p);
            let m = rows.len();
            let nchunks = workers.min(m);
            for c in 0..nchunks {
                let chunk = rows.start + c * m / nchunks..rows.start + (c + 1) * m / nchunks;
                chunk_dep.push(if forward {
                    s.split().range_ext_dep(chunk)
                } else {
                    s.transpose_split().range_ext_dep(chunk)
                });
            }
            chunk_ptr.push(chunk_dep.len());
            let nt = if forward {
                s.split().chain_super_rows(p).len()
            } else {
                s.transpose_split().chain_super_rows(p).len()
            };
            counts.push((nchunks, nt));
            ntasks.push(nt);
            stage_rows.push(rows);
        }
        PipelinePlan {
            forward,
            n: s.n(),
            threads: workers,
            stage_rows,
            ntasks,
            chunk_ptr,
            chunk_dep,
            gate: EpochGate::new(&counts),
            tickets: (0..num_packs).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Builds a reusable [`PipelinePlan`] for forward pipelined solves on
    /// `s` (`solve_pipelined_into` / `solve_batch_pipelined_into`). Build it
    /// once per structure; the `_into` kernels rewind it between solves at
    /// no allocation cost.
    pub fn plan(&self, s: &StsStructure) -> PipelinePlan {
        self.build_plan(s, true)
    }

    /// Builds a reusable [`PipelinePlan`] for backward (transpose) pipelined
    /// solves on `s` (`solve_transpose_pipelined_into` /
    /// `solve_transpose_batch_pipelined_into`).
    pub fn plan_transpose(&self, s: &StsStructure) -> PipelinePlan {
        self.build_plan(s, false)
    }

    /// Checks that a plan was built by this solver for this structure and
    /// direction. Dimensions, stage → row-range bindings and chain-task
    /// counts are verified on every call (O(num_packs + chunks)), because a
    /// stale plan would hand the gather closures row ranges that race the
    /// structure's own chain tasks through [`SharedVec`]; the per-chunk
    /// readiness values — a pure function of the (already matched) pack
    /// boundaries and the operand's pattern — are re-derived and compared in
    /// debug builds.
    fn check_plan(&self, s: &StsStructure, plan: &PipelinePlan, forward: bool) -> Result<()> {
        let num_packs = s.num_packs();
        let mut consistent = plan.forward == forward
            && plan.n == s.n()
            && plan.stage_rows.len() == num_packs
            && plan.threads == self.pool.num_threads();
        if consistent {
            for st in 0..num_packs {
                let p = if forward { st } else { num_packs - 1 - st };
                let ntasks = if forward {
                    s.split().chain_super_rows(p).len()
                } else {
                    s.transpose_split().chain_super_rows(p).len()
                };
                if plan.stage_rows[st] != s.pack_rows(p) || plan.ntasks[st] != ntasks {
                    consistent = false;
                    break;
                }
            }
        }
        if !consistent {
            return Err(MatrixError::InvalidParameter(format!(
                "pipeline plan mismatch: plan is {} over {} stages for n = {} on {} threads and \
                 must have been built from this exact structure, kernel needs {} over {} stages \
                 for n = {} on {} threads",
                if plan.forward { "forward" } else { "backward" },
                plan.stage_rows.len(),
                plan.n,
                plan.threads,
                if forward { "forward" } else { "backward" },
                num_packs,
                s.n(),
                self.pool.num_threads(),
            )));
        }
        #[cfg(debug_assertions)]
        {
            let fresh = self.build_plan(s, forward);
            debug_assert_eq!(
                fresh.chunk_dep, plan.chunk_dep,
                "plan readiness metadata is stale for this structure"
            );
        }
        Ok(())
    }

    /// Solves `L' x' = b'` with the pack-pipelined kernel: same arithmetic as
    /// [`ParallelSolver::solve_split`], but the per-pack phase barriers are
    /// fused into an [`EpochGate`] so phase 1 of later packs overlaps phase 2
    /// of earlier ones (see the module documentation). One pool dispatch
    /// covers the whole solve.
    ///
    /// Named wrapper over [`ParallelSolver::solve_with`] with the default
    /// [`SolveEngine::Pipelined`]; output is bitwise identical to the
    /// pre-`SolveOptions` entry.
    pub fn solve_pipelined(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(s, b, &SolveOptions::default())
    }

    /// [`ParallelSolver::solve_pipelined`] into a caller-provided buffer
    /// with a caller-held [`PipelinePlan`]: the hot path for iterative
    /// solvers, performing no heap allocation.
    pub fn solve_pipelined_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<()> {
        let split = s.split();
        self.solve_pipelined_into_generic(s, plan, b, x, split.ext_vals(), split.int_vals())
    }

    /// [`ParallelSolver::solve_pipelined_into`] reading the f32 value slabs
    /// (accumulation stays f64; see [`PrecisionPolicy`]). Builds the slabs
    /// on first use; call [`SplitLayout::ext_vals_f32`] ahead of timing
    /// loops to exclude the one-time demotion.
    ///
    /// [`SplitLayout::ext_vals_f32`]: crate::split::SplitLayout::ext_vals_f32
    pub fn solve_pipelined_f32_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<()> {
        let split = s.split();
        self.solve_pipelined_into_generic(s, plan, b, x, split.ext_vals_f32(), split.int_vals_f32())
    }

    /// The forward pipelined kernel, generic over the value-slab precision
    /// (accumulation stays f64).
    fn solve_pipelined_into_generic<V: SlabValue>(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        if b.len() != s.n() || x.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b and x must both have length {}, got {} and {}",
                s.n(),
                b.len(),
                x.len()
            )));
        }
        self.check_plan(s, plan, true)?;
        let shared = SharedVec::new(x);
        let split = s.split();
        let erp = split.ext_row_ptr();
        let ecols = split.ext_cols();
        let irp = split.int_row_ptr();
        let icols = split.int_cols();
        let inv_diag = split.inv_diags();
        let gather = |rows: std::ops::Range<usize>| {
            for i1 in rows {
                let mut acc = 0.0;
                for k in erp[i1]..erp[i1 + 1] {
                    // SAFETY: external columns lie in packs the chunk's
                    // readiness wait covered; the epoch edge published
                    // their final values (module docs).
                    acc += evals[k].to_f64() * unsafe { shared.read(ecols[k] as usize) };
                }
                // SAFETY: row i1 is written by exactly one statically
                // owned chunk.
                unsafe { shared.write(i1, (b[i1] - acc) * inv_diag[i1]) };
                self.shadow_record(
                    TaskKind::Gather,
                    i1,
                    ecols[erp[i1]..erp[i1 + 1]].iter().map(|&j| j as usize),
                );
            }
        };
        let chain = |p: usize, t: usize| {
            // Forward plans bind stage p to pack p.
            for &i1 in split.chain_rows_of(p, t) {
                let i1 = i1 as usize;
                let mut acc = 0.0;
                for k in irp[i1]..irp[i1 + 1] {
                    // SAFETY: internal columns stay inside this
                    // super-row — written earlier by this task if they
                    // are chain rows, published by the drained flag
                    // otherwise.
                    acc += ivals[k].to_f64() * unsafe { shared.read(icols[k] as usize) };
                }
                // SAFETY: row i1 belongs to exactly one chain task; its
                // phase-1 value was published by the drained flag.
                let partial = unsafe { shared.read(i1) };
                unsafe { shared.write(i1, partial - acc * inv_diag[i1]) };
                self.shadow_record(
                    TaskKind::Chain,
                    i1,
                    (irp[i1]..irp[i1 + 1])
                        .map(|k| icols[k] as usize)
                        .chain(std::iter::once(i1)),
                );
            }
        };
        self.run_pipelined(plan, &gather, &chain)?;
        Ok(())
    }

    /// Solves `L' X' = B'` for `nrhs` right-hand sides with the
    /// pack-pipelined kernel (the multi-RHS analogue of
    /// [`ParallelSolver::solve_pipelined`]; layout matches
    /// [`StsStructure::solve_batch`]: `b[i * nrhs + r]`).
    pub fn solve_batch_pipelined(
        &self,
        s: &StsStructure,
        b: &[f64],
        nrhs: usize,
    ) -> Result<Vec<f64>> {
        self.solve_with(s, b, &SolveOptions::default().with_nrhs(nrhs))
    }

    /// [`ParallelSolver::solve_batch_pipelined`] into a caller-provided
    /// buffer with a caller-held [`PipelinePlan`] (no heap allocation). The
    /// same plan serves every `nrhs`: the schedule depends only on the
    /// structure and the thread count.
    pub fn solve_batch_pipelined_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let split = s.split();
        self.solve_batch_pipelined_into_generic(
            s,
            plan,
            b,
            x,
            nrhs,
            split.ext_vals(),
            split.int_vals(),
        )
    }

    /// [`ParallelSolver::solve_batch_pipelined_into`] reading the f32 value
    /// slabs (accumulation stays f64; see [`PrecisionPolicy`]).
    pub fn solve_batch_pipelined_f32_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let split = s.split();
        self.solve_batch_pipelined_into_generic(
            s,
            plan,
            b,
            x,
            nrhs,
            split.ext_vals_f32(),
            split.int_vals_f32(),
        )
    }

    /// The forward pipelined batch kernel, generic over the value-slab
    /// precision (accumulation stays f64).
    #[allow(clippy::too_many_arguments)]
    fn solve_batch_pipelined_into_generic<V: SlabValue>(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_batch_pipelined_into needs at least one right-hand side".into(),
            ));
        }
        if b.len() != s.n() * nrhs || x.len() != s.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B and X must both have length n * nrhs = {}, got {} and {}",
                s.n() * nrhs,
                b.len(),
                x.len()
            )));
        }
        self.check_plan(s, plan, true)?;
        let shared = SharedVec::new(x);
        let split = s.split();
        let erp = split.ext_row_ptr();
        let ecols = split.ext_cols();
        let irp = split.int_row_ptr();
        let icols = split.int_cols();
        let inv_diag = split.inv_diags();
        // The aliasing argument is solve_pipelined's, with "row i1"
        // standing for the nrhs consecutive slots of row i1; the
        // register-tile accumulation mirrors solve_batch.
        let gather = |rows: std::ops::Range<usize>| {
            for i1 in rows {
                let base = i1 * nrhs;
                let d = inv_diag[i1];
                for r0 in (0..nrhs).step_by(TILE) {
                    let w = TILE.min(nrhs - r0);
                    let mut acc = [0.0f64; TILE];
                    acc[..w].copy_from_slice(&b[base + r0..base + r0 + w]);
                    for k in erp[i1]..erp[i1 + 1] {
                        let (j, v) = (ecols[k] as usize, evals[k].to_f64());
                        for (r, a) in acc[..w].iter_mut().enumerate() {
                            // SAFETY: external reads target packs the
                            // readiness wait covered (epoch edge).
                            *a -= v * unsafe { shared.read(j * nrhs + r0 + r) };
                        }
                    }
                    for (r, a) in acc[..w].iter().enumerate() {
                        // SAFETY: the nrhs slots of row i1 have exactly
                        // one phase-1 writer (this chunk).
                        unsafe { shared.write(base + r0 + r, a * d) };
                    }
                }
            }
        };
        let chain = |p: usize, t: usize| {
            for &i1 in split.chain_rows_of(p, t) {
                let i1 = i1 as usize;
                let base = i1 * nrhs;
                let d = inv_diag[i1];
                for r0 in (0..nrhs).step_by(TILE) {
                    let w = TILE.min(nrhs - r0);
                    let mut acc = [0.0f64; TILE];
                    for (r, a) in acc[..w].iter_mut().enumerate() {
                        // SAFETY: row i1 belongs to exactly one chain
                        // task; its phase-1 values were published by the
                        // drained flag.
                        *a = unsafe { shared.read(base + r0 + r) };
                    }
                    for k in irp[i1]..irp[i1 + 1] {
                        let (j, v) = (icols[k] as usize, ivals[k].to_f64());
                        let vd = v * d;
                        for (r, a) in acc[..w].iter_mut().enumerate() {
                            // SAFETY: same-super-row reads — this task's
                            // earlier writes, or phase-1 results behind
                            // the drained flag.
                            *a -= vd * unsafe { shared.read(j * nrhs + r0 + r) };
                        }
                    }
                    for (r, a) in acc[..w].iter().enumerate() {
                        // SAFETY: row i1 is owned by this chain task.
                        unsafe { shared.write(base + r0 + r, *a) };
                    }
                }
            }
        };
        self.run_pipelined(plan, &gather, &chain)?;
        Ok(())
    }

    /// Solves the transposed (upper-triangular) system `L'ᵀ x' = b'` with
    /// the two-phase split kernel over the packs in **reverse** order: per
    /// pack, a statically-chunked gather of the later-pack entries, a phase
    /// barrier, then the backward in-super-row chains. See the module
    /// documentation for the reverse-pack-order correctness argument.
    ///
    /// Named wrapper over [`ParallelSolver::solve_with`] with
    /// [`SolveEngine::Split`] and [`SweepDirection::Transpose`]; output is
    /// bitwise identical to the pre-`SolveOptions` entry.
    pub fn solve_transpose_split(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default()
                .with_engine(SolveEngine::Split)
                .with_direction(SweepDirection::Transpose),
        )
    }

    /// [`ParallelSolver::solve_transpose_split`] reading the f32 value slabs
    /// (accumulation stays f64; see [`PrecisionPolicy`]).
    pub fn solve_transpose_split_f32(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default()
                .with_engine(SolveEngine::Split)
                .with_direction(SweepDirection::Transpose)
                .with_precision(PrecisionPolicy::ValuesF32WithRefinement),
        )
    }

    /// The two-phase transpose split kernel, generic over the value-slab
    /// precision: `evals`/`ivals` are the slabs of `s.transpose_split()` in
    /// either width, and every partial product is accumulated in f64.
    fn solve_transpose_split_generic<V: SlabValue>(
        &self,
        s: &StsStructure,
        b: &[f64],
        evals: &[V],
        ivals: &[V],
    ) -> Result<Vec<f64>> {
        if b.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                s.n()
            )));
        }
        let mut x = vec![0.0f64; s.n()];
        {
            let shared = SharedVec::new(&mut x);
            let ts = s.transpose_split();
            let erp = ts.ext_row_ptr();
            let ecols = ts.ext_cols();
            let irp = ts.int_row_ptr();
            let icols = ts.int_cols();
            let inv_diag = ts.inv_diags();
            let workers = self.pool.num_threads();
            for p in (0..s.num_packs()).rev() {
                let rows = s.pack_rows(p);
                let first_row = rows.start;
                let m = rows.len();
                // Phase 1: gather the later-pack entries — all final, since
                // the reverse sweep finished those packs before this one.
                let nchunks = workers.min(m);
                self.pool
                    .parallel_for(nchunks, Schedule::Static, &|c| {
                        let chunk_start = first_row + c * m / nchunks;
                        let chunk_end = first_row + (c + 1) * m / nchunks;
                        for i1 in chunk_start..chunk_end {
                            let mut acc = 0.0;
                            for k in erp[i1]..erp[i1 + 1] {
                                // SAFETY: external transpose columns belong to
                                // later packs, finalized before this pack's
                                // first barrier of the reverse sweep.
                                acc +=
                                    evals[k].to_f64() * unsafe { shared.read(ecols[k] as usize) };
                            }
                            // SAFETY: row i1 is written by exactly one phase-1
                            // chunk.
                            unsafe { shared.write(i1, (b[i1] - acc) * inv_diag[i1]) };
                            self.shadow_record(
                                TaskKind::Gather,
                                i1,
                                ecols[erp[i1]..erp[i1 + 1]].iter().map(|&j| j as usize),
                            );
                        }
                    })
                    .map_err(pool_error_to_matrix)?;
                // Phase 2: backward chains in decreasing row order.
                let chain = ts.chain_super_rows(p);
                if chain.is_empty() {
                    continue;
                }
                self.pool
                    .parallel_for(chain.len(), self.schedule, &|t| {
                        for &i1 in ts.chain_rows_of(p, t) {
                            let i1 = i1 as usize;
                            let mut acc = 0.0;
                            for k in irp[i1]..irp[i1 + 1] {
                                // SAFETY: internal columns stay inside this
                                // super-row — corrected earlier by this task
                                // (decreasing order) if they are chain rows,
                                // published by the phase barrier otherwise.
                                acc +=
                                    ivals[k].to_f64() * unsafe { shared.read(icols[k] as usize) };
                            }
                            // SAFETY: row i1 belongs to exactly one chain task.
                            let partial = unsafe { shared.read(i1) };
                            unsafe { shared.write(i1, partial - acc * inv_diag[i1]) };
                            self.shadow_record(
                                TaskKind::Chain,
                                i1,
                                (irp[i1]..irp[i1 + 1])
                                    .map(|k| icols[k] as usize)
                                    .chain(std::iter::once(i1)),
                            );
                        }
                    })
                    .map_err(pool_error_to_matrix)?;
            }
        }
        Ok(x)
    }

    /// Solves `L'ᵀ x' = b'` with the pack-pipelined kernel over the packs in
    /// reverse order: the backward analogue of
    /// [`ParallelSolver::solve_pipelined`], one pool dispatch per solve.
    ///
    /// Named wrapper over [`ParallelSolver::solve_with`] with
    /// [`SweepDirection::Transpose`]; output is bitwise identical to the
    /// pre-`SolveOptions` entry.
    pub fn solve_transpose_pipelined(&self, s: &StsStructure, b: &[f64]) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default().with_direction(SweepDirection::Transpose),
        )
    }

    /// [`ParallelSolver::solve_transpose_pipelined`] into a caller-provided
    /// buffer with a caller-held backward [`PipelinePlan`] (no heap
    /// allocation).
    pub fn solve_transpose_pipelined_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<()> {
        let ts = s.transpose_split();
        self.solve_transpose_pipelined_into_generic(s, plan, b, x, ts.ext_vals(), ts.int_vals())
    }

    /// [`ParallelSolver::solve_transpose_pipelined_into`] reading the f32
    /// value slabs (accumulation stays f64; see [`PrecisionPolicy`]).
    pub fn solve_transpose_pipelined_f32_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<()> {
        let ts = s.transpose_split();
        self.solve_transpose_pipelined_into_generic(
            s,
            plan,
            b,
            x,
            ts.ext_vals_f32(),
            ts.int_vals_f32(),
        )
    }

    /// The backward pipelined kernel, generic over the value-slab precision
    /// (accumulation stays f64).
    fn solve_transpose_pipelined_into_generic<V: SlabValue>(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        if b.len() != s.n() || x.len() != s.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b and x must both have length {}, got {} and {}",
                s.n(),
                b.len(),
                x.len()
            )));
        }
        self.check_plan(s, plan, false)?;
        let num_packs = s.num_packs();
        let shared = SharedVec::new(x);
        let ts = s.transpose_split();
        let erp = ts.ext_row_ptr();
        let ecols = ts.ext_cols();
        let irp = ts.int_row_ptr();
        let icols = ts.int_cols();
        let inv_diag = ts.inv_diags();
        let gather = |rows: std::ops::Range<usize>| {
            for i1 in rows {
                let mut acc = 0.0;
                for k in erp[i1]..erp[i1 + 1] {
                    // SAFETY: external transpose columns lie in the later
                    // packs this chunk's readiness wait covered (reverse
                    // stage numbering); the epoch edge published them.
                    acc += evals[k].to_f64() * unsafe { shared.read(ecols[k] as usize) };
                }
                // SAFETY: row i1 is written by exactly one statically owned
                // chunk.
                unsafe { shared.write(i1, (b[i1] - acc) * inv_diag[i1]) };
                self.shadow_record(
                    TaskKind::Gather,
                    i1,
                    ecols[erp[i1]..erp[i1 + 1]].iter().map(|&j| j as usize),
                );
            }
        };
        let chain = |st: usize, t: usize| {
            // Backward plans bind stage st to pack num_packs − 1 − st.
            let p = num_packs - 1 - st;
            for &i1 in ts.chain_rows_of(p, t) {
                let i1 = i1 as usize;
                let mut acc = 0.0;
                for k in irp[i1]..irp[i1 + 1] {
                    // SAFETY: internal columns stay inside this super-row —
                    // corrected earlier by this task (decreasing order) if
                    // they are chain rows, published by the drained flag
                    // otherwise.
                    acc += ivals[k].to_f64() * unsafe { shared.read(icols[k] as usize) };
                }
                // SAFETY: row i1 belongs to exactly one chain task; its
                // phase-1 value was published by the drained flag.
                let partial = unsafe { shared.read(i1) };
                unsafe { shared.write(i1, partial - acc * inv_diag[i1]) };
                self.shadow_record(
                    TaskKind::Chain,
                    i1,
                    (irp[i1]..irp[i1 + 1])
                        .map(|k| icols[k] as usize)
                        .chain(std::iter::once(i1)),
                );
            }
        };
        self.run_pipelined(plan, &gather, &chain)?;
        Ok(())
    }

    /// Solves `L'ᵀ X' = B'` for `nrhs` right-hand sides with the backward
    /// pack-pipelined kernel (layout matches [`StsStructure::solve_batch`]:
    /// `b[i * nrhs + r]`).
    pub fn solve_transpose_batch_pipelined(
        &self,
        s: &StsStructure,
        b: &[f64],
        nrhs: usize,
    ) -> Result<Vec<f64>> {
        self.solve_with(
            s,
            b,
            &SolveOptions::default()
                .with_direction(SweepDirection::Transpose)
                .with_nrhs(nrhs),
        )
    }

    /// [`ParallelSolver::solve_transpose_batch_pipelined`] into a
    /// caller-provided buffer with a caller-held backward [`PipelinePlan`]
    /// (no heap allocation).
    pub fn solve_transpose_batch_pipelined_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let ts = s.transpose_split();
        self.solve_transpose_batch_pipelined_into_generic(
            s,
            plan,
            b,
            x,
            nrhs,
            ts.ext_vals(),
            ts.int_vals(),
        )
    }

    /// [`ParallelSolver::solve_transpose_batch_pipelined_into`] reading the
    /// f32 value slabs (accumulation stays f64; see [`PrecisionPolicy`]).
    pub fn solve_transpose_batch_pipelined_f32_into(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let ts = s.transpose_split();
        self.solve_transpose_batch_pipelined_into_generic(
            s,
            plan,
            b,
            x,
            nrhs,
            ts.ext_vals_f32(),
            ts.int_vals_f32(),
        )
    }

    /// The backward pipelined batch kernel, generic over the value-slab
    /// precision (accumulation stays f64).
    #[allow(clippy::too_many_arguments)]
    fn solve_transpose_batch_pipelined_into_generic<V: SlabValue>(
        &self,
        s: &StsStructure,
        plan: &mut PipelinePlan,
        b: &[f64],
        x: &mut [f64],
        nrhs: usize,
        evals: &[V],
        ivals: &[V],
    ) -> Result<()> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_transpose_batch_pipelined_into needs at least one right-hand side".into(),
            ));
        }
        if b.len() != s.n() * nrhs || x.len() != s.n() * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B and X must both have length n * nrhs = {}, got {} and {}",
                s.n() * nrhs,
                b.len(),
                x.len()
            )));
        }
        self.check_plan(s, plan, false)?;
        let num_packs = s.num_packs();
        let shared = SharedVec::new(x);
        let ts = s.transpose_split();
        let erp = ts.ext_row_ptr();
        let ecols = ts.ext_cols();
        let irp = ts.int_row_ptr();
        let icols = ts.int_cols();
        let inv_diag = ts.inv_diags();
        // Aliasing as in solve_transpose_pipelined_into, with "row i1"
        // standing for its nrhs consecutive slots.
        let gather = |rows: std::ops::Range<usize>| {
            for i1 in rows {
                let base = i1 * nrhs;
                let d = inv_diag[i1];
                for r0 in (0..nrhs).step_by(TILE) {
                    let w = TILE.min(nrhs - r0);
                    let mut acc = [0.0f64; TILE];
                    acc[..w].copy_from_slice(&b[base + r0..base + r0 + w]);
                    for k in erp[i1]..erp[i1 + 1] {
                        let (j, v) = (ecols[k] as usize, evals[k].to_f64());
                        for (r, a) in acc[..w].iter_mut().enumerate() {
                            // SAFETY: external reads target later packs the
                            // readiness wait covered (epoch edge).
                            *a -= v * unsafe { shared.read(j * nrhs + r0 + r) };
                        }
                    }
                    for (r, a) in acc[..w].iter().enumerate() {
                        // SAFETY: the nrhs slots of row i1 have exactly one
                        // phase-1 writer (this chunk).
                        unsafe { shared.write(base + r0 + r, a * d) };
                    }
                }
            }
        };
        let chain = |st: usize, t: usize| {
            let p = num_packs - 1 - st;
            for &i1 in ts.chain_rows_of(p, t) {
                let i1 = i1 as usize;
                let base = i1 * nrhs;
                let d = inv_diag[i1];
                for r0 in (0..nrhs).step_by(TILE) {
                    let w = TILE.min(nrhs - r0);
                    let mut acc = [0.0f64; TILE];
                    for (r, a) in acc[..w].iter_mut().enumerate() {
                        // SAFETY: row i1 belongs to exactly one chain task;
                        // its phase-1 values were published by the drained
                        // flag.
                        *a = unsafe { shared.read(base + r0 + r) };
                    }
                    for k in irp[i1]..irp[i1 + 1] {
                        let (j, v) = (icols[k] as usize, ivals[k].to_f64());
                        let vd = v * d;
                        for (r, a) in acc[..w].iter_mut().enumerate() {
                            // SAFETY: same-super-row reads — this task's
                            // earlier corrections (decreasing order), or
                            // phase-1 results behind the drained flag.
                            *a -= vd * unsafe { shared.read(j * nrhs + r0 + r) };
                        }
                    }
                    for (r, a) in acc[..w].iter().enumerate() {
                        // SAFETY: row i1 is owned by this chain task.
                        unsafe { shared.write(base + r0 + r, *a) };
                    }
                }
            }
        };
        self.run_pipelined(plan, &gather, &chain)?;
        Ok(())
    }

    /// Sparse matrix–vector product `y = A x` on the solver's worker pool:
    /// the rows are statically chunked, each chunk writing a disjoint slice
    /// of `y`. This is the companion kernel iterative solvers need next to
    /// the triangular sweeps (one `A·p` per iteration), sharing the pool so
    /// the whole iteration runs on one set of (optionally pinned) workers.
    /// No heap allocation.
    pub fn spmv_into(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != a.ncols() || y.len() != a.nrows() {
            return Err(MatrixError::DimensionMismatch(
                "x/y lengths must match the matrix dimensions".into(),
            ));
        }
        let n = a.nrows();
        if n == 0 {
            return Ok(());
        }
        let shared = SharedVec::new(y);
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        let nchunks = self.pool.num_threads().min(n);
        self.pool
            .parallel_for(nchunks, Schedule::Static, &|c| {
                for r in c * n / nchunks..(c + 1) * n / nchunks {
                    let mut acc = 0.0;
                    for k in row_ptr[r]..row_ptr[r + 1] {
                        acc += values[k] * x[col_idx[k]];
                    }
                    // SAFETY: row r belongs to exactly one static chunk; x is
                    // never written during the product.
                    unsafe { shared.write(r, acc) };
                }
            })
            .map_err(pool_error_to_matrix)?;
        Ok(())
    }

    /// Multi-RHS sparse matrix–vector product `Y = A X` on the solver's
    /// worker pool, with the interleaved layout the batch solvers use
    /// (`x[i * nrhs + r]`). Each `(col, val)` load is amortised over the
    /// batch via a register tile. No heap allocation.
    pub fn spmv_batch_into(
        &self,
        a: &CsrMatrix,
        x: &[f64],
        y: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "spmv_batch_into needs at least one right-hand side".into(),
            ));
        }
        if x.len() != a.ncols() * nrhs || y.len() != a.nrows() * nrhs {
            return Err(MatrixError::DimensionMismatch(
                "x/y lengths must match the matrix dimensions times nrhs".into(),
            ));
        }
        let n = a.nrows();
        if n == 0 {
            return Ok(());
        }
        let shared = SharedVec::new(y);
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        let nchunks = self.pool.num_threads().min(n);
        self.pool
            .parallel_for(nchunks, Schedule::Static, &|c| {
                for r in c * n / nchunks..(c + 1) * n / nchunks {
                    let base = r * nrhs;
                    for r0 in (0..nrhs).step_by(TILE) {
                        let w = TILE.min(nrhs - r0);
                        let mut acc = [0.0f64; TILE];
                        for k in row_ptr[r]..row_ptr[r + 1] {
                            let (j, v) = (col_idx[k], values[k]);
                            for (q, a) in acc[..w].iter_mut().enumerate() {
                                *a += v * x[j * nrhs + r0 + q];
                            }
                        }
                        for (q, a) in acc[..w].iter().enumerate() {
                            // SAFETY: the nrhs slots of row r belong to exactly
                            // one static chunk.
                            unsafe { shared.write(base + r0 + q, *a) };
                        }
                    }
                }
            })
            .map_err(pool_error_to_matrix)?;
        Ok(())
    }

    /// The pipelined orchestrator shared by all four pipelined kernels
    /// (forward/backward × single/multi-RHS): one pool dispatch, per-stage
    /// completion counters instead of barriers, statically owned phase-1
    /// chunks with readiness waits, ticket-claimed phase-2 chain tasks, and
    /// bounded gather lookahead for parked workers. The plan binds stages to
    /// packs (identity for forward plans, reversal for backward ones);
    /// `gather` runs one contiguous phase-1 row range and `chain(st, t)`
    /// runs chain task `t` of stage `st`.
    /// # Failure semantics
    ///
    /// Every worker's loop runs under `catch_unwind`. A panicking body (or
    /// chaos hook) records the first `(slot, stage, payload)` and poisons the
    /// gate; peers observe the poison at their next bounded wait (or the
    /// poison check ahead of each ticket claim) and bail, so the pool barrier
    /// completes and the solve returns [`MatrixError::WorkerPanicked`]. A
    /// blocking gate wait that exceeds the watchdog deadline records the
    /// stage, poisons the gate the same way, and the solve returns
    /// [`MatrixError::SolveTimeout`] — after the stalled worker's body
    /// finishes, since `parallel_for` cannot abandon a borrowed job; the
    /// caller therefore regains control after `max(stall, budget)`, never
    /// hangs. On any error the output buffer must be treated as torn.
    fn run_pipelined(
        &self,
        plan: &mut PipelinePlan,
        gather: &(dyn Fn(std::ops::Range<usize>) + Sync),
        chain: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<()> {
        let workers = self.pool.num_threads();
        let num_stages = plan.stage_rows.len();
        // Rewind the gate (generation-stamped) and the ticket counters; &mut
        // exclusivity makes the plain stores race-free, and the pool dispatch
        // below publishes them to every worker. The single-worker fast path
        // never touches the gate, but still rewinds so the generation stamp
        // keeps counting solves regardless of thread count.
        plan.rewind();
        let rec = self.active_recorder();
        if workers == 1 {
            // A single worker's program order is exactly the two-phase sweep;
            // skip the gate and ticket atomics entirely. A stalling chaos
            // hook simply runs slowly here — there is no peer to starve.
            let current = Cell::new(0usize);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for st in 0..num_stages {
                    current.set(st);
                    if let Some(hook) = &self.chaos {
                        hook(0, st);
                    }
                    let rows = plan.stage_rows[st].clone();
                    if !rows.is_empty() {
                        let t0 = rec.map(|r| r.now_ns());
                        gather(rows);
                        if let Some(r) = rec {
                            r.record(0, st as u32, Phase::Gather, t0.unwrap_or(0), r.now_ns());
                        }
                    }
                    for t in 0..plan.ntasks[st] {
                        let t0 = rec.map(|r| r.now_ns());
                        chain(st, t);
                        if let Some(r) = rec {
                            r.record(0, st as u32, Phase::Chain, t0.unwrap_or(0), r.now_ns());
                        }
                    }
                }
            }));
            return match result {
                Ok(()) => Ok(()),
                Err(payload) => Err(MatrixError::WorkerPanicked {
                    slot: 0,
                    pack: current.get(),
                    message: panic_message(payload.as_ref()),
                }),
            };
        }
        let deadline = Instant::now() + Duration::from_millis(self.watchdog_ms);
        let failure = KernelFailure::new();
        let plan = &*plan;
        // Runs worker `w`'s phase-1 chunk of stage `st` (a no-op `Ran` when
        // the worker owns none). Non-blocking mode refuses — `NotReady` —
        // instead of waiting for the chunk's readiness; `Bail` means the
        // gate was poisoned (or this wait timed out and poisoned it) and the
        // worker must unwind its loop.
        let run_chunk = |w: usize, st: usize, blocking: bool, current: &Cell<usize>| -> ChunkStep {
            let nchunks = plan.chunk_ptr[st + 1] - plan.chunk_ptr[st];
            if w < nchunks {
                let dep = plan.chunk_dep[plan.chunk_ptr[st] + w] as usize;
                if blocking {
                    let t0 = rec.map(|r| r.now_ns());
                    let wait = plan.gate.wait_open_until(dep, deadline);
                    if let Some(r) = rec {
                        r.record(
                            w as u32,
                            st as u32,
                            Phase::GateWait,
                            t0.unwrap_or(0),
                            r.now_ns(),
                        );
                    }
                    match wait {
                        GateWait::Ready => {}
                        GateWait::Poisoned => return ChunkStep::Bail,
                        GateWait::TimedOut => {
                            failure.record_timeout(st);
                            plan.gate.poison();
                            return ChunkStep::Bail;
                        }
                    }
                } else if plan.gate.is_poisoned() {
                    return ChunkStep::Bail;
                } else if !plan.gate.is_open(dep) {
                    return ChunkStep::NotReady;
                }
                current.set(st);
                if let Some(hook) = &self.chaos {
                    hook(w, st);
                }
                let rows = plan.stage_rows[st].clone();
                let m = rows.len();
                let t0 = rec.map(|r| r.now_ns());
                gather(rows.start + w * m / nchunks..rows.start + (w + 1) * m / nchunks);
                if let Some(r) = rec {
                    r.record(
                        w as u32,
                        st as u32,
                        Phase::Gather,
                        t0.unwrap_or(0),
                        r.now_ns(),
                    );
                }
                plan.gate.arrive_phase1(st);
            }
            ChunkStep::Ran
        };
        self.pool
            .parallel_for(workers, Schedule::Static, &|w| {
                let current = Cell::new(0usize);
                let body = catch_unwind(AssertUnwindSafe(|| {
                    // The next stage whose phase-1 chunk this worker still
                    // owes; lookahead advances it past the stage being
                    // processed.
                    let mut next_p1 = 0usize;
                    'stages: for st in 0..num_stages {
                        if next_p1 == st {
                            if run_chunk(w, st, true, &current) == ChunkStep::Bail {
                                break 'stages;
                            }
                            next_p1 = st + 1;
                        }
                        let ntasks = plan.ntasks[st];
                        if ntasks == 0 {
                            continue;
                        }
                        let mut spins = 0u32;
                        loop {
                            if plan.gate.is_poisoned() {
                                break 'stages;
                            }
                            if !plan.gate.phase1_drained(st) {
                                // Parked: gather ahead into the next stages
                                // instead of spinning (readiness permitting).
                                if next_p1 < num_stages && next_p1 - st <= PIPELINE_LOOKAHEAD {
                                    match run_chunk(w, next_p1, false, &current) {
                                        ChunkStep::Ran => {
                                            next_p1 += 1;
                                            spins = 0;
                                            continue;
                                        }
                                        ChunkStep::Bail => break 'stages,
                                        ChunkStep::NotReady => {}
                                    }
                                }
                                spins += 1;
                                if spins < 64 {
                                    std::hint::spin_loop();
                                } else {
                                    // Possibly oversubscribed: let the
                                    // stragglers run — and watch the clock,
                                    // in case a straggler never comes back.
                                    if spins.is_multiple_of(64) && Instant::now() >= deadline {
                                        failure.record_timeout(st);
                                        plan.gate.poison();
                                        break 'stages;
                                    }
                                    std::thread::yield_now();
                                }
                                continue;
                            }
                            let t = plan.tickets[st].fetch_add(1, AtomicOrdering::Relaxed);
                            if t >= ntasks {
                                break;
                            }
                            current.set(st);
                            let t0 = rec.map(|r| r.now_ns());
                            chain(st, t);
                            if let Some(r) = rec {
                                r.record(
                                    w as u32,
                                    st as u32,
                                    Phase::Chain,
                                    t0.unwrap_or(0),
                                    r.now_ns(),
                                );
                            }
                            plan.gate.arrive_phase2(st);
                        }
                    }
                }));
                if let Err(payload) = body {
                    failure.record_panic(w, current.get(), panic_message(payload.as_ref()));
                    plan.gate.poison();
                }
            })
            // Unreachable in practice — the catch above absorbs every panic —
            // but kept sound rather than assumed.
            .map_err(pool_error_to_matrix)?;
        failure.into_result(self.watchdog_ms)
    }
}

/// Tri-state outcome of one phase-1 chunk attempt in the pipelined loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkStep {
    /// The chunk ran (or the worker owns none at this stage).
    Ran,
    /// Non-blocking readiness check failed; try again later.
    NotReady,
    /// The gate is poisoned (or this wait timed out): unwind the worker loop.
    Bail,
}

/// Register-tile width of the multi-RHS kernels: partial sums for up to this
/// many right-hand sides accumulate in a stack tile per row, so each
/// `(col, val)` load is amortised without round-trips through the shared
/// pointer.
const TILE: usize = 8;

/// The reusable per-structure scheduling state of the pipelined kernels: the
/// stage → row-range binding (packs in forward or reverse order), per-chunk
/// readiness, gate arrival counts, and the phase-2 ticket counters. Built by
/// [`ParallelSolver::plan`] / [`ParallelSolver::plan_transpose`] once per
/// structure, rewound — never reallocated — by every `solve_*_into` call, so
/// repeated solves on one structure are allocation-free.
///
/// A plan is tied to the (structure, direction, thread count) it was built
/// for; the `_into` kernels reject mismatches.
#[derive(Debug)]
pub struct PipelinePlan {
    /// Forward (stage `s` = pack `s`) or backward (stage `s` = pack
    /// `num_packs − 1 − s`).
    forward: bool,
    /// Dimension of the structure the plan was built for.
    n: usize,
    /// Thread count of the solver the plan was built for.
    threads: usize,
    /// The rows of each stage's pack (contiguous in the reordered
    /// numbering).
    stage_rows: Vec<std::ops::Range<usize>>,
    /// Chain tasks per stage.
    ntasks: Vec<usize>,
    /// Stage pointer into `chunk_dep` (`num_stages + 1` entries).
    chunk_ptr: Vec<usize>,
    /// Per-chunk readiness in the plan's stage numbering.
    chunk_dep: Vec<u32>,
    /// The resettable epoch gate coordinating the stages.
    gate: EpochGate,
    /// Phase-2 ticket counters, one per stage.
    tickets: Vec<AtomicUsize>,
}

impl PipelinePlan {
    /// Whether this is a forward plan (`solve_pipelined_into` /
    /// `solve_batch_pipelined_into`) or a backward one
    /// (`solve_transpose_*_into`).
    pub fn is_forward(&self) -> bool {
        self.forward
    }

    /// Number of stages (packs).
    pub fn num_stages(&self) -> usize {
        self.stage_rows.len()
    }

    /// How many solves have rewound this plan (the gate's generation stamp).
    pub fn generation(&self) -> usize {
        self.gate.generation()
    }

    /// Rewinds the gate and the ticket counters for the next solve. `&mut`
    /// exclusivity makes the plain stores race-free.
    fn rewind(&mut self) {
        self.gate.reset();
        for t in &mut self.tickets {
            *t.get_mut() = 0;
        }
    }
}

/// How many packs past the one a worker is parked on it may gather ahead
/// into (packs `p + 1` and `p + 2`): enough to hide short chains without
/// letting fast workers run arbitrarily far from the cache-resident frontier.
const PIPELINE_LOOKAHEAD: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Method;
    use sts_matrix::{generators, ops};

    fn check_parallel_matches_sequential(
        a: &sts_matrix::CsrMatrix,
        method: Method,
        threads: usize,
        schedule: Schedule,
    ) {
        let l = generators::lower_operand(a).unwrap();
        let s = method.build(&l, 8).unwrap();
        let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let seq = s.solve_sequential(&b).unwrap();
        let solver = ParallelSolver::new(threads, schedule);
        let par = solver.solve(&s, &b).unwrap();
        assert!(
            ops::relative_error_inf(&par, &seq) < 1e-12,
            "parallel must match sequential"
        );
        assert!(ops::relative_error_inf(&par, &x_true) < 1e-10);
    }

    #[test]
    fn parallel_matches_sequential_for_all_methods() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        for method in Method::all() {
            check_parallel_matches_sequential(&a, method, 4, Schedule::Dynamic { chunk: 4 });
        }
    }

    #[test]
    fn parallel_matches_sequential_across_schedules() {
        let a = generators::grid2d_9point(13, 13).unwrap();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 32 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            check_parallel_matches_sequential(&a, Method::Sts3, 4, schedule);
        }
    }

    #[test]
    fn single_threaded_solver_works() {
        let a = generators::road_network(12, 12, 0.6, 4).unwrap();
        check_parallel_matches_sequential(&a, Method::CsrCol, 1, Schedule::Static);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let l = generators::paper_figure1_l();
        let s = Method::Sts3.build(&l, 2).unwrap();
        let b = vec![1.0; 9];
        let solver = ParallelSolver::new(8, Schedule::Guided { min_chunk: 1 });
        let x = solver.solve(&s, &b).unwrap();
        let x_ref = s.solve_sequential(&b).unwrap();
        assert!(ops::relative_error_inf(&x, &x_ref) < 1e-14);
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let l = generators::paper_figure1_l();
        let s = Method::CsrLs.build(&l, 2).unwrap();
        let solver = ParallelSolver::new(2, Schedule::Static);
        assert!(solver.solve(&s, &[1.0; 4]).is_err());
    }

    #[test]
    fn solver_is_reusable_across_structures_and_right_hand_sides() {
        let solver = ParallelSolver::new(3, Schedule::Dynamic { chunk: 2 });
        for seed in 0..3 {
            let a = generators::triangulated_grid(9, 9, seed).unwrap();
            let l = generators::lower_operand(&a).unwrap();
            let s = Method::Sts3.build(&l, 4).unwrap();
            for shift in 0..3 {
                let x_true: Vec<f64> = (0..s.n()).map(|i| (i + shift) as f64 * 0.1 + 1.0).collect();
                let b = s.lower().multiply(&x_true).unwrap();
                let x = solver.solve(&s, &b).unwrap();
                assert!(ops::relative_error_inf(&x, &x_true) < 1e-10);
            }
        }
    }

    #[test]
    fn split_solver_matches_sequential_for_all_methods_and_schedules() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
            let b = s.lower().multiply(&x_true).unwrap();
            let seq = s.solve_sequential(&b).unwrap();
            for threads in [1, 2, 4] {
                for schedule in [
                    Schedule::Static,
                    Schedule::Dynamic { chunk: 4 },
                    Schedule::Guided { min_chunk: 1 },
                ] {
                    let solver = ParallelSolver::new(threads, schedule);
                    let par = solver.solve_split(&s, &b).unwrap();
                    assert!(
                        ops::relative_error_inf(&par, &seq) < 1e-12,
                        "{} with {threads} threads diverged from sequential",
                        method.label()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_solver_matches_single_rhs_solves() {
        let a = generators::grid2d_9point(12, 12).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let n = s.n();
        let nrhs = 3;
        // Three manufactured systems, interleaved row-major.
        let mut b = vec![0.0; n * nrhs];
        let mut expected = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            let x_true: Vec<f64> = (0..n).map(|i| (i + r) as f64 * 0.1 + 1.0).collect();
            let br = s.lower().multiply(&x_true).unwrap();
            let xr = s.solve_sequential(&br).unwrap();
            for i in 0..n {
                b[i * nrhs + r] = br[i];
                expected[i * nrhs + r] = xr[i];
            }
        }
        let solver = ParallelSolver::new(3, Schedule::Guided { min_chunk: 1 });
        let x = solver.solve_batch(&s, &b, nrhs).unwrap();
        assert!(ops::relative_error_inf(&x, &expected) < 1e-12);
        let x_seq = s.solve_batch(&b, nrhs).unwrap();
        assert!(ops::relative_error_inf(&x_seq, &expected) < 1e-12);
    }

    #[test]
    fn split_solver_rejects_bad_inputs() {
        let l = generators::paper_figure1_l();
        let s = Method::CsrLs.build(&l, 2).unwrap();
        let solver = ParallelSolver::new(2, Schedule::Static);
        assert!(solver.solve_split(&s, &[1.0; 4]).is_err());
        assert!(solver.solve_batch(&s, &[1.0; 9], 0).is_err());
        assert!(solver.solve_batch(&s, &[1.0; 10], 2).is_err());
        assert!(solver.solve_pipelined(&s, &[1.0; 4]).is_err());
        assert!(solver.solve_batch_pipelined(&s, &[1.0; 9], 0).is_err());
        assert!(solver.solve_batch_pipelined(&s, &[1.0; 10], 2).is_err());
    }

    #[test]
    fn pipelined_solver_matches_sequential_for_all_methods_and_threads() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
            let b = s.lower().multiply(&x_true).unwrap();
            let seq = s.solve_sequential(&b).unwrap();
            for threads in [1, 2, 4, 8] {
                let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
                let par = solver.solve_pipelined(&s, &b).unwrap();
                assert!(
                    ops::relative_error_inf(&par, &seq) < 1e-12,
                    "{} pipelined with {threads} threads diverged from sequential",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn pipelined_solver_is_stable_under_repeated_contention() {
        // The chain-heaviest ordering (level sets) re-solved many times on an
        // oversubscribed pool: races between lookahead gathers and chain
        // corrections would show up as sporadic divergence.
        let a = generators::grid2d_laplacian(24, 24).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Csr3Ls.build(&l, 6).unwrap();
        let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 7) as f64 * 0.2).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let seq = s.solve_sequential(&b).unwrap();
        let solver = ParallelSolver::new(8, Schedule::Guided { min_chunk: 1 });
        for round in 0..50 {
            let par = solver.solve_pipelined(&s, &b).unwrap();
            assert!(
                ops::relative_error_inf(&par, &seq) < 1e-12,
                "pipelined diverged on round {round}"
            );
        }
    }

    #[test]
    fn batch_pipelined_matches_single_rhs_solves() {
        let a = generators::grid2d_9point(12, 12).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let n = s.n();
        let nrhs = 3;
        let mut b = vec![0.0; n * nrhs];
        let mut expected = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            let x_true: Vec<f64> = (0..n).map(|i| (i + r) as f64 * 0.1 + 1.0).collect();
            let br = s.lower().multiply(&x_true).unwrap();
            let xr = s.solve_sequential(&br).unwrap();
            for i in 0..n {
                b[i * nrhs + r] = br[i];
                expected[i * nrhs + r] = xr[i];
            }
        }
        for threads in [1, 3, 8] {
            let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
            let x = solver.solve_batch_pipelined(&s, &b, nrhs).unwrap();
            assert!(
                ops::relative_error_inf(&x, &expected) < 1e-12,
                "batch pipelined diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn transpose_kernels_match_the_sequential_column_sweep() {
        let a = generators::triangulated_grid(14, 14, 2).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
            let b = s.lower().multiply_transpose(&x_true).unwrap();
            let seq = s.lower().solve_transpose_seq(&b).unwrap();
            for threads in [1, 2, 4, 8] {
                let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
                let split = solver.solve_transpose_split(&s, &b).unwrap();
                assert!(
                    ops::relative_error_inf(&split, &seq) < 1e-12,
                    "{} transpose split with {threads} threads diverged",
                    method.label()
                );
                let piped = solver.solve_transpose_pipelined(&s, &b).unwrap();
                assert!(
                    ops::relative_error_inf(&piped, &seq) < 1e-12,
                    "{} transpose pipelined with {threads} threads diverged",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn transpose_pipelined_is_stable_under_repeated_contention() {
        // Level sets have the deepest reverse dependence structure; an
        // oversubscribed pool re-solving many times would expose readiness
        // races as sporadic divergence.
        let a = generators::grid2d_laplacian(24, 24).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Csr3Ls.build(&l, 6).unwrap();
        let x_true: Vec<f64> = (0..s.n()).map(|i| 1.0 + (i % 7) as f64 * 0.2).collect();
        let b = s.lower().multiply_transpose(&x_true).unwrap();
        let seq = s.lower().solve_transpose_seq(&b).unwrap();
        let solver = ParallelSolver::new(8, Schedule::Guided { min_chunk: 1 });
        let mut plan = solver.plan_transpose(&s);
        let mut x = vec![0.0; s.n()];
        for round in 0..50 {
            solver
                .solve_transpose_pipelined_into(&s, &mut plan, &b, &mut x)
                .unwrap();
            assert!(
                ops::relative_error_inf(&x, &seq) < 1e-12,
                "transpose pipelined diverged on round {round}"
            );
        }
        assert_eq!(plan.generation(), 50, "each solve rewinds the plan once");
    }

    #[test]
    fn transpose_batch_pipelined_matches_single_rhs_solves() {
        let a = generators::grid2d_9point(12, 12).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let n = s.n();
        let nrhs = 3;
        let mut b = vec![0.0; n * nrhs];
        let mut expected = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            let x_true: Vec<f64> = (0..n).map(|i| (i + r) as f64 * 0.1 + 1.0).collect();
            let br = s.lower().multiply_transpose(&x_true).unwrap();
            let xr = s.lower().solve_transpose_seq(&br).unwrap();
            for i in 0..n {
                b[i * nrhs + r] = br[i];
                expected[i * nrhs + r] = xr[i];
            }
        }
        for threads in [1, 3, 8] {
            let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
            let x = solver
                .solve_transpose_batch_pipelined(&s, &b, nrhs)
                .unwrap();
            assert!(
                ops::relative_error_inf(&x, &expected) < 1e-12,
                "transpose batch pipelined diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn into_kernels_reuse_plans_across_solves_and_match_allocating_kernels() {
        let a = generators::grid2d_laplacian(16, 16).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let solver = ParallelSolver::new(4, Schedule::Guided { min_chunk: 1 });
        let mut fwd = solver.plan(&s);
        let mut bwd = solver.plan_transpose(&s);
        let mut x = vec![0.0; s.n()];
        for shift in 0..4 {
            let b: Vec<f64> = (0..s.n()).map(|i| 1.0 + ((i + shift) % 5) as f64).collect();
            solver
                .solve_pipelined_into(&s, &mut fwd, &b, &mut x)
                .unwrap();
            let reference = solver.solve_pipelined(&s, &b).unwrap();
            assert!(ops::relative_error_inf(&x, &reference) < 1e-15);
            solver
                .solve_transpose_pipelined_into(&s, &mut bwd, &b, &mut x)
                .unwrap();
            let reference = s.lower().solve_transpose_seq(&b).unwrap();
            assert!(ops::relative_error_inf(&x, &reference) < 1e-12);
        }
        // Batch kernels share the same plans.
        let nrhs = 2;
        let bb: Vec<f64> = (0..s.n() * nrhs).map(|k| 1.0 + (k % 3) as f64).collect();
        let mut xb = vec![0.0; s.n() * nrhs];
        solver
            .solve_batch_pipelined_into(&s, &mut fwd, &bb, &mut xb, nrhs)
            .unwrap();
        let reference = solver.solve_batch(&s, &bb, nrhs).unwrap();
        assert!(ops::relative_error_inf(&xb, &reference) < 1e-12);
        solver
            .solve_transpose_batch_pipelined_into(&s, &mut bwd, &bb, &mut xb, nrhs)
            .unwrap();
        let reference = solver
            .solve_transpose_batch_pipelined(&s, &bb, nrhs)
            .unwrap();
        assert!(ops::relative_error_inf(&xb, &reference) < 1e-15);
    }

    #[test]
    fn mismatched_plans_are_rejected() {
        let a = generators::grid2d_laplacian(10, 10).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 4).unwrap();
        let solver = ParallelSolver::new(3, Schedule::Static);
        let b = vec![1.0; s.n()];
        let mut x = vec![0.0; s.n()];
        // Wrong direction.
        let mut bwd = solver.plan_transpose(&s);
        assert!(solver
            .solve_pipelined_into(&s, &mut bwd, &b, &mut x)
            .is_err());
        let mut fwd = solver.plan(&s);
        assert!(solver
            .solve_transpose_pipelined_into(&s, &mut fwd, &b, &mut x)
            .is_err());
        // Wrong thread count.
        let other = ParallelSolver::new(2, Schedule::Static);
        let mut plan2 = other.plan(&s);
        assert!(solver
            .solve_pipelined_into(&s, &mut plan2, &b, &mut x)
            .is_err());
        // Wrong structure.
        let a2 = generators::grid2d_laplacian(9, 9).unwrap();
        let l2 = generators::lower_operand(&a2).unwrap();
        let s2 = Method::Sts3.build(&l2, 4).unwrap();
        let b2 = vec![1.0; s2.n()];
        let mut x2 = vec![0.0; s2.n()];
        let mut plan = solver.plan(&s);
        assert!(solver
            .solve_pipelined_into(&s2, &mut plan, &b2, &mut x2)
            .is_err());
        // Same n, pack count and thread count but different pack boundaries:
        // a structurally stale plan must still be rejected (the row ranges
        // it would hand the gather closures race the other structure's chain
        // tasks).
        let l9 = generators::paper_figure1_l();
        let order = vec![0usize, 1, 4, 2, 3, 5, 6, 7, 8];
        let perm = sts_graph::Permutation::from_new_to_old(order).unwrap();
        let lp = l9.permute_symmetric(perm.new_to_old()).unwrap();
        let index2: Vec<usize> = (0..=9).collect();
        let sa = StsStructure::new(
            1,
            crate::builder::Ordering::LevelSet,
            vec![0, 3, 5, 6, 7, 8, 9],
            index2.clone(),
            lp.clone(),
            perm.clone(),
        )
        .unwrap();
        let sb = StsStructure::new(
            1,
            crate::builder::Ordering::LevelSet,
            vec![0, 2, 5, 6, 7, 8, 9],
            index2,
            lp,
            perm,
        )
        .unwrap();
        assert_eq!(sa.n(), sb.n());
        assert_eq!(sa.num_packs(), sb.num_packs());
        let b9 = vec![1.0; 9];
        let mut x9 = vec![0.0; 9];
        let mut plan_a = solver.plan(&sa);
        assert!(solver
            .solve_pipelined_into(&sb, &mut plan_a, &b9, &mut x9)
            .is_err());
        // ... and the plan still works against its own structure.
        assert!(solver
            .solve_pipelined_into(&sa, &mut plan_a, &b9, &mut x9)
            .is_ok());
    }

    #[test]
    fn single_worker_solves_still_stamp_the_plan_generation() {
        let a = generators::grid2d_laplacian(8, 8).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 4).unwrap();
        let solver = ParallelSolver::new(1, Schedule::Static);
        let mut plan = solver.plan(&s);
        let b = vec![1.0; s.n()];
        let mut x = vec![0.0; s.n()];
        for round in 1..=3 {
            solver
                .solve_pipelined_into(&s, &mut plan, &b, &mut x)
                .unwrap();
            assert_eq!(plan.generation(), round);
        }
    }

    #[test]
    fn pool_spmv_matches_the_sequential_product() {
        let a = generators::grid2d_9point(13, 11).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| 0.3 + (i % 7) as f64 * 0.5).collect();
        let expected = ops::spmv(&a, &x).unwrap();
        for threads in [1, 2, 4, 8] {
            let solver = ParallelSolver::new(threads, Schedule::Static);
            let mut y = vec![0.0; a.nrows()];
            solver.spmv_into(&a, &x, &mut y).unwrap();
            assert!(ops::relative_error_inf(&y, &expected) < 1e-14);
        }
        // Batch: interleaved copies scaled per system.
        let nrhs = 3;
        let xb: Vec<f64> = (0..a.ncols() * nrhs)
            .map(|k| x[k / nrhs] * (1.0 + (k % nrhs) as f64))
            .collect();
        let solver = ParallelSolver::new(4, Schedule::Static);
        let mut yb = vec![0.0; a.nrows() * nrhs];
        solver.spmv_batch_into(&a, &xb, &mut yb, nrhs).unwrap();
        for i in 0..a.nrows() {
            for r in 0..nrhs {
                let want = expected[i] * (1.0 + r as f64);
                assert!((yb[i * nrhs + r] - want).abs() <= 1e-12 * want.abs().max(1.0));
            }
        }
        // Bad shapes are rejected.
        let mut y = vec![0.0; a.nrows()];
        assert!(solver.spmv_into(&a, &x[1..], &mut y).is_err());
        assert!(solver.spmv_batch_into(&a, &xb, &mut yb, 0).is_err());
    }

    #[test]
    fn pinned_solver_solves_correctly() {
        let topo = sts_numa::NumaTopology::detect_host();
        let order = topo.compact_core_order(2);
        let a = generators::grid2d_laplacian(10, 10).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 4).unwrap();
        let solver = ParallelSolver::with_pinning(2, Schedule::Guided { min_chunk: 1 }, &order);
        let x_true = vec![2.0; s.n()];
        let b = s.lower().multiply(&x_true).unwrap();
        let x = solver.solve(&s, &b).unwrap();
        assert!(ops::relative_error_inf(&x, &x_true) < 1e-10);
    }

    #[test]
    fn solve_with_is_bitwise_identical_to_every_named_entry() {
        let a = generators::triangulated_grid(12, 12, 1).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let n = s.n();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let nrhs = 3;
        let bb: Vec<f64> = (0..n * nrhs)
            .map(|k| 1.0 + (k % 11) as f64 * 0.125)
            .collect();
        let solver = ParallelSolver::new(4, Schedule::Guided { min_chunk: 1 });
        let opt = SolveOptions::default;
        // Every named entry must agree bitwise with the solve_with request it
        // wraps — the API-redesign contract (assert_eq on f64 vectors).
        assert_eq!(
            solver.solve(&s, &b).unwrap(),
            solver
                .solve_with(&s, &b, &opt().with_engine(SolveEngine::Parallel))
                .unwrap()
        );
        assert_eq!(
            solver.solve_split(&s, &b).unwrap(),
            solver
                .solve_with(&s, &b, &opt().with_engine(SolveEngine::Split))
                .unwrap()
        );
        assert_eq!(
            solver.solve_batch(&s, &bb, nrhs).unwrap(),
            solver
                .solve_with(
                    &s,
                    &bb,
                    &opt().with_engine(SolveEngine::Split).with_nrhs(nrhs)
                )
                .unwrap()
        );
        assert_eq!(
            solver.solve_pipelined(&s, &b).unwrap(),
            solver.solve_with(&s, &b, &opt()).unwrap()
        );
        assert_eq!(
            solver.solve_batch_pipelined(&s, &bb, nrhs).unwrap(),
            solver.solve_with(&s, &bb, &opt().with_nrhs(nrhs)).unwrap()
        );
        assert_eq!(
            solver.solve_transpose_split(&s, &b).unwrap(),
            solver
                .solve_with(
                    &s,
                    &b,
                    &opt()
                        .with_engine(SolveEngine::Split)
                        .with_direction(SweepDirection::Transpose)
                )
                .unwrap()
        );
        assert_eq!(
            solver.solve_transpose_pipelined(&s, &b).unwrap(),
            solver
                .solve_with(&s, &b, &opt().with_direction(SweepDirection::Transpose))
                .unwrap()
        );
        assert_eq!(
            solver
                .solve_transpose_batch_pipelined(&s, &bb, nrhs)
                .unwrap(),
            solver
                .solve_with(
                    &s,
                    &bb,
                    &opt()
                        .with_direction(SweepDirection::Transpose)
                        .with_nrhs(nrhs)
                )
                .unwrap()
        );
        // Sequential engine matches the structure's own kernels bitwise.
        assert_eq!(
            s.solve_sequential_split(&b).unwrap(),
            solver
                .solve_with(&s, &b, &opt().with_engine(SolveEngine::Sequential))
                .unwrap()
        );
        assert_eq!(
            s.solve_transpose_sequential_split(&b).unwrap(),
            solver
                .solve_with(
                    &s,
                    &b,
                    &opt()
                        .with_engine(SolveEngine::Sequential)
                        .with_direction(SweepDirection::Transpose)
                )
                .unwrap()
        );
    }

    #[test]
    fn f32_kernels_agree_bitwise_across_engines_and_approximate_f64() {
        let a = generators::triangulated_grid(12, 12, 3).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let n = s.n();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        let b = s.lower().multiply(&x_true).unwrap();
        let f64_ref = s.solve_sequential_split(&b).unwrap();
        let seq32 = s.solve_sequential_split_f32(&b).unwrap();
        for threads in [1, 2, 4] {
            let solver = ParallelSolver::new(threads, Schedule::Guided { min_chunk: 1 });
            let split32 = solver.solve_split_f32(&s, &b).unwrap();
            let pipe32 = solver
                .solve_with(
                    &s,
                    &b,
                    &SolveOptions::default()
                        .with_precision(PrecisionPolicy::ValuesF32WithRefinement),
                )
                .unwrap();
            // The mixed-precision kernels round only the stored values; the
            // f64 accumulation order is engine-invariant, so all engines give
            // the exact same bits.
            assert_eq!(seq32, split32, "split f32 diverged at {threads} threads");
            assert_eq!(seq32, pipe32, "pipelined f32 diverged at {threads} threads");
            // Transpose engines agree with each other the same way.
            let tseq32 = s.solve_transpose_sequential_split_f32(&b).unwrap();
            let tsplit32 = solver.solve_transpose_split_f32(&s, &b).unwrap();
            assert_eq!(tseq32, tsplit32);
        }
        // And the sweep is accurate to at least roughly single precision
        // before any refinement (exactly f64 when every stored value is
        // f32-representable, as on integer-valued operands).
        assert!(ops::relative_error_inf(&seq32, &f64_ref) < 1e-4);
    }

    #[test]
    fn solve_with_rejects_unsupported_combinations() {
        let l = generators::paper_figure1_l();
        let s = Method::Sts3.build(&l, 2).unwrap();
        let solver = ParallelSolver::new(2, Schedule::Static);
        let b = vec![1.0; s.n()];
        // nrhs == 0 is a dimension error on every engine.
        assert!(matches!(
            solver.solve_with(&s, &b, &SolveOptions::default().with_nrhs(0)),
            Err(MatrixError::DimensionMismatch(_))
        ));
        // The unsplit parallel engine has no transpose/batch/f32 kernels.
        for bad in [
            SolveOptions::default()
                .with_engine(SolveEngine::Parallel)
                .with_direction(SweepDirection::Transpose),
            SolveOptions::default()
                .with_engine(SolveEngine::Parallel)
                .with_nrhs(2),
            SolveOptions::default()
                .with_engine(SolveEngine::Parallel)
                .with_precision(PrecisionPolicy::ValuesF32WithRefinement),
        ] {
            let blen = s.n() * bad.nrhs;
            assert!(matches!(
                solver.solve_with(&s, &vec![1.0; blen], &bad),
                Err(MatrixError::InvalidParameter(_))
            ));
        }
        // The split engine has no transpose batch kernel.
        assert!(matches!(
            solver.solve_with(
                &s,
                &vec![1.0; s.n() * 2],
                &SolveOptions::default()
                    .with_engine(SolveEngine::Split)
                    .with_direction(SweepDirection::Transpose)
                    .with_nrhs(2)
            ),
            Err(MatrixError::InvalidParameter(_))
        ));
    }

    #[test]
    fn f32_batch_kernels_match_per_rhs_f32_solves() {
        let a = generators::grid2d_9point(11, 11).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 5).unwrap();
        let n = s.n();
        let nrhs = 3;
        let mut b = vec![0.0; n * nrhs];
        let mut expected = vec![0.0; n * nrhs];
        let solver = ParallelSolver::new(3, Schedule::Guided { min_chunk: 1 });
        for r in 0..nrhs {
            let br: Vec<f64> = (0..n).map(|i| 1.0 + ((i + r) % 9) as f64 * 0.2).collect();
            let xr = solver.solve_split_f32(&s, &br).unwrap();
            for i in 0..n {
                b[i * nrhs + r] = br[i];
                expected[i * nrhs + r] = xr[i];
            }
        }
        let f32_opts = SolveOptions::default()
            .with_precision(PrecisionPolicy::ValuesF32WithRefinement)
            .with_nrhs(nrhs);
        let batch_pipe = solver.solve_with(&s, &b, &f32_opts).unwrap();
        let batch_split = solver
            .solve_with(&s, &b, &f32_opts.with_engine(SolveEngine::Split))
            .unwrap();
        let batch_seq = solver
            .solve_with(&s, &b, &f32_opts.with_engine(SolveEngine::Sequential))
            .unwrap();
        // The two parallel batch kernels share their arithmetic exactly; the
        // sequential batch kernel and the per-RHS solves fold the diagonal in
        // a different (equally valid) order, so those agree to rounding.
        assert_eq!(batch_pipe, batch_split);
        assert!(ops::relative_error_inf(&batch_pipe, &expected) < 1e-12);
        assert!(ops::relative_error_inf(&batch_seq, &expected) < 1e-12);
    }
}
