//! Schedule-only level-scheduled solver for the *original* system.
//!
//! Some callers cannot reorder their triangular matrix (for instance when `L`
//! is an exact factor handed over by another component). For them this module
//! provides the classical Saltz level scheduling: dependency levels of the
//! rows of `L` are computed once, and each level's rows are solved in parallel
//! without any permutation, so the result is the solution of the caller's own
//! `L x = b`.

use sts_graph::LevelSets;
use sts_matrix::{LowerTriangularCsr, MatrixError};
use sts_numa::{Schedule, WorkerPool};

use crate::csrk::Result;
use crate::solver::parallel::SharedVec;

/// A level-scheduled solver for a fixed lower-triangular matrix.
pub struct LevelScheduledSolver {
    l: LowerTriangularCsr,
    /// Rows grouped by dependency level, each level sorted by row index.
    levels: Vec<Vec<usize>>,
}

impl LevelScheduledSolver {
    /// Analyses the dependency levels of `l`.
    pub fn new(l: LowerTriangularCsr) -> Self {
        let levels = LevelSets::from_lower_triangular(&l).levels().to_vec();
        LevelScheduledSolver { l, levels }
    }

    /// Number of dependency levels (parallel steps).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The analysed matrix.
    pub fn lower(&self) -> &LowerTriangularCsr {
        &self.l
    }

    /// Solves `L x = b` sequentially (identical to
    /// [`LowerTriangularCsr::solve_seq`], provided for symmetry).
    pub fn solve_sequential(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.l.solve_seq(b)
    }

    /// Solves `L x = b` level by level on the given pool.
    pub fn solve_parallel(
        &self,
        pool: &WorkerPool,
        schedule: Schedule,
        b: &[f64],
    ) -> Result<Vec<f64>> {
        if b.len() != self.l.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {}",
                b.len(),
                self.l.n()
            )));
        }
        let mut x = vec![0.0f64; self.l.n()];
        {
            let shared = SharedVec::new(&mut x);
            let row_ptr = self.l.row_ptr();
            let col_idx = self.l.col_idx();
            let values = self.l.values();
            for level in &self.levels {
                pool.parallel_for(level.len(), schedule, &|t| {
                    let i = level[t];
                    let start = row_ptr[i];
                    let end = row_ptr[i + 1];
                    let mut acc = 0.0;
                    for k in start..end - 1 {
                        // SAFETY: dependencies of a level-`d` row live in
                        // levels < d, fully written before this level started.
                        acc += values[k] * unsafe { shared.read(col_idx[k]) };
                    }
                    // SAFETY: each row belongs to exactly one level entry.
                    unsafe { shared.write(i, (b[i] - acc) / values[end - 1]) };
                })
                .map_err(crate::solver::parallel::pool_error_to_matrix)?;
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::{generators, ops};

    #[test]
    fn level_counts_match_level_sets() {
        let l = generators::paper_figure1_l();
        let solver = LevelScheduledSolver::new(l);
        assert_eq!(solver.num_levels(), 6);
    }

    #[test]
    fn parallel_solution_matches_sequential_and_is_in_original_ordering() {
        let a = generators::triangulated_grid(12, 12, 5).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let x_true: Vec<f64> = (0..l.n()).map(|i| (i % 9) as f64 - 4.0).collect();
        let b = l.multiply(&x_true).unwrap();
        let solver = LevelScheduledSolver::new(l);
        let pool = WorkerPool::new(4);
        let x = solver
            .solve_parallel(&pool, Schedule::Dynamic { chunk: 8 }, &b)
            .unwrap();
        // The result is the original system's solution — no permutation.
        assert!(ops::relative_error_inf(&x, &x_true) < 1e-10);
        let seq = solver.solve_sequential(&b).unwrap();
        assert!(ops::relative_error_inf(&x, &seq) < 1e-13);
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let solver = LevelScheduledSolver::new(generators::paper_figure1_l());
        let pool = WorkerPool::new(2);
        assert!(solver
            .solve_parallel(&pool, Schedule::Static, &[0.0; 2])
            .is_err());
    }

    #[test]
    fn diagonal_matrix_solves_in_one_level() {
        let l = generators::random_lower_triangular(50, 0.0, 3).unwrap();
        let solver = LevelScheduledSolver::new(l.clone());
        assert_eq!(solver.num_levels(), 1);
        let b = vec![3.0; 50];
        let pool = WorkerPool::new(3);
        let x = solver
            .solve_parallel(&pool, Schedule::Guided { min_chunk: 1 }, &b)
            .unwrap();
        let seq = l.solve_seq(&b).unwrap();
        assert!(ops::relative_error_inf(&x, &seq) < 1e-14);
    }
}
