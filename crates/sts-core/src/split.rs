//! The dependency-split CSR layout behind the two-phase solve engine.
//!
//! The pack-parallel solver's critical path walks every row's full nonzero
//! list between two barriers. But most of those nonzeros reference rows of
//! *earlier* packs — components that are already final when the pack starts.
//! Only the few entries that reference the row's own super-row form a true
//! dependence chain. [`SplitLayout`] materialises that distinction at build
//! time by splitting every row's off-diagonal entries into two slabs:
//!
//! * the **external** slab holds the `(col, val)` pairs whose column belongs
//!   to an earlier pack. Gathering them is a pure sparse-matrix-vector
//!   product against finalized data — embarrassingly parallel, no ordering
//!   constraint, bandwidth-bound streaming;
//! * the **internal** slab holds the entries whose column belongs to the same
//!   pack (and therefore, by [`StsStructure::validate`]'s pack-independence
//!   invariant, to the same super-row). This is the short true dependence
//!   chain that must run under the pack schedule.
//!
//! Both slabs are stored contiguously in pack-major, row-major order — the
//! rows of a pack are contiguous in the reordered numbering, so a pack's
//! external slab is one dense streamable range. The reciprocal of each
//! diagonal is precomputed so the substitution multiplies instead of divides.
//!
//! For the pack-pipelined kernel the layout additionally records **readiness
//! metadata**: for every row, the number of leading packs that must be done
//! before its external reads are final ([`SplitLayout::ext_dep`] — `1 +` the
//! latest earlier pack the row's external entries reference, `0` when it has
//! none; a row whose latest dependency is pack 0 therefore stores `1`, not
//! `0`). A phase-1 gather chunk is ready as soon as the packs
//! `0..max(ext_dep)` of its rows are *done* — typically much earlier than
//! "the previous pack is done", which is the slack barrier fusion converts
//! into overlap.
//!
//! The layout duplicates the operand's off-diagonal storage (ext + int slabs
//! hold every strictly-lower entry exactly once, next to the original CSR
//! arrays). It is therefore built **lazily**: [`StsStructure::split`] builds
//! it on first use (and the split kernels force it), so unsplit-only callers
//! skip the ≈2× off-diagonal storage and the build sweep entirely.
//!
//! [`StsStructure::split`]: crate::csrk::StsStructure::split
//!
//! [`StsStructure::validate`]: crate::csrk::StsStructure::validate

use std::sync::OnceLock;

use sts_matrix::LowerTriangularCsr;

/// Per-row split of the reordered operand into external (off-pack) and
/// internal (in-pack) slabs, plus the readiness metadata the pipelined
/// kernel schedules against. Built lazily by the first
/// [`StsStructure::split`](crate::csrk::StsStructure::split) call; immutable
/// afterwards.
#[derive(Debug, Clone)]
pub struct SplitLayout {
    /// CSR row pointer over the external slab (`n + 1` entries).
    ext_row_ptr: Vec<usize>,
    /// Columns of the external slab, referencing rows of earlier packs
    /// only. Stored as `u32` to halve the slab's index traffic
    /// ([`StsStructure::new`](crate::csrk::StsStructure::new) rejects
    /// systems with more than 2^32 rows).
    ext_cols: Vec<u32>,
    /// Values of the external slab.
    ext_vals: Vec<f64>,
    /// CSR row pointer over the internal slab (`n + 1` entries).
    int_row_ptr: Vec<usize>,
    /// Columns of the internal slab, referencing rows of the same
    /// super-row, as `u32` like `ext_cols`.
    int_cols: Vec<u32>,
    /// Values of the internal slab.
    int_vals: Vec<f64>,
    /// Reciprocal diagonal, `1.0 / L'[i][i]`.
    inv_diag: Vec<f64>,
    /// Super-rows owning at least one internal entry ("chain tasks"),
    /// grouped by pack: the chain tasks of pack `p` are
    /// `chain_srs[chain_sr_ptr[p]..chain_sr_ptr[p + 1]]`. Phase 2 dispatches
    /// only these; all other super-rows are final after phase 1.
    chain_srs: Vec<usize>,
    /// Pack pointer into `chain_srs` (`num_packs + 1` entries).
    chain_sr_ptr: Vec<usize>,
    /// The chain *rows* (rows with internal entries) of each chain task, in
    /// row order: task `t` of `chain_srs` owns
    /// `chain_rows[chain_row_ptr[t]..chain_row_ptr[t + 1]]`. Phase 2 visits
    /// exactly these rows and no others.
    chain_rows: Vec<u32>,
    /// Task pointer into `chain_rows` (`chain_srs.len() + 1` entries).
    chain_row_ptr: Vec<usize>,
    /// Per-row readiness: `1 + (latest pack referenced by the row's external
    /// entries)`, `0` when the row has none. The row's phase-1 gather may run
    /// as soon as packs `0..ext_dep[i]` are done.
    ext_dep: Vec<u32>,
    /// Lazily demoted `f32` copy of `ext_vals` for the mixed-precision
    /// kernels (storage-only — accumulation stays `f64`). Built on first
    /// [`SplitLayout::ext_vals_f32`] call so `f64`-only callers never pay
    /// the extra storage; ignored by `PartialEq` like the lazy caches on
    /// `StsStructure`.
    ext_vals_f32: OnceLock<Vec<f32>>,
    /// Lazily demoted `f32` copy of `int_vals` (see `ext_vals_f32`).
    int_vals_f32: OnceLock<Vec<f32>>,
}

/// Equality compares the built slabs and metadata; the lazily demoted `f32`
/// value caches are derived data and are ignored (the same convention as
/// `StsStructure`'s lazy layout caches).
impl PartialEq for SplitLayout {
    fn eq(&self, other: &SplitLayout) -> bool {
        self.ext_row_ptr == other.ext_row_ptr
            && self.ext_cols == other.ext_cols
            && self.ext_vals == other.ext_vals
            && self.int_row_ptr == other.int_row_ptr
            && self.int_cols == other.int_cols
            && self.int_vals == other.int_vals
            && self.inv_diag == other.inv_diag
            && self.chain_srs == other.chain_srs
            && self.chain_sr_ptr == other.chain_sr_ptr
            && self.chain_rows == other.chain_rows
            && self.chain_row_ptr == other.chain_row_ptr
            && self.ext_dep == other.ext_dep
    }
}

impl SplitLayout {
    /// Splits the reordered operand's rows at each row's pack boundary.
    ///
    /// `pack_start_row[i]` must be the first row of the pack containing row
    /// `i`: because packs execute in row order, a column is external exactly
    /// when it is smaller than its row's pack start. `index3`/`index2` are
    /// the validated hierarchy arrays, used to group the chain tasks by
    /// pack.
    pub(crate) fn build(
        l: &LowerTriangularCsr,
        pack_start_row: &[usize],
        index3: &[usize],
        index2: &[usize],
    ) -> SplitLayout {
        let n = l.n();
        // Enforced with a proper error by StsStructure::new before this runs.
        debug_assert!(
            n == 0 || n - 1 <= u32::MAX as usize,
            "columns are stored as u32"
        );
        let row_ptr = l.row_ptr();
        let col_idx = l.col_idx();
        let values = l.values();
        let off_diag = l.nnz() - n;
        let num_packs = index3.len() - 1;
        // Row → pack lookup, for the readiness metadata below.
        let mut pack_of_row = vec![0u32; n];
        for p in 0..num_packs {
            let rows = index2[index3[p]]..index2[index3[p + 1]];
            pack_of_row[rows].fill(p as u32);
        }
        let mut ext_row_ptr = Vec::with_capacity(n + 1);
        let mut int_row_ptr = Vec::with_capacity(n + 1);
        let mut ext_cols = Vec::with_capacity(off_diag);
        let mut ext_vals = Vec::with_capacity(off_diag);
        let mut int_cols = Vec::new();
        let mut int_vals = Vec::new();
        let mut inv_diag = Vec::with_capacity(n);
        let mut ext_dep = Vec::with_capacity(n);
        ext_row_ptr.push(0);
        int_row_ptr.push(0);
        for i in 0..n {
            let start = row_ptr[i];
            let end = row_ptr[i + 1];
            let pack_start = pack_start_row[i];
            let mut dep = 0u32;
            for k in start..end - 1 {
                if col_idx[k] < pack_start {
                    ext_cols.push(col_idx[k] as u32);
                    ext_vals.push(values[k]);
                    dep = dep.max(pack_of_row[col_idx[k]] + 1);
                } else {
                    int_cols.push(col_idx[k] as u32);
                    int_vals.push(values[k]);
                }
            }
            ext_row_ptr.push(ext_cols.len());
            int_row_ptr.push(int_cols.len());
            inv_diag.push(1.0 / values[end - 1]);
            debug_assert!(
                dep <= pack_of_row[i],
                "external reads stay in earlier packs"
            );
            ext_dep.push(dep);
        }
        // Group the super-rows that own internal entries ("chain tasks") by
        // pack, and record each task's chain rows so phase 2 visits nothing
        // else.
        let mut chain_srs = Vec::new();
        let mut chain_sr_ptr = Vec::with_capacity(num_packs + 1);
        let mut chain_rows = Vec::new();
        let mut chain_row_ptr = vec![0usize];
        chain_sr_ptr.push(0);
        for p in 0..num_packs {
            for sr in index3[p]..index3[p + 1] {
                if int_row_ptr[index2[sr]] == int_row_ptr[index2[sr + 1]] {
                    continue;
                }
                chain_srs.push(sr);
                for r in index2[sr]..index2[sr + 1] {
                    if int_row_ptr[r] != int_row_ptr[r + 1] {
                        chain_rows.push(r as u32);
                    }
                }
                chain_row_ptr.push(chain_rows.len());
            }
            chain_sr_ptr.push(chain_srs.len());
        }
        SplitLayout {
            ext_row_ptr,
            ext_cols,
            ext_vals,
            int_row_ptr,
            int_cols,
            int_vals,
            inv_diag,
            chain_srs,
            chain_sr_ptr,
            chain_rows,
            chain_row_ptr,
            ext_dep,
            ext_vals_f32: OnceLock::new(),
            int_vals_f32: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.inv_diag.len()
    }

    /// Total entries in the external (off-pack) slab.
    pub fn ext_nnz(&self) -> usize {
        self.ext_cols.len()
    }

    /// Total entries in the internal (in-pack) slab.
    pub fn int_nnz(&self) -> usize {
        self.int_cols.len()
    }

    /// The demoted `f32` copy of the external value slab, built on first
    /// use (one rounding per entry; the reciprocal diagonal is *not*
    /// demoted). Thread-safe: concurrent first calls race benignly inside
    /// the `OnceLock`.
    #[inline]
    pub fn ext_vals_f32(&self) -> &[f32] {
        self.ext_vals_f32
            .get_or_init(|| self.ext_vals.iter().map(|&v| v as f32).collect())
    }

    /// The demoted `f32` copy of the internal value slab (see
    /// [`SplitLayout::ext_vals_f32`]).
    #[inline]
    pub fn int_vals_f32(&self) -> &[f32] {
        self.int_vals_f32
            .get_or_init(|| self.int_vals.iter().map(|&v| v as f32).collect())
    }

    /// Whether the demoted `f32` slabs have been built yet (diagnostic;
    /// `f64`-only callers should keep this `false`).
    pub fn f32_slabs_built(&self) -> bool {
        self.ext_vals_f32.get().is_some() && self.int_vals_f32.get().is_some()
    }

    /// The external slab's CSR row pointer (`n + 1` entries).
    #[inline]
    pub fn ext_row_ptr(&self) -> &[usize] {
        &self.ext_row_ptr
    }

    /// The external slab's column array.
    #[inline]
    pub fn ext_cols(&self) -> &[u32] {
        &self.ext_cols
    }

    /// The external slab's value array.
    #[inline]
    pub fn ext_vals(&self) -> &[f64] {
        &self.ext_vals
    }

    /// The internal slab's CSR row pointer (`n + 1` entries).
    #[inline]
    pub fn int_row_ptr(&self) -> &[usize] {
        &self.int_row_ptr
    }

    /// The internal slab's column array.
    #[inline]
    pub fn int_cols(&self) -> &[u32] {
        &self.int_cols
    }

    /// The internal slab's value array.
    #[inline]
    pub fn int_vals(&self) -> &[f64] {
        &self.int_vals
    }

    /// The reciprocal diagonal array.
    #[inline]
    pub fn inv_diags(&self) -> &[f64] {
        &self.inv_diag
    }

    /// External entries of row `i` as parallel `(cols, vals)` slices.
    #[inline]
    pub fn ext_row(&self, i: usize) -> (&[u32], &[f64]) {
        let r = self.ext_row_ptr[i]..self.ext_row_ptr[i + 1];
        (&self.ext_cols[r.clone()], &self.ext_vals[r])
    }

    /// Internal entries of row `i` as parallel `(cols, vals)` slices.
    #[inline]
    pub fn int_row(&self, i: usize) -> (&[u32], &[f64]) {
        let r = self.int_row_ptr[i]..self.int_row_ptr[i + 1];
        (&self.int_cols[r.clone()], &self.int_vals[r])
    }

    /// Reciprocal diagonal of row `i`.
    #[inline]
    pub fn inv_diag(&self, i: usize) -> f64 {
        self.inv_diag[i]
    }

    /// The chain tasks of pack `p`: the super-rows with at least one
    /// internal entry, i.e. the only tasks phase 2 must dispatch.
    #[inline]
    pub fn chain_super_rows(&self, p: usize) -> &[usize] {
        &self.chain_srs[self.chain_sr_ptr[p]..self.chain_sr_ptr[p + 1]]
    }

    /// The chain rows of the `t`-th chain task of pack `p`, in row order —
    /// exactly the rows phase 2 must correct for that task.
    #[inline]
    pub fn chain_rows_of(&self, p: usize, t: usize) -> &[u32] {
        let task = self.chain_sr_ptr[p] + t;
        &self.chain_rows[self.chain_row_ptr[task]..self.chain_row_ptr[task + 1]]
    }

    /// Per-row readiness metadata: `ext_dep()[i]` is `1 +` the latest pack
    /// referenced by row `i`'s external entries (`0` when it has none). Row
    /// `i`'s phase-1 gather may run as soon as packs `0..ext_dep()[i]` are
    /// done.
    #[inline]
    pub fn ext_dep(&self) -> &[u32] {
        &self.ext_dep
    }

    /// Readiness of a contiguous row range (a phase-1 gather chunk): the
    /// number of leading packs that must be done before every external read
    /// of the range is final. Always `≤` the range's own pack, and for
    /// chained orderings typically `<` — the slack the pipelined kernel
    /// overlaps.
    #[inline]
    pub fn range_ext_dep(&self, rows: std::ops::Range<usize>) -> u32 {
        self.ext_dep[rows].iter().copied().max().unwrap_or(0)
    }

    /// External entries of a contiguous row range, as one streamable slab
    /// (used by benches to verify the layout is contiguous per pack).
    pub fn ext_range_nnz(&self, rows: std::ops::Range<usize>) -> usize {
        self.ext_row_ptr[rows.end] - self.ext_row_ptr[rows.start]
    }

    /// Internal entries of a contiguous row range.
    pub fn int_range_nnz(&self, rows: std::ops::Range<usize>) -> usize {
        self.int_row_ptr[rows.end] - self.int_row_ptr[rows.start]
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Method;
    use sts_matrix::generators;

    #[test]
    fn slabs_partition_the_off_diagonal_entries() {
        let a = generators::triangulated_grid(12, 12, 1).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let split = s.split();
            assert_eq!(split.n(), s.n());
            assert_eq!(
                split.ext_nnz() + split.int_nnz(),
                s.nnz() - s.n(),
                "{}: ext + int must cover every strictly-lower entry",
                method.label()
            );
        }
    }

    #[test]
    fn external_entries_reference_earlier_packs_only() {
        let a = generators::grid2d_9point(14, 14).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 8).unwrap();
        let split = s.split();
        for p in 0..s.num_packs() {
            let rows = s.pack_rows(p);
            for i in rows.clone() {
                let (ext_cols, _) = split.ext_row(i);
                assert!(ext_cols.iter().all(|&j| (j as usize) < rows.start));
                let (int_cols, _) = split.int_row(i);
                assert!(int_cols
                    .iter()
                    .all(|&j| rows.contains(&(j as usize)) && (j as usize) < i));
            }
        }
    }

    #[test]
    fn internal_entries_stay_inside_the_super_row() {
        let a = generators::triangulated_grid(10, 10, 4).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 4).unwrap();
        let split = s.split();
        for sr in 0..s.num_super_rows() {
            let rows = s.super_row_rows(sr);
            for i in rows.clone() {
                let (int_cols, _) = split.int_row(i);
                assert!(
                    int_cols.iter().all(|&j| rows.contains(&(j as usize))),
                    "internal entry of row {i} escapes super-row {sr}"
                );
            }
        }
    }

    #[test]
    fn range_nnz_matches_per_row_sums() {
        let a = generators::grid2d_laplacian(9, 9).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Csr3Ls.build(&l, 6).unwrap();
        let split = s.split();
        for p in 0..s.num_packs() {
            let rows = s.pack_rows(p);
            let ext_sum: usize = rows.clone().map(|i| split.ext_row(i).0.len()).sum();
            let int_sum: usize = rows.clone().map(|i| split.int_row(i).0.len()).sum();
            assert_eq!(split.ext_range_nnz(rows.clone()), ext_sum);
            assert_eq!(split.int_range_nnz(rows), int_sum);
        }
    }

    #[test]
    fn readiness_metadata_bounds_every_external_read() {
        let a = generators::triangulated_grid(12, 12, 7).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let split = s.split();
            // Row → pack lookup from the structure.
            let mut pack_of = vec![0usize; s.n()];
            for p in 0..s.num_packs() {
                for r in s.pack_rows(p) {
                    pack_of[r] = p;
                }
            }
            let mut any_slack = false;
            for p in 0..s.num_packs() {
                let rows = s.pack_rows(p);
                assert!(split.range_ext_dep(rows.clone()) as usize <= p);
                for i in rows {
                    let dep = split.ext_dep()[i];
                    let (cols, _) = split.ext_row(i);
                    // dep is exactly 1 + the latest referenced pack.
                    let latest = cols.iter().map(|&j| pack_of[j as usize] + 1).max();
                    assert_eq!(dep as usize, latest.unwrap_or(0));
                    if p > 0 && (dep as usize) < p {
                        any_slack = true;
                    }
                }
            }
            // The tentpole premise: some rows' gathers are ready before the
            // predecessor pack finishes (row-granular slack; whole packs
            // rarely have it under level-set orderings, where every level
            // depends on its predecessor by construction).
            if s.num_packs() > 2 {
                assert!(
                    any_slack,
                    "{}: no pipelining slack found in the readiness metadata",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn ext_dep_distinguishes_a_pack_zero_dependency_from_none() {
        // Level-set packs: pack 0 is the dependency-free level, and every
        // pack-1 row reads pack-0 rows only. The encoding must keep those two
        // cases apart: "no external reads" stores 0, "latest dependency is
        // pack 0" stores 1.
        let l = generators::paper_figure1_l();
        let s = Method::CsrLs.build(&l, 2).unwrap();
        assert!(s.num_packs() > 1);
        let split = s.split();
        for i in s.pack_rows(0) {
            assert_eq!(split.ext_dep()[i], 0, "pack-0 row {i} has no dependency");
        }
        let pack0 = s.pack_rows(0);
        let mut saw_boundary_row = false;
        for i in s.pack_rows(1) {
            let (cols, _) = split.ext_row(i);
            if cols.is_empty() {
                assert_eq!(split.ext_dep()[i], 0);
                continue;
            }
            assert!(cols.iter().all(|&j| pack0.contains(&(j as usize))));
            assert_eq!(
                split.ext_dep()[i],
                1,
                "row {i}'s latest dependency is pack 0, so it must store 1, not 0"
            );
            saw_boundary_row = true;
        }
        assert!(saw_boundary_row, "some pack-1 row depends on pack 0");
    }

    #[test]
    fn inv_diag_is_the_reciprocal_of_the_stored_diagonal() {
        let l = generators::paper_figure1_l();
        let s = Method::CsrCol.build(&l, 2).unwrap();
        let split = s.split();
        for i in 0..s.n() {
            assert!((split.inv_diag(i) * s.lower().diag(i) - 1.0).abs() < 1e-15);
        }
    }
}
