//! The transpose dependency-split layout behind the backward-sweep kernels.
//!
//! Preconditioned iterative solvers pair every forward sweep `L' y = r` with
//! a backward sweep `L'ᵀ z = t` — symmetric Gauss–Seidel and incomplete
//! Cholesky both apply the transpose once per iteration. The forward sweep
//! has the whole split/pipelined engine behind it; until this layout existed
//! the backward sweep fell back to the sequential column sweep, serialising
//! half of every preconditioner application.
//!
//! # Why reverse pack order is correct
//!
//! `L'ᵀ` is upper triangular: component `i` of the solution reads only
//! components `j > i` (`x[i] = (b[i] − Σ_{j>i} L'[j][i]·x[j]) / L'[i][i]`).
//! Classify each such read by where row `j` lives relative to row `i`'s pack:
//!
//! * if `j` is in a **different super-row**, then `L'[j][i] ≠ 0` means row
//!   `j` *depends on* row `i`, and [`StsStructure::validate`]'s
//!   pack-independence invariant forces `pack(j) > pack(i)` — a strictly
//!   **later** pack;
//! * otherwise `j` is in the **same super-row** as `i` (and the same pack).
//!
//! Executing the packs in **reverse order** therefore makes the transposed
//! system's dependence structure exactly mirror the forward one: when pack
//! `p` starts, every cross-super-row read targets a pack `> p` that has
//! already finished, so those entries gather in any order and any
//! interleaving (phase 1), and only the short within-super-row chains remain
//! ordered (phase 2, walking each super-row's rows in *decreasing* index
//! order, the reverse of the forward sweep). The two-phase and pipelined
//! forward kernels — and their barrier/epoch-gate correctness arguments —
//! carry over verbatim with the pack sequence reversed.
//!
//! # The layout
//!
//! [`TransposeLayout`] materialises the transposed operand's strictly-upper
//! entries row-wise (CSR of `L'ᵀ`, i.e. CSC of `L'` without the diagonal),
//! split per row into:
//!
//! * the **external** slab — entries whose row `j` lies in a *later* pack:
//!   a pure gather against finalized data once the packs after this one are
//!   done;
//! * the **internal** slab — entries whose row `j` shares the super-row: the
//!   true backward dependence chain.
//!
//! Readiness metadata is stamped in **reverse stage numbering**: the
//! pipelined backward kernel runs stage `s` = pack `num_packs − 1 − s`, so a
//! row whose latest external read targets pack `q` is ready once the first
//! `num_packs − q` *stages* are done ([`TransposeLayout::ext_dep`]). Chain
//! rows are stored per task in decreasing row order, so phase 2 iterates
//! them forward.
//!
//! Like the forward [`SplitLayout`](crate::split::SplitLayout), the layout
//! duplicates the off-diagonal storage and is therefore built lazily by the
//! first [`StsStructure::transpose_split`] call.
//!
//! [`StsStructure::transpose_split`]: crate::csrk::StsStructure::transpose_split
//! [`StsStructure::validate`]: crate::csrk::StsStructure::validate

use std::sync::OnceLock;

use sts_matrix::LowerTriangularCsr;

/// Per-row split of the transposed reordered operand into external
/// (later-pack) and internal (same-super-row) slabs, plus reverse-stage
/// readiness metadata. Built lazily by the first
/// [`StsStructure::transpose_split`](crate::csrk::StsStructure::transpose_split)
/// call; immutable afterwards.
#[derive(Debug, Clone)]
pub struct TransposeLayout {
    /// CSR row pointer over the external slab (`n + 1` entries).
    ext_row_ptr: Vec<usize>,
    /// Columns of the external slab: *rows of `L'`* in strictly later packs.
    ext_cols: Vec<u32>,
    /// Values of the external slab (`L'[j][i]` stored at transpose-row `i`).
    ext_vals: Vec<f64>,
    /// CSR row pointer over the internal slab (`n + 1` entries).
    int_row_ptr: Vec<usize>,
    /// Columns of the internal slab: rows of the same super-row, all `> i`.
    int_cols: Vec<u32>,
    /// Values of the internal slab.
    int_vals: Vec<f64>,
    /// Reciprocal diagonal, `1.0 / L'[i][i]` (the diagonal of `L'ᵀ` is the
    /// diagonal of `L'`).
    inv_diag: Vec<f64>,
    /// Super-rows owning at least one internal entry ("chain tasks"),
    /// grouped by pack exactly as in the forward layout.
    chain_srs: Vec<usize>,
    /// Pack pointer into `chain_srs` (`num_packs + 1` entries).
    chain_sr_ptr: Vec<usize>,
    /// The chain rows of each task in **decreasing** row order — the order
    /// the backward substitution must visit them.
    chain_rows: Vec<u32>,
    /// Task pointer into `chain_rows` (`chain_srs.len() + 1` entries).
    chain_row_ptr: Vec<usize>,
    /// Per-row readiness in reverse stage numbering: `num_packs − (earliest
    /// later pack referenced)` … i.e. `max_j (num_packs − pack(j))` over the
    /// row's external reads, `0` when it has none. The row's phase-1 gather
    /// may run as soon as the first `ext_dep[i]` *stages* (latest packs) are
    /// done.
    ext_dep: Vec<u32>,
    /// Lazily demoted `f32` copy of `ext_vals` for the mixed-precision
    /// backward kernels (storage-only; ignored by `PartialEq`).
    ext_vals_f32: OnceLock<Vec<f32>>,
    /// Lazily demoted `f32` copy of `int_vals` (see `ext_vals_f32`).
    int_vals_f32: OnceLock<Vec<f32>>,
}

/// Equality compares the built slabs and metadata; the lazily demoted `f32`
/// value caches are derived data and are ignored (the same convention as the
/// forward [`SplitLayout`](crate::split::SplitLayout)).
impl PartialEq for TransposeLayout {
    fn eq(&self, other: &TransposeLayout) -> bool {
        self.ext_row_ptr == other.ext_row_ptr
            && self.ext_cols == other.ext_cols
            && self.ext_vals == other.ext_vals
            && self.int_row_ptr == other.int_row_ptr
            && self.int_cols == other.int_cols
            && self.int_vals == other.int_vals
            && self.inv_diag == other.inv_diag
            && self.chain_srs == other.chain_srs
            && self.chain_sr_ptr == other.chain_sr_ptr
            && self.chain_rows == other.chain_rows
            && self.chain_row_ptr == other.chain_row_ptr
            && self.ext_dep == other.ext_dep
    }
}

impl TransposeLayout {
    /// Builds the transpose split of the reordered operand. `index3`/`index2`
    /// are the validated hierarchy arrays; classification relies on the
    /// pack-independence invariant (cross-super-row dependents live in
    /// strictly later packs).
    pub(crate) fn build(
        l: &LowerTriangularCsr,
        index3: &[usize],
        index2: &[usize],
    ) -> TransposeLayout {
        let n = l.n();
        debug_assert!(
            n == 0 || n - 1 <= u32::MAX as usize,
            "columns are stored as u32"
        );
        let row_ptr = l.row_ptr();
        let col_idx = l.col_idx();
        let values = l.values();
        let num_packs = index3.len() - 1;
        // Row → pack and row → super-row lookups.
        let mut pack_of_row = vec![0u32; n];
        for p in 0..num_packs {
            let rows = index2[index3[p]]..index2[index3[p + 1]];
            pack_of_row[rows].fill(p as u32);
        }
        // Counting pass: each strictly-lower entry (j, i) of L' is an entry
        // (i, j) of the transpose; classify by pack(j) vs pack(i).
        let mut ext_count = vec![0usize; n];
        let mut int_count = vec![0usize; n];
        for j in 0..n {
            for &i in &col_idx[row_ptr[j]..row_ptr[j + 1] - 1] {
                if pack_of_row[j] > pack_of_row[i] {
                    ext_count[i] += 1;
                } else {
                    // Same pack ⇒ same super-row by the pack-independence
                    // invariant; an *earlier* pack is impossible for j > i.
                    debug_assert_eq!(pack_of_row[j], pack_of_row[i]);
                    int_count[i] += 1;
                }
            }
        }
        let mut ext_row_ptr = Vec::with_capacity(n + 1);
        let mut int_row_ptr = Vec::with_capacity(n + 1);
        ext_row_ptr.push(0);
        int_row_ptr.push(0);
        for i in 0..n {
            ext_row_ptr.push(ext_row_ptr[i] + ext_count[i]);
            int_row_ptr.push(int_row_ptr[i] + int_count[i]);
        }
        let mut ext_cols = vec![0u32; ext_row_ptr[n]];
        let mut ext_vals = vec![0.0f64; ext_row_ptr[n]];
        let mut int_cols = vec![0u32; int_row_ptr[n]];
        let mut int_vals = vec![0.0f64; int_row_ptr[n]];
        let mut ext_dep = vec![0u32; n];
        // Fill pass; sweeping j in increasing order leaves every
        // transpose-row's columns sorted increasingly.
        let mut ext_cursor = ext_row_ptr[..n].to_vec();
        let mut int_cursor = int_row_ptr[..n].to_vec();
        for j in 0..n {
            for k in row_ptr[j]..row_ptr[j + 1] - 1 {
                let i = col_idx[k];
                if pack_of_row[j] > pack_of_row[i] {
                    ext_cols[ext_cursor[i]] = j as u32;
                    ext_vals[ext_cursor[i]] = values[k];
                    ext_cursor[i] += 1;
                    // Reverse-stage readiness: pack q is stage
                    // num_packs − 1 − q, so "stage of pack(j) done" is
                    // epoch ≥ num_packs − pack(j).
                    ext_dep[i] = ext_dep[i].max(num_packs as u32 - pack_of_row[j]);
                } else {
                    int_cols[int_cursor[i]] = j as u32;
                    int_vals[int_cursor[i]] = values[k];
                    int_cursor[i] += 1;
                }
            }
        }
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / l.diag(i)).collect();
        // Chain tasks: super-rows with at least one internal entry, grouped
        // by pack; each task's chain rows in decreasing row order (the
        // backward substitution order).
        let mut chain_srs = Vec::new();
        let mut chain_sr_ptr = Vec::with_capacity(num_packs + 1);
        let mut chain_rows = Vec::new();
        let mut chain_row_ptr = vec![0usize];
        chain_sr_ptr.push(0);
        for p in 0..num_packs {
            for sr in index3[p]..index3[p + 1] {
                let rows = index2[sr]..index2[sr + 1];
                if int_row_ptr[rows.start] == int_row_ptr[rows.end] {
                    continue;
                }
                chain_srs.push(sr);
                for r in rows.rev() {
                    if int_row_ptr[r] != int_row_ptr[r + 1] {
                        chain_rows.push(r as u32);
                    }
                }
                chain_row_ptr.push(chain_rows.len());
            }
            chain_sr_ptr.push(chain_srs.len());
        }
        TransposeLayout {
            ext_row_ptr,
            ext_cols,
            ext_vals,
            int_row_ptr,
            int_cols,
            int_vals,
            inv_diag,
            chain_srs,
            chain_sr_ptr,
            chain_rows,
            chain_row_ptr,
            ext_dep,
            ext_vals_f32: OnceLock::new(),
            int_vals_f32: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.inv_diag.len()
    }

    /// The demoted `f32` copy of the external value slab, built on first
    /// use (the reciprocal diagonal is *not* demoted). Thread-safe like the
    /// forward
    /// [`SplitLayout::ext_vals_f32`](crate::split::SplitLayout::ext_vals_f32).
    #[inline]
    pub fn ext_vals_f32(&self) -> &[f32] {
        self.ext_vals_f32
            .get_or_init(|| self.ext_vals.iter().map(|&v| v as f32).collect())
    }

    /// The demoted `f32` copy of the internal value slab (see
    /// [`TransposeLayout::ext_vals_f32`]).
    #[inline]
    pub fn int_vals_f32(&self) -> &[f32] {
        self.int_vals_f32
            .get_or_init(|| self.int_vals.iter().map(|&v| v as f32).collect())
    }

    /// Whether the demoted `f32` slabs have been built yet (diagnostic).
    pub fn f32_slabs_built(&self) -> bool {
        self.ext_vals_f32.get().is_some() && self.int_vals_f32.get().is_some()
    }

    /// Total entries in the external (later-pack) slab.
    pub fn ext_nnz(&self) -> usize {
        self.ext_cols.len()
    }

    /// Total entries in the internal (same-super-row) slab.
    pub fn int_nnz(&self) -> usize {
        self.int_cols.len()
    }

    /// The external slab's CSR row pointer (`n + 1` entries).
    #[inline]
    pub fn ext_row_ptr(&self) -> &[usize] {
        &self.ext_row_ptr
    }

    /// The external slab's column array (rows of `L'` in later packs).
    #[inline]
    pub fn ext_cols(&self) -> &[u32] {
        &self.ext_cols
    }

    /// The external slab's value array.
    #[inline]
    pub fn ext_vals(&self) -> &[f64] {
        &self.ext_vals
    }

    /// The internal slab's CSR row pointer (`n + 1` entries).
    #[inline]
    pub fn int_row_ptr(&self) -> &[usize] {
        &self.int_row_ptr
    }

    /// The internal slab's column array.
    #[inline]
    pub fn int_cols(&self) -> &[u32] {
        &self.int_cols
    }

    /// The internal slab's value array.
    #[inline]
    pub fn int_vals(&self) -> &[f64] {
        &self.int_vals
    }

    /// The reciprocal diagonal array.
    #[inline]
    pub fn inv_diags(&self) -> &[f64] {
        &self.inv_diag
    }

    /// External entries of transpose-row `i` as parallel `(cols, vals)`
    /// slices.
    #[inline]
    pub fn ext_row(&self, i: usize) -> (&[u32], &[f64]) {
        let r = self.ext_row_ptr[i]..self.ext_row_ptr[i + 1];
        (&self.ext_cols[r.clone()], &self.ext_vals[r])
    }

    /// Internal entries of transpose-row `i` as parallel `(cols, vals)`
    /// slices.
    #[inline]
    pub fn int_row(&self, i: usize) -> (&[u32], &[f64]) {
        let r = self.int_row_ptr[i]..self.int_row_ptr[i + 1];
        (&self.int_cols[r.clone()], &self.int_vals[r])
    }

    /// The chain tasks of pack `p`: the super-rows whose backward
    /// substitution has at least one internal entry.
    #[inline]
    pub fn chain_super_rows(&self, p: usize) -> &[usize] {
        &self.chain_srs[self.chain_sr_ptr[p]..self.chain_sr_ptr[p + 1]]
    }

    /// The chain rows of the `t`-th chain task of pack `p`, in *decreasing*
    /// row order — exactly the rows (and the order) the backward phase 2
    /// must correct.
    #[inline]
    pub fn chain_rows_of(&self, p: usize, t: usize) -> &[u32] {
        let task = self.chain_sr_ptr[p] + t;
        &self.chain_rows[self.chain_row_ptr[task]..self.chain_row_ptr[task + 1]]
    }

    /// Per-row readiness in reverse stage numbering (see the module docs):
    /// row `i`'s backward gather may run as soon as the first `ext_dep()[i]`
    /// stages — i.e. the last `ext_dep()[i]` packs — are done.
    #[inline]
    pub fn ext_dep(&self) -> &[u32] {
        &self.ext_dep
    }

    /// Readiness of a contiguous row range (a backward phase-1 gather
    /// chunk), in reverse stage numbering. Always `≤` the range's own stage.
    #[inline]
    pub fn range_ext_dep(&self, rows: std::ops::Range<usize>) -> u32 {
        self.ext_dep[rows].iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Method;
    use sts_matrix::generators;

    #[test]
    fn slabs_partition_the_strictly_lower_entries() {
        let a = generators::triangulated_grid(12, 12, 1).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let ts = s.transpose_split();
            assert_eq!(ts.n(), s.n());
            assert_eq!(
                ts.ext_nnz() + ts.int_nnz(),
                s.nnz() - s.n(),
                "{}: ext + int must cover every strictly-lower entry",
                method.label()
            );
        }
    }

    #[test]
    fn external_entries_reference_later_packs_only() {
        let a = generators::grid2d_9point(14, 14).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 8).unwrap();
        let ts = s.transpose_split();
        for p in 0..s.num_packs() {
            let rows = s.pack_rows(p);
            for i in rows.clone() {
                let (ext_cols, _) = ts.ext_row(i);
                assert!(
                    ext_cols.iter().all(|&j| (j as usize) >= rows.end),
                    "external transpose entry of row {i} does not reach a later pack"
                );
                let (int_cols, _) = ts.int_row(i);
                assert!(int_cols
                    .iter()
                    .all(|&j| rows.contains(&(j as usize)) && (j as usize) > i));
            }
        }
    }

    #[test]
    fn internal_entries_stay_inside_the_super_row() {
        let a = generators::triangulated_grid(10, 10, 4).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 4).unwrap();
        let ts = s.transpose_split();
        for sr in 0..s.num_super_rows() {
            let rows = s.super_row_rows(sr);
            for i in rows.clone() {
                let (int_cols, _) = ts.int_row(i);
                assert!(
                    int_cols.iter().all(|&j| rows.contains(&(j as usize))),
                    "internal transpose entry of row {i} escapes super-row {sr}"
                );
            }
        }
    }

    #[test]
    fn transpose_entries_mirror_the_forward_operand() {
        // Every (i, j, v) of the transpose layout must be a strictly-lower
        // (j, i, v) of L'.
        let a = generators::grid2d_laplacian(9, 9).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Csr3Ls.build(&l, 6).unwrap();
        let ts = s.transpose_split();
        let lp = s.lower();
        for i in 0..s.n() {
            for (cols, vals) in [ts.ext_row(i), ts.int_row(i)] {
                for (&j, &v) in cols.iter().zip(vals) {
                    let j = j as usize;
                    assert!(j > i);
                    let pos = lp
                        .row_off_diag_cols(j)
                        .iter()
                        .position(|&c| c == i)
                        .unwrap_or_else(|| panic!("transpose entry ({i}, {j}) not in L'"));
                    assert_eq!(lp.row_off_diag_values(j)[pos], v);
                }
            }
        }
    }

    #[test]
    fn chain_rows_are_stored_in_decreasing_order() {
        let a = generators::grid2d_laplacian(12, 12).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 6).unwrap();
        let ts = s.transpose_split();
        for p in 0..s.num_packs() {
            for t in 0..ts.chain_super_rows(p).len() {
                let rows = ts.chain_rows_of(p, t);
                assert!(!rows.is_empty());
                for w in rows.windows(2) {
                    assert!(
                        w[0] > w[1],
                        "chain rows must decrease for the backward sweep"
                    );
                }
            }
        }
    }

    #[test]
    fn readiness_metadata_bounds_every_external_read() {
        let a = generators::triangulated_grid(12, 12, 7).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let ts = s.transpose_split();
            let num_packs = s.num_packs();
            let mut pack_of = vec![0usize; s.n()];
            for p in 0..num_packs {
                for r in s.pack_rows(p) {
                    pack_of[r] = p;
                }
            }
            for p in 0..num_packs {
                let rows = s.pack_rows(p);
                // The range's stage is num_packs − 1 − p.
                assert!(ts.range_ext_dep(rows.clone()) as usize <= num_packs - 1 - p);
                for i in rows {
                    let (cols, _) = ts.ext_row(i);
                    let latest = cols
                        .iter()
                        .map(|&j| num_packs as u32 - pack_of[j as usize] as u32)
                        .max();
                    assert_eq!(ts.ext_dep()[i], latest.unwrap_or(0));
                }
            }
        }
    }
}
