//! Extraction of [`ScheduleSpec`]s from a structure's split layouts, and
//! the [`StsStructure::verify_schedule`] front door.
//!
//! The pack-parallel kernels are race-free only if the statically
//! precomputed readiness metadata ([`SplitLayout::ext_dep`] and the
//! transpose layout's reverse-stage equivalent) covers everything the tasks
//! actually read. This module makes that checkable: it rebuilds every
//! task's **exact** read/write footprint — phase-1 gather chunks (reads:
//! external slab columns, i.e. the `x` slots of other packs; writes: the
//! chunk's own partial rows), phase-2 chain tickets (reads: internal slab
//! columns plus the row's own partial; writes: the chain rows) and
//! `parallel_ic0` factor chunks (reads: the rows named by each row's
//! strictly-lower columns; writes: the row) — together with the
//! happens-before edges the kernels rely on (`EpochGate` readiness from
//! [`SplitLayout::range_ext_dep`], drain-gated ticket claims, program
//! order), and hands the model to the dependency-free checker in
//! [`sts_verify`].
//!
//! Chunk boundaries replicate the kernels' formulas verbatim: solve chunks
//! split a pack's rows as `rows.start + c·m/nchunks` with
//! `nchunks = workers.min(m)` (`ParallelSolver::build_plan`), factor chunks
//! split a pack's super-rows the same way (`ParallelSolver::parallel_ic0`).
//! Passing `threads = usize::MAX` therefore yields row- (super-row-)
//! granularity chunks — the sharpest check, since coarser chunks take the
//! `max` of their rows' readiness and can only over-synchronise.
//!
//! The verified model is the **pipelined** schedule — the weakest
//! synchronisation any engine uses. The split engine runs the same tasks
//! with full barriers between phases and packs (strictly more ordering), so
//! a pipelined proof covers it; the dynamic `race-shadow` cross-check (see
//! [`sts_verify::replay`]) validates the footprints against both engines.
//!
//! Under `debug_assertions`, the first build of each lazy layout re-runs
//! the corresponding checks ([`StsStructure::split`] /
//! [`StsStructure::transpose_split`]), so every structure any debug test
//! solves with is verified race- and deadlock-free at row granularity.

use sts_verify::{
    ChainSpec, ChunkSpec, RowFootprint, ScheduleProof, ScheduleSpec, ScheduleViolation, StageSpec,
};

use crate::csrk::StsStructure;
use crate::options::SweepDirection;
#[allow(unused_imports)] // doc links
use crate::split::SplitLayout;

/// Thread counts [`StsStructure::verify_schedule`] sweeps: the chunk
/// granularities CI exercises, plus `usize::MAX` for the row-granularity
/// bound.
pub const VERIFY_THREAD_SWEEP: [usize; 5] = [1, 2, 4, 8, usize::MAX];

/// Builds the static schedule model of one pipelined solve sweep at the
/// given worker count and direction. `threads = usize::MAX` gives
/// row-granularity chunks (the sharpest readiness check).
pub fn solve_spec(s: &StsStructure, threads: usize, direction: SweepDirection) -> ScheduleSpec {
    let workers = threads.max(1);
    let num_packs = s.num_packs();
    let mut stages = Vec::with_capacity(num_packs);
    for st in 0..num_packs {
        let stage = match direction {
            SweepDirection::Forward => {
                let split = s.split();
                build_stage(
                    st,
                    s.pack_rows(st),
                    workers,
                    split.ext_row_ptr(),
                    split.ext_cols(),
                    split.int_row_ptr(),
                    split.int_cols(),
                    |rows| split.range_ext_dep(rows) as usize,
                    split.chain_super_rows(st).len(),
                    |t| split.chain_rows_of(st, t),
                )
            }
            SweepDirection::Transpose => {
                let ts = s.transpose_split();
                let p = num_packs - 1 - st;
                build_stage(
                    p,
                    s.pack_rows(p),
                    workers,
                    ts.ext_row_ptr(),
                    ts.ext_cols(),
                    ts.int_row_ptr(),
                    ts.int_cols(),
                    |rows| ts.range_ext_dep(rows) as usize,
                    ts.chain_super_rows(p).len(),
                    |t| ts.chain_rows_of(p, t),
                )
            }
        };
        stages.push(stage);
    }
    ScheduleSpec {
        locations: s.n(),
        stages,
    }
}

/// One stage of a solve spec: the pack's phase-1 chunks (kernel chunking
/// formula) and phase-2 chain tickets, with footprints read off the slabs.
#[allow(clippy::too_many_arguments)]
fn build_stage<'a>(
    pack: usize,
    rows: std::ops::Range<usize>,
    workers: usize,
    erp: &[usize],
    ecols: &[u32],
    irp: &[usize],
    icols: &[u32],
    range_dep: impl Fn(std::ops::Range<usize>) -> usize,
    nchains: usize,
    chain_rows: impl Fn(usize) -> &'a [u32],
) -> StageSpec {
    let m = rows.len();
    let nchunks = workers.min(m);
    let mut chunks = Vec::with_capacity(nchunks);
    for c in 0..nchunks {
        let chunk = rows.start + c * m / nchunks..rows.start + (c + 1) * m / nchunks;
        let dep = range_dep(chunk.clone());
        let rows_fp = chunk
            .map(|i| RowFootprint {
                row: i,
                reads: ecols[erp[i]..erp[i + 1]]
                    .iter()
                    .map(|&j| j as usize)
                    .collect(),
            })
            .collect();
        chunks.push(ChunkSpec {
            dep,
            rows: rows_fp,
            publishes: true,
        });
    }
    let chains = (0..nchains)
        .map(|t| ChainSpec {
            claims_after_drain: true,
            rows: chain_rows(t)
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    RowFootprint {
                        row: i,
                        reads: icols[irp[i]..irp[i + 1]]
                            .iter()
                            .map(|&j| j as usize)
                            .collect(),
                    }
                })
                .collect(),
        })
        .collect();
    StageSpec {
        pack,
        chunks,
        chains,
    }
}

/// Builds the static schedule model of one `parallel_ic0` sweep: per pack,
/// super-row-aligned chunks (the factor kernel's formula) whose rows read
/// the rows named by their strictly-lower columns; no phase 2.
pub fn factor_spec(s: &StsStructure, threads: usize) -> ScheduleSpec {
    let workers = threads.max(1);
    let split = s.split();
    let index2 = s.index2();
    let l = s.lower();
    let num_packs = s.num_packs();
    let mut stages = Vec::with_capacity(num_packs);
    for p in 0..num_packs {
        let srs = s.pack_super_rows(p);
        let nsr = srs.len();
        let nchunks = workers.min(nsr);
        let mut chunks = Vec::with_capacity(nchunks);
        for c in 0..nchunks {
            let sr_lo = srs.start + c * nsr / nchunks;
            let sr_hi = srs.start + (c + 1) * nsr / nchunks;
            let rows = index2[sr_lo]..index2[sr_hi];
            let dep = split.range_ext_dep(rows.clone()) as usize;
            let rows_fp = rows
                .map(|i| RowFootprint {
                    row: i,
                    reads: l.row_off_diag_cols(i).to_vec(),
                })
                .collect();
            chunks.push(ChunkSpec {
                dep,
                rows: rows_fp,
                publishes: true,
            });
        }
        stages.push(StageSpec {
            pack: p,
            chunks,
            chains: Vec::new(),
        });
    }
    ScheduleSpec {
        locations: s.n(),
        stages,
    }
}

impl StsStructure {
    /// Statically verifies the full pack schedule: both sweep directions and
    /// the factor sweep, across the worker counts of
    /// [`VERIFY_THREAD_SWEEP`]. Returns the merged [`ScheduleProof`] or the
    /// first [`ScheduleViolation`] with `(pack, phase, row, missing edge)`
    /// detail.
    ///
    /// Forces both lazy split layouts (they *are* the schedule being
    /// verified).
    pub fn verify_schedule(&self) -> Result<ScheduleProof, ScheduleViolation> {
        let mut proof = ScheduleProof::default();
        for &threads in &VERIFY_THREAD_SWEEP {
            for direction in [SweepDirection::Forward, SweepDirection::Transpose] {
                proof.merge(&self.verify_schedule_at(threads, direction)?);
            }
            proof.merge(&self.verify_factor_schedule(threads)?);
        }
        Ok(proof)
    }

    /// Verifies one solve schedule at a specific worker count and direction
    /// (`threads = usize::MAX` checks at row granularity).
    pub fn verify_schedule_at(
        &self,
        threads: usize,
        direction: SweepDirection,
    ) -> Result<ScheduleProof, ScheduleViolation> {
        sts_verify::verify(&solve_spec(self, threads, direction))
    }

    /// Verifies the `parallel_ic0` factor schedule at a specific worker
    /// count.
    pub fn verify_factor_schedule(
        &self,
        threads: usize,
    ) -> Result<ScheduleProof, ScheduleViolation> {
        sts_verify::verify(&factor_spec(self, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Method;
    use sts_matrix::generators;

    fn structure() -> StsStructure {
        let l = generators::random_lower_triangular(80, 3.0, 7).unwrap();
        Method::Sts3.build(&l, 8).unwrap()
    }

    #[test]
    fn every_method_schedule_verifies() {
        let l = generators::random_lower_triangular(60, 2.5, 11).unwrap();
        for method in Method::all() {
            let s = method.build(&l, 8).unwrap();
            let proof = s.verify_schedule().unwrap();
            assert!(proof.chunks > 0);
            assert_eq!(proof.locations, s.n() * proof.specs);
        }
    }

    #[test]
    fn dropping_a_dependency_is_flagged_with_its_exact_row() {
        let s = structure();
        let mut spec = solve_spec(&s, usize::MAX, SweepDirection::Forward);
        // Find the first chunk with a real dependency; at row granularity
        // its dep is the row's own ext_dep, achieved by an actual read.
        let (st, c) = spec
            .stages
            .iter()
            .enumerate()
            .find_map(|(st, stage)| stage.chunks.iter().position(|c| c.dep > 0).map(|c| (st, c)))
            .expect("some chunk depends on an earlier pack");
        let row = spec.stages[st].chunks[c].rows[0].row;
        let pack = spec.stages[st].pack;
        assert!(sts_verify::mutate::drop_dependency(&mut spec, st, c));
        match sts_verify::verify(&spec) {
            Err(ScheduleViolation::ReadRace {
                pack: p, row: r, ..
            }) => {
                assert_eq!((p, r), (pack, row));
            }
            other => panic!("expected a ReadRace at (pack {pack}, row {row}), got {other:?}"),
        }
    }

    #[test]
    fn factor_spec_verifies_and_counts_every_row() {
        let s = structure();
        let spec = factor_spec(&s, 4);
        let rows: usize = spec
            .stages
            .iter()
            .flat_map(|st| &st.chunks)
            .map(|c| c.rows.len())
            .sum();
        assert_eq!(rows, s.n());
        sts_verify::verify(&spec).unwrap();
    }
}
