//! Undirected adjacency graphs in CSR form.
//!
//! A [`Graph`] is the structure-only view of a symmetric sparse matrix: the
//! vertex set is the row set, and an edge `{u, v}` exists when `A[u][v] != 0`
//! for `u != v` (the diagonal never contributes an edge). This is the graph
//! `G1` of the paper when built from `A = L + Lᵀ`, and the graph `G2` when
//! built by [`coarsening`](crate::coarsen) `G1`.

use sts_matrix::{CsrMatrix, LowerTriangularCsr};

/// An undirected graph stored as CSR adjacency lists with per-vertex weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    adj_ptr: Vec<usize>,
    adj: Vec<usize>,
    /// Per-vertex weight; for `G1` this is the number of nonzeros of the row
    /// of `L`, for coarse graphs it is the sum over the constituent rows.
    weights: Vec<usize>,
}

impl Graph {
    /// Builds a graph from raw CSR adjacency arrays.
    ///
    /// # Panics
    /// Panics (in debug builds) if the arrays are inconsistent; callers inside
    /// this crate construct them correctly by design.
    pub fn from_raw(adj_ptr: Vec<usize>, adj: Vec<usize>, weights: Vec<usize>) -> Self {
        debug_assert_eq!(adj_ptr.len(), weights.len() + 1);
        debug_assert_eq!(*adj_ptr.last().unwrap_or(&0), adj.len());
        Graph {
            adj_ptr,
            adj,
            weights,
        }
    }

    /// Builds the graph of a symmetric matrix (edges = off-diagonal entries).
    /// Vertex weights are the row nonzero counts of the matrix.
    pub fn from_symmetric_csr(a: &CsrMatrix) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "graph requires a square matrix");
        let n = a.nrows();
        let mut adj_ptr = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(a.nnz());
        let mut weights = Vec::with_capacity(n);
        adj_ptr.push(0);
        for r in 0..n {
            for &c in a.row_cols(r) {
                if c != r {
                    adj.push(c);
                }
            }
            weights.push(a.row_nnz(r));
            adj_ptr.push(adj.len());
        }
        Graph {
            adj_ptr,
            adj,
            weights,
        }
    }

    /// Builds `G1 = G(L + Lᵀ)` directly from a lower-triangular operand
    /// without materialising the symmetric matrix values.
    pub fn from_lower_triangular(l: &LowerTriangularCsr) -> Self {
        let n = l.n();
        // Count the degree of each vertex: each strictly-lower entry (i, j)
        // contributes an edge {i, j}.
        let mut degree = vec![0usize; n];
        for i in 0..n {
            for &j in l.row_off_diag_cols(i) {
                degree[i] += 1;
                degree[j] += 1;
            }
        }
        let mut adj_ptr = vec![0usize; n + 1];
        for i in 0..n {
            adj_ptr[i + 1] = adj_ptr[i] + degree[i];
        }
        let mut adj = vec![0usize; adj_ptr[n]];
        let mut next = adj_ptr.clone();
        for i in 0..n {
            for &j in l.row_off_diag_cols(i) {
                adj[next[i]] = j;
                next[i] += 1;
                adj[next[j]] = i;
                next[j] += 1;
            }
        }
        // Sort each adjacency list so neighbour iteration is deterministic.
        for i in 0..n {
            adj[adj_ptr[i]..adj_ptr[i + 1]].sort_unstable();
        }
        let weights = (0..n).map(|i| l.row_nnz(i)).collect();
        Graph {
            adj_ptr,
            adj,
            weights,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Neighbours of vertex `v` (sorted, without `v` itself).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[self.adj_ptr[v]..self.adj_ptr[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj_ptr[v + 1] - self.adj_ptr[v]
    }

    /// Weight of vertex `v`.
    pub fn weight(&self, v: usize) -> usize {
        self.weights[v]
    }

    /// All vertex weights.
    pub fn weights(&self) -> &[usize] {
        &self.weights
    }

    /// The vertex of maximum degree (ties broken by lowest index); `None` for
    /// an empty graph.
    pub fn max_degree_vertex(&self) -> Option<usize> {
        (0..self.n()).max_by_key(|&v| (self.degree(v), usize::MAX - v))
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// True when `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Applies a symmetric relabelling: vertex `new` of the result corresponds
    /// to vertex `perm[new]` of `self` (`perm` maps new → old).
    pub fn permute(&self, perm: &[usize]) -> Graph {
        assert_eq!(perm.len(), self.n());
        let n = self.n();
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let mut adj_ptr = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(self.adj.len());
        let mut weights = Vec::with_capacity(n);
        adj_ptr.push(0);
        for &old in perm.iter().take(n) {
            let mut nb: Vec<usize> = self.neighbors(old).iter().map(|&o| inv[o]).collect();
            nb.sort_unstable();
            adj.extend_from_slice(&nb);
            weights.push(self.weights[old]);
            adj_ptr.push(adj.len());
        }
        Graph {
            adj_ptr,
            adj,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    fn figure1_graph() -> Graph {
        Graph::from_lower_triangular(&generators::paper_figure1_l())
    }

    #[test]
    fn figure1_graph_has_expected_edges() {
        let g = figure1_graph();
        assert_eq!(g.n(), 9);
        // 12 strictly-lower entries = 12 undirected edges.
        assert_eq!(g.num_edges(), 12);
        // Vertex 9 (index 8) is adjacent to 1, 2, 8 (indices 0, 1, 7).
        assert_eq!(g.neighbors(8), &[0, 1, 7]);
        // Vertex 7 (index 6) is adjacent to 4, 5, 6, 8 (indices 3, 4, 5, 7).
        assert_eq!(g.neighbors(6), &[3, 4, 5, 7]);
    }

    #[test]
    fn from_symmetric_matches_from_lower_triangular() {
        let l = generators::paper_figure1_l();
        let ga = Graph::from_symmetric_csr(&l.symmetrized());
        let gb = Graph::from_lower_triangular(&l);
        assert_eq!(ga.n(), gb.n());
        for v in 0..ga.n() {
            assert_eq!(ga.neighbors(v), gb.neighbors(v));
        }
    }

    #[test]
    fn degrees_and_max_degree_vertex() {
        let g = figure1_graph();
        assert_eq!(g.degree(6), 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.max_degree_vertex(), Some(6));
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = figure1_graph();
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(g.has_edge(8, 0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn weights_are_row_nnz() {
        let l = generators::paper_figure1_l();
        let g = Graph::from_lower_triangular(&l);
        for v in 0..g.n() {
            assert_eq!(g.weight(v), l.row_nnz(v));
        }
    }

    #[test]
    fn permute_preserves_edge_structure() {
        let g = figure1_graph();
        let perm: Vec<usize> = (0..g.n()).rev().collect();
        let p = g.permute(&perm);
        assert_eq!(p.num_edges(), g.num_edges());
        // Edge {8, 0} becomes {0, 8} after reversal.
        assert!(p.has_edge(0, 8));
        // Weights travel with their vertices.
        assert_eq!(p.weight(0), g.weight(8));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::from_raw(vec![0], vec![], vec![]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_degree_vertex(), None);
    }

    #[test]
    fn grid_graph_has_grid_degrees() {
        let a = generators::grid2d_laplacian(4, 4).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        assert_eq!(g.n(), 16);
        // corner vertices have degree 2, interior 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }
}
