//! Breadth-first search utilities: traversal levels, connected components and
//! pseudo-peripheral vertices (the starting points used by RCM and by the
//! level-set construction "starting with a vertex of largest degree").

use crate::adjacency::Graph;

/// The result of a BFS from a single root: for every reached vertex its BFS
/// distance, plus the vertices grouped level by level.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsLevels {
    /// `distance[v]` is the BFS level of `v`, or `usize::MAX` when `v` is not
    /// reachable from the root.
    pub distance: Vec<usize>,
    /// `levels[d]` lists the vertices at distance `d`, in visitation order.
    pub levels: Vec<Vec<usize>>,
}

/// Runs BFS from `root` and returns per-vertex distances and per-level vertex
/// lists.
pub fn bfs_levels(graph: &Graph, root: usize) -> BfsLevels {
    let n = graph.n();
    let mut distance = vec![usize::MAX; n];
    let mut levels: Vec<Vec<usize>> = Vec::new();
    if n == 0 {
        return BfsLevels { distance, levels };
    }
    distance[root] = 0;
    let mut frontier = vec![root];
    while !frontier.is_empty() {
        levels.push(frontier.clone());
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if distance[u] == usize::MAX {
                    distance[u] = distance[v] + 1;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    BfsLevels { distance, levels }
}

/// Returns the connected components of the graph, each as a list of vertices,
/// ordered by their smallest vertex.
pub fn connected_components(graph: &Graph) -> Vec<Vec<usize>> {
    let n = graph.n();
    let mut component = vec![usize::MAX; n];
    let mut components = Vec::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = vec![start];
        component[start] = id;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if component[u] == usize::MAX {
                    component[u] = id;
                    members.push(u);
                    queue.push_back(u);
                }
            }
        }
        components.push(members);
    }
    components
}

/// Finds a pseudo-peripheral vertex of the component containing `start` using
/// the classic George–Liu iteration: repeatedly BFS and move to a
/// minimum-degree vertex of the last level until the eccentricity stops
/// growing. Such vertices are good RCM starting points because they maximise
/// the number of BFS levels (and therefore minimise level width).
pub fn pseudo_peripheral_vertex(graph: &Graph, start: usize) -> usize {
    let mut current = start;
    let mut best_ecc = 0usize;
    loop {
        let bfs = bfs_levels(graph, current);
        let ecc = bfs.levels.len().saturating_sub(1);
        if ecc <= best_ecc && best_ecc > 0 {
            return current;
        }
        best_ecc = ecc;
        let last = match bfs.levels.last() {
            Some(l) if !l.is_empty() => l,
            _ => return current,
        };
        let Some(&next) = last.iter().min_by_key(|&&v| graph.degree(v)) else {
            return current;
        };
        if next == current {
            return current;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_symmetric_csr(&generators::symmetric_from_edges(n, &edges).unwrap())
    }

    #[test]
    fn bfs_levels_on_a_path() {
        let g = path_graph(5);
        let bfs = bfs_levels(&g, 0);
        assert_eq!(bfs.levels.len(), 5);
        assert_eq!(bfs.distance, vec![0, 1, 2, 3, 4]);
        let bfs_mid = bfs_levels(&g, 2);
        assert_eq!(bfs_mid.levels.len(), 3);
        assert_eq!(bfs_mid.distance[0], 2);
        assert_eq!(bfs_mid.distance[4], 2);
    }

    #[test]
    fn bfs_marks_unreachable_vertices() {
        // Two disconnected edges: {0,1} and {2,3}.
        let a = generators::symmetric_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let bfs = bfs_levels(&g, 0);
        assert_eq!(bfs.distance[1], 1);
        assert_eq!(bfs.distance[2], usize::MAX);
        assert_eq!(bfs.distance[3], usize::MAX);
    }

    #[test]
    fn connected_components_finds_all_parts() {
        let a = generators::symmetric_from_edges(6, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![2, 3, 1]);
        // Every vertex appears exactly once.
        let mut all: Vec<usize> = comps.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pseudo_peripheral_vertex_on_path_is_an_endpoint() {
        let g = path_graph(9);
        let v = pseudo_peripheral_vertex(&g, 4);
        assert!(v == 0 || v == 8, "expected an endpoint, got {v}");
    }

    #[test]
    fn pseudo_peripheral_vertex_on_grid_increases_level_count() {
        let a = generators::grid2d_laplacian(8, 8).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let center = 8 * 4 + 4;
        let from_center = bfs_levels(&g, center).levels.len();
        let pp = pseudo_peripheral_vertex(&g, center);
        let from_pp = bfs_levels(&g, pp).levels.len();
        assert!(from_pp >= from_center);
    }

    #[test]
    fn singleton_graph_bfs() {
        let a = generators::symmetric_from_edges(1, &[]).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let bfs = bfs_levels(&g, 0);
        assert_eq!(bfs.levels, vec![vec![0]]);
        assert_eq!(pseudo_peripheral_vertex(&g, 0), 0);
    }
}
