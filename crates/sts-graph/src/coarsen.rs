//! Coarsening `G1` into the super-row graph `G2`.
//!
//! Section 3.1 of the paper builds super-rows by agglomerating rows that share
//! nonzero columns — formalised either through graph coarsening (collapsing
//! connected vertices, as in Figure 1) or, when the matrix is in a
//! band-reducing order such as RCM, by grouping *contiguous* rows. Coarsening
//! aims for super-rows with roughly equal numbers of nonzeros so that tasks
//! have equal work.
//!
//! Three strategies are provided:
//!
//! * [`CoarseningStrategy::ContiguousRows`] — fixed number of consecutive rows
//!   per super-row (the paper's 80 rows on Intel / 320 rows on AMD);
//! * [`CoarseningStrategy::ContiguousNnz`] — consecutive rows accumulated
//!   until a nonzero budget is reached (equal-work super-rows);
//! * [`CoarseningStrategy::HeavyEdgeMatching`] — classic multilevel pairwise
//!   matching (the Figure 1 illustration collapses pairs of connected
//!   vertices), useful when the matrix is not band-ordered.

use crate::adjacency::Graph;

/// How rows of `G1` are grouped into super-rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoarseningStrategy {
    /// Group every `rows_per_group` consecutive vertices.
    ContiguousRows {
        /// Number of consecutive rows per super-row (≥ 1).
        rows_per_group: usize,
    },
    /// Group consecutive vertices until the sum of their weights reaches
    /// `nnz_per_group`.
    ContiguousNnz {
        /// Nonzero budget per super-row (≥ 1).
        nnz_per_group: usize,
    },
    /// Greedy heavy-edge matching: every super-vertex is a matched pair of
    /// adjacent vertices (or a leftover singleton).
    HeavyEdgeMatching,
}

/// A partition of the vertices of a graph into super-vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coarsening {
    /// `membership[v]` is the super-vertex that contains `v`.
    membership: Vec<usize>,
    /// `groups[s]` lists the vertices of super-vertex `s`, in increasing order.
    groups: Vec<Vec<usize>>,
}

impl Coarsening {
    /// Coarsens `graph` with the requested strategy.
    ///
    /// For the contiguous strategies the vertex numbering is assumed to be a
    /// band-reducing (e.g. RCM) order, as in the paper.
    pub fn coarsen(graph: &Graph, strategy: CoarseningStrategy) -> Coarsening {
        match strategy {
            CoarseningStrategy::ContiguousRows { rows_per_group } => {
                let rows_per_group = rows_per_group.max(1);
                Self::contiguous_by(graph.n(), |start| (start + rows_per_group).min(graph.n()))
            }
            CoarseningStrategy::ContiguousNnz { nnz_per_group } => {
                let budget = nnz_per_group.max(1);
                Self::contiguous_by(graph.n(), |start| {
                    let mut end = start;
                    let mut acc = 0usize;
                    while end < graph.n() && (acc < budget || end == start) {
                        acc += graph.weight(end);
                        end += 1;
                    }
                    end
                })
            }
            CoarseningStrategy::HeavyEdgeMatching => Self::heavy_edge_matching(graph),
        }
    }

    fn contiguous_by(n: usize, mut next_end: impl FnMut(usize) -> usize) -> Coarsening {
        let mut membership = vec![0usize; n];
        let mut groups = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = next_end(start).max(start + 1).min(n);
            let s = groups.len();
            for m in &mut membership[start..end] {
                *m = s;
            }
            groups.push((start..end).collect());
            start = end;
        }
        Coarsening { membership, groups }
    }

    fn heavy_edge_matching(graph: &Graph) -> Coarsening {
        let n = graph.n();
        let mut matched = vec![usize::MAX; n];
        let mut membership = vec![usize::MAX; n];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        // Visit vertices in increasing degree order so low-degree vertices get
        // a chance to pair before their few neighbours are taken.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (graph.degree(v), v));
        for &v in &order {
            if matched[v] != usize::MAX {
                continue;
            }
            // Prefer the unmatched neighbour with the most shared structure;
            // with unit edge weights that is simply the highest-weight
            // neighbour (heaviest super-row after merging).
            let partner = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| matched[u] == usize::MAX)
                .max_by_key(|&u| (graph.weight(u), usize::MAX - u));
            let s = groups.len();
            match partner {
                Some(u) => {
                    matched[v] = u;
                    matched[u] = v;
                    membership[v] = s;
                    membership[u] = s;
                    let mut g = vec![v.min(u), v.max(u)];
                    g.sort_unstable();
                    groups.push(g);
                }
                None => {
                    matched[v] = v;
                    membership[v] = s;
                    groups.push(vec![v]);
                }
            }
        }
        Coarsening { membership, groups }
    }

    /// Number of super-vertices.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of fine vertices.
    pub fn n(&self) -> usize {
        self.membership.len()
    }

    /// The super-vertex containing fine vertex `v`.
    pub fn group_of(&self, v: usize) -> usize {
        self.membership[v]
    }

    /// The fine vertices of super-vertex `s` (increasing order).
    pub fn group(&self, s: usize) -> &[usize] {
        &self.groups[s]
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The full membership table.
    pub fn membership(&self) -> &[usize] {
        &self.membership
    }

    /// True when every group is a contiguous index range (required by the
    /// CSR-k `index2` representation).
    pub fn is_contiguous(&self) -> bool {
        self.groups
            .iter()
            .all(|g| g.windows(2).all(|w| w[1] == w[0] + 1))
    }

    /// Builds the coarse graph `G2`: super-vertices are the groups, an edge
    /// connects two distinct super-vertices when any of their members are
    /// adjacent in the fine graph, and the weight of a super-vertex is the sum
    /// of its members' weights.
    pub fn coarse_graph(&self, fine: &Graph) -> Graph {
        let ng = self.num_groups();
        let mut adj_ptr = Vec::with_capacity(ng + 1);
        let mut adj = Vec::new();
        let mut weights = Vec::with_capacity(ng);
        adj_ptr.push(0);
        let mut stamp = vec![usize::MAX; ng];
        for s in 0..ng {
            let mut w = 0usize;
            let mut nbrs = Vec::new();
            for &v in &self.groups[s] {
                w += fine.weight(v);
                for &u in fine.neighbors(v) {
                    let t = self.membership[u];
                    if t != s && stamp[t] != s {
                        stamp[t] = s;
                        nbrs.push(t);
                    }
                }
            }
            nbrs.sort_unstable();
            adj.extend_from_slice(&nbrs);
            weights.push(w);
            adj_ptr.push(adj.len());
        }
        Graph::from_raw(adj_ptr, adj, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    fn grid_graph(nx: usize, ny: usize) -> Graph {
        Graph::from_symmetric_csr(&generators::grid2d_laplacian(nx, ny).unwrap())
    }

    #[test]
    fn contiguous_rows_partitions_evenly() {
        let g = grid_graph(6, 6);
        let c = Coarsening::coarsen(&g, CoarseningStrategy::ContiguousRows { rows_per_group: 4 });
        assert_eq!(c.num_groups(), 9);
        assert!(c.is_contiguous());
        for s in 0..c.num_groups() {
            assert_eq!(c.group(s).len(), 4);
            for &v in c.group(s) {
                assert_eq!(c.group_of(v), s);
            }
        }
    }

    #[test]
    fn contiguous_rows_handles_remainder() {
        let g = grid_graph(5, 2); // 10 vertices
        let c = Coarsening::coarsen(&g, CoarseningStrategy::ContiguousRows { rows_per_group: 4 });
        assert_eq!(c.num_groups(), 3);
        assert_eq!(c.group(2).len(), 2);
    }

    #[test]
    fn contiguous_nnz_balances_weight() {
        let g = grid_graph(8, 8);
        let c = Coarsening::coarsen(&g, CoarseningStrategy::ContiguousNnz { nnz_per_group: 20 });
        assert!(c.is_contiguous());
        // Every group except possibly the last reaches the budget.
        for s in 0..c.num_groups() - 1 {
            let w: usize = c.group(s).iter().map(|&v| g.weight(v)).sum();
            assert!(w >= 20, "group {s} under budget: {w}");
        }
        // No group massively overshoots (bounded by budget + max weight).
        let max_w = (0..g.n()).map(|v| g.weight(v)).max().unwrap();
        for s in 0..c.num_groups() {
            let w: usize = c.group(s).iter().map(|&v| g.weight(v)).sum();
            assert!(w <= 20 + max_w);
        }
    }

    #[test]
    fn membership_is_a_partition_for_all_strategies() {
        let g = grid_graph(7, 5);
        for strat in [
            CoarseningStrategy::ContiguousRows { rows_per_group: 3 },
            CoarseningStrategy::ContiguousNnz { nnz_per_group: 12 },
            CoarseningStrategy::HeavyEdgeMatching,
        ] {
            let c = Coarsening::coarsen(&g, strat);
            let mut seen = vec![false; g.n()];
            for s in 0..c.num_groups() {
                for &v in c.group(s) {
                    assert!(!seen[v], "{strat:?}: vertex {v} appears twice");
                    seen[v] = true;
                    assert_eq!(c.group_of(v), s);
                }
            }
            assert!(seen.iter().all(|&b| b), "{strat:?}: some vertex unassigned");
        }
    }

    #[test]
    fn heavy_edge_matching_pairs_adjacent_vertices() {
        let g = grid_graph(4, 4);
        let c = Coarsening::coarsen(&g, CoarseningStrategy::HeavyEdgeMatching);
        for s in 0..c.num_groups() {
            let grp = c.group(s);
            assert!(grp.len() <= 2);
            if grp.len() == 2 {
                assert!(g.has_edge(grp[0], grp[1]), "matched pair must be adjacent");
            }
        }
        // A 4x4 grid has a perfect matching, so every group should be a pair.
        assert_eq!(c.num_groups(), 8);
    }

    #[test]
    fn coarse_graph_preserves_connectivity_structure() {
        let g = grid_graph(6, 6);
        let c = Coarsening::coarsen(&g, CoarseningStrategy::ContiguousRows { rows_per_group: 6 });
        let g2 = c.coarse_graph(&g);
        assert_eq!(g2.n(), 6);
        // Row-groups of a grid form a path in the coarse graph.
        assert_eq!(g2.degree(0), 1);
        assert_eq!(g2.degree(2), 2);
        // Coarse weights sum to the fine weights.
        let fine_total: usize = (0..g.n()).map(|v| g.weight(v)).sum();
        let coarse_total: usize = (0..g2.n()).map(|v| g2.weight(v)).sum();
        assert_eq!(fine_total, coarse_total);
    }

    #[test]
    fn coarse_graph_has_no_self_loops() {
        let g = grid_graph(9, 3);
        for strat in [
            CoarseningStrategy::ContiguousRows { rows_per_group: 5 },
            CoarseningStrategy::HeavyEdgeMatching,
        ] {
            let c = Coarsening::coarsen(&g, strat);
            let g2 = c.coarse_graph(&g);
            for s in 0..g2.n() {
                assert!(!g2.neighbors(s).contains(&s));
            }
        }
    }

    #[test]
    fn figure1_style_pairing_produces_five_super_rows() {
        // Figure 1 collapses the 9-vertex example into 5 super-vertices
        // (four pairs and one singleton).
        let l = generators::paper_figure1_l();
        let g = Graph::from_lower_triangular(&l);
        let c = Coarsening::coarsen(&g, CoarseningStrategy::HeavyEdgeMatching);
        assert_eq!(c.num_groups(), 5);
        let sizes: Vec<usize> = (0..5).map(|s| c.group(s).len()).collect();
        let pairs = sizes.iter().filter(|&&s| s == 2).count();
        let singles = sizes.iter().filter(|&&s| s == 1).count();
        assert_eq!((pairs, singles), (4, 1));
    }

    #[test]
    fn single_group_when_budget_exceeds_total() {
        let g = grid_graph(3, 3);
        let c = Coarsening::coarsen(
            &g,
            CoarseningStrategy::ContiguousNnz {
                nnz_per_group: 10_000,
            },
        );
        assert_eq!(c.num_groups(), 1);
        assert_eq!(c.group(0).len(), 9);
    }
}
