//! Greedy graph coloring.
//!
//! Coloring the graph of `A = L + Lᵀ` (or of the coarsened graph `G2`) and
//! numbering the rows of each color contiguously is the Schreiber–Tang way of
//! exposing parallelism in sparse triangular solution: within a color there
//! are no edges, hence no dependencies, and all corresponding unknowns can be
//! computed concurrently once the previous colors are done.
//!
//! The paper obtains colorings from the Boost graph library; here we use the
//! standard sequential greedy (first-fit) algorithm with a configurable vertex
//! visitation order. Largest-degree-first is the default because it tends to
//! produce slightly fewer colors on the mesh-like graphs of the test suite.

use crate::adjacency::Graph;

/// Vertex visitation order used by the greedy coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColoringOrder {
    /// Visit vertices in index order.
    Natural,
    /// Visit vertices in decreasing degree order (Welsh–Powell).
    LargestDegreeFirst,
    /// Smallest-last ordering: repeatedly remove a minimum-degree vertex and
    /// color in the reverse removal order.
    SmallestLast,
}

/// A proper vertex coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<usize>,
    num_colors: usize,
}

impl Coloring {
    /// Colors the graph greedily using the requested visitation order.
    pub fn greedy(graph: &Graph, order: ColoringOrder) -> Coloring {
        let n = graph.n();
        let visit: Vec<usize> = match order {
            ColoringOrder::Natural => (0..n).collect(),
            ColoringOrder::LargestDegreeFirst => {
                let mut v: Vec<usize> = (0..n).collect();
                v.sort_by_key(|&x| (std::cmp::Reverse(graph.degree(x)), x));
                v
            }
            ColoringOrder::SmallestLast => smallest_last_order(graph),
        };
        let mut colors = vec![usize::MAX; n];
        let mut num_colors = 0usize;
        // `forbidden[c] == v` means color c is used by a neighbour of the
        // vertex currently being colored; reusing a stamp avoids clearing.
        let mut forbidden = vec![usize::MAX; n + 1];
        for &v in &visit {
            for &u in graph.neighbors(v) {
                if colors[u] != usize::MAX {
                    forbidden[colors[u]] = v;
                }
            }
            let mut c = 0usize;
            while forbidden[c] == v {
                c += 1;
            }
            colors[v] = c;
            num_colors = num_colors.max(c + 1);
        }
        Coloring { colors, num_colors }
    }

    /// The color assigned to vertex `v`.
    pub fn color_of(&self, v: usize) -> usize {
        self.colors[v]
    }

    /// All vertex colors.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Number of colors used.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Vertices grouped by color, in vertex order within each class.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.colors.iter().enumerate() {
            classes[c].push(v);
        }
        classes
    }

    /// Checks that no edge connects two vertices of the same color.
    pub fn is_proper(&self, graph: &Graph) -> bool {
        (0..graph.n()).all(|v| {
            graph
                .neighbors(v)
                .iter()
                .all(|&u| self.colors[u] != self.colors[v])
        })
    }
}

/// Computes the smallest-last vertex ordering (reverse of repeated
/// minimum-degree removal).
fn smallest_last_order(graph: &Graph) -> Vec<usize> {
    let n = graph.n();
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut removal_order = Vec::with_capacity(n);
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket containing a live vertex.
        cursor = cursor.min(max_deg);
        let v = loop {
            // Degrees only decrease, so restart the scan from 0 each time a
            // stale entry forces us past the current cursor.
            if cursor > max_deg {
                cursor = 0;
            }
            if let Some(&cand) = buckets[cursor].last() {
                buckets[cursor].pop();
                if !removed[cand] && degree[cand] == cursor {
                    break cand;
                }
                continue;
            }
            cursor += 1;
        };
        removed[v] = true;
        removal_order.push(v);
        for &u in graph.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
                if degree[u] < cursor {
                    cursor = degree[u];
                }
            }
        }
    }
    removal_order.reverse();
    removal_order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    fn graph_of(a: &sts_matrix::CsrMatrix) -> Graph {
        Graph::from_symmetric_csr(a)
    }

    #[test]
    fn coloring_is_proper_on_all_generators() {
        for a in [
            generators::grid2d_laplacian(9, 7).unwrap(),
            generators::grid2d_9point(8, 8).unwrap(),
            generators::triangulated_grid(9, 9, 2).unwrap(),
            generators::road_network(12, 12, 0.6, 3).unwrap(),
            generators::random_geometric(300, 8.0, 4).unwrap(),
        ] {
            let g = graph_of(&a);
            for order in [
                ColoringOrder::Natural,
                ColoringOrder::LargestDegreeFirst,
                ColoringOrder::SmallestLast,
            ] {
                let c = Coloring::greedy(&g, order);
                assert!(c.is_proper(&g), "{order:?} produced an improper coloring");
                assert!(
                    c.num_colors() <= g.max_degree() + 1,
                    "greedy bound violated"
                );
            }
        }
    }

    #[test]
    fn bipartite_grid_gets_two_colors() {
        let a = generators::grid2d_laplacian(6, 6).unwrap();
        let g = graph_of(&a);
        let c = Coloring::greedy(&g, ColoringOrder::Natural);
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn classes_partition_the_vertex_set() {
        let a = generators::triangulated_grid(7, 7, 1).unwrap();
        let g = graph_of(&a);
        let c = Coloring::greedy(&g, ColoringOrder::LargestDegreeFirst);
        let classes = c.classes();
        assert_eq!(classes.len(), c.num_colors());
        let mut all: Vec<usize> = classes.concat();
        all.sort_unstable();
        assert_eq!(all, (0..g.n()).collect::<Vec<_>>());
        for (color, class) in classes.iter().enumerate() {
            for &v in class {
                assert_eq!(c.color_of(v), color);
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::from_raw(vec![0], vec![], vec![]);
        let c = Coloring::greedy(&g, ColoringOrder::Natural);
        assert_eq!(c.num_colors(), 0);

        let a = generators::symmetric_from_edges(4, &[]).unwrap();
        let g = graph_of(&a);
        let c = Coloring::greedy(&g, ColoringOrder::LargestDegreeFirst);
        assert_eq!(c.num_colors(), 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn figure2_example_colors_match_paper_scale() {
        // The paper's Figure 2 shows 3 colors for G1 of the 9-vertex example.
        let l = generators::paper_figure1_l();
        let g = Graph::from_lower_triangular(&l);
        let c = Coloring::greedy(&g, ColoringOrder::LargestDegreeFirst);
        assert!(c.is_proper(&g));
        assert!(
            (2..=4).contains(&c.num_colors()),
            "expected around 3 colors as in Figure 2, got {}",
            c.num_colors()
        );
    }

    #[test]
    fn smallest_last_never_uses_more_colors_than_degeneracy_plus_one() {
        // A star graph has degeneracy 1, so smallest-last must 2-color it even
        // though the center has a huge degree.
        let edges: Vec<(usize, usize)> = (1..50).map(|i| (0, i)).collect();
        let a = generators::symmetric_from_edges(50, &edges).unwrap();
        let g = graph_of(&a);
        let c = Coloring::greedy(&g, ColoringOrder::SmallestLast);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 2);
    }
}
