//! Level-set (level-scheduling) construction.
//!
//! The Saltz aggregation scheme assigns every unknown the earliest parallel
//! step at which it can be computed: `level(i) = 1 + max level(j)` over the
//! dependencies `j` of `i` (the strictly-lower nonzeros of row `i`). All
//! unknowns of the same level are independent by construction and form one
//! pack; packs must be processed level by level.
//!
//! Two constructions are provided:
//!
//! * [`LevelSets::from_lower_triangular`] — dependency levels of the rows of
//!   `L` (the classic level scheduling used by the `CSR-LS` reference solver);
//! * [`LevelSets::from_predecessors`] — dependency levels of an arbitrary DAG
//!   given by per-node predecessor lists, used for the coarsened super-row
//!   graph in `CSR-3-LS`.
//!
//! The paper additionally describes a BFS flavour of level sets started from a
//! vertex of largest degree; [`bfs_level_sets`] exposes that construction for
//! analysis, but the solvers use dependency levels because BFS levels of an
//! undirected graph are not guaranteed to be independent sets.

use crate::adjacency::Graph;
use crate::bfs;
use sts_matrix::LowerTriangularCsr;

/// A partition of `0..n` into dependency levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSets {
    level_of: Vec<usize>,
    levels: Vec<Vec<usize>>,
}

impl LevelSets {
    /// Level scheduling of the rows of a lower-triangular matrix.
    pub fn from_lower_triangular(l: &LowerTriangularCsr) -> LevelSets {
        let n = l.n();
        let mut level_of = vec![0usize; n];
        let mut num_levels = 0usize;
        for i in 0..n {
            let mut lvl = 0usize;
            for &j in l.row_off_diag_cols(i) {
                lvl = lvl.max(level_of[j] + 1);
            }
            level_of[i] = lvl;
            num_levels = num_levels.max(lvl + 1);
        }
        Self::from_level_assignment(level_of, num_levels)
    }

    /// Level scheduling of an arbitrary DAG. `preds[i]` lists the nodes that
    /// must complete before node `i`; every predecessor index must be smaller
    /// than `i` (the DAG is given in a topological order), which holds for all
    /// callers in this workspace because dependencies of a row (or super-row)
    /// always have smaller indices in a lower-triangular system.
    ///
    /// # Panics
    /// Panics if a predecessor index is not smaller than its node.
    pub fn from_predecessors(preds: &[Vec<usize>]) -> LevelSets {
        let n = preds.len();
        let mut level_of = vec![0usize; n];
        let mut num_levels = 0usize;
        for i in 0..n {
            let mut lvl = 0usize;
            for &j in &preds[i] {
                assert!(
                    j < i,
                    "predecessor {j} of node {i} is not topologically earlier"
                );
                lvl = lvl.max(level_of[j] + 1);
            }
            level_of[i] = lvl;
            num_levels = num_levels.max(lvl + 1);
        }
        Self::from_level_assignment(level_of, num_levels)
    }

    fn from_level_assignment(level_of: Vec<usize>, num_levels: usize) -> LevelSets {
        let mut levels = vec![Vec::new(); num_levels];
        for (i, &lvl) in level_of.iter().enumerate() {
            levels[lvl].push(i);
        }
        LevelSets { level_of, levels }
    }

    /// Number of levels (parallel steps).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The level of node `i`.
    pub fn level_of(&self, i: usize) -> usize {
        self.level_of[i]
    }

    /// The per-node level assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.level_of
    }

    /// The nodes of level `lvl`, in increasing index order.
    pub fn level(&self, lvl: usize) -> &[usize] {
        &self.levels[lvl]
    }

    /// All levels.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Average number of nodes per level.
    pub fn mean_level_size(&self) -> f64 {
        if self.levels.is_empty() {
            0.0
        } else {
            self.level_of.len() as f64 / self.levels.len() as f64
        }
    }

    /// Verifies that the level assignment respects the dependencies `preds`:
    /// every predecessor lies in a strictly earlier level.
    pub fn respects_dependencies(&self, preds: &[Vec<usize>]) -> bool {
        preds
            .iter()
            .enumerate()
            .all(|(i, pi)| pi.iter().all(|&j| self.level_of[j] < self.level_of[i]))
    }
}

/// BFS level sets of an undirected graph, started (as the paper recommends)
/// from a vertex of largest degree when `start` is `None`.
///
/// These levels are a parallelism *analysis* tool: unlike dependency levels
/// they may contain edges inside a level, so the solvers never use them
/// directly as packs.
pub fn bfs_level_sets(graph: &Graph, start: Option<usize>) -> Vec<Vec<usize>> {
    if graph.n() == 0 {
        return Vec::new();
    }
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut visited = vec![false; graph.n()];
    // `max_degree_vertex` is `None` only for an empty graph, excluded above.
    let first = match start {
        Some(s) => s,
        None => graph.max_degree_vertex().unwrap_or(0),
    };
    // Cover every connected component, continuing from the next unvisited
    // max-degree vertex.
    let mut roots = vec![first];
    loop {
        let root = match roots.pop() {
            Some(r) => r,
            None => match (0..graph.n())
                .filter(|&v| !visited[v])
                .max_by_key(|&v| graph.degree(v))
            {
                Some(v) => v,
                None => break,
            },
        };
        if visited[root] {
            continue;
        }
        let b = bfs::bfs_levels(graph, root);
        for (d, lvl) in b.levels.iter().enumerate() {
            let fresh: Vec<usize> = lvl.iter().copied().filter(|&v| !visited[v]).collect();
            for &v in &fresh {
                visited[v] = true;
            }
            if levels.len() <= d {
                levels.push(Vec::new());
            }
            levels[d].extend(fresh);
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    #[test]
    fn figure1_example_levels() {
        let l = generators::paper_figure1_l();
        let ls = LevelSets::from_lower_triangular(&l);
        // Rows 1, 2, 5 (indices 0, 1, 4) have no strictly-lower entries.
        assert_eq!(ls.level_of(0), 0);
        assert_eq!(ls.level_of(1), 0);
        assert_eq!(ls.level_of(4), 0);
        // Row 3 depends on row 1; row 4 on row 2.
        assert_eq!(ls.level_of(2), 1);
        assert_eq!(ls.level_of(3), 1);
        // Row 6 depends on rows 3 and 4 → level 2.
        assert_eq!(ls.level_of(5), 2);
        // Row 7 depends on 4, 5, 6 → level 3; row 8 on 5, 7 → level 4;
        // row 9 on 1, 2, 8 → level 5.
        assert_eq!(ls.level_of(6), 3);
        assert_eq!(ls.level_of(7), 4);
        assert_eq!(ls.level_of(8), 5);
        assert_eq!(ls.num_levels(), 6);
    }

    #[test]
    fn levels_partition_all_rows() {
        let a = generators::triangulated_grid(10, 10, 3).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let ls = LevelSets::from_lower_triangular(&l);
        let mut all: Vec<usize> = ls.levels().concat();
        all.sort_unstable();
        assert_eq!(all, (0..l.n()).collect::<Vec<_>>());
        assert!((ls.mean_level_size() - l.n() as f64 / ls.num_levels() as f64).abs() < 1e-12);
    }

    #[test]
    fn levels_respect_dependencies() {
        let a = generators::grid2d_9point(9, 9).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let ls = LevelSets::from_lower_triangular(&l);
        let preds: Vec<Vec<usize>> = (0..l.n())
            .map(|i| l.row_off_diag_cols(i).to_vec())
            .collect();
        assert!(ls.respects_dependencies(&preds));
    }

    #[test]
    fn from_predecessors_matches_manual_dag() {
        // 0 and 1 are sources; 2 depends on 0; 3 depends on 1 and 2.
        let preds = vec![vec![], vec![], vec![0], vec![1, 2]];
        let ls = LevelSets::from_predecessors(&preds);
        assert_eq!(ls.assignment(), &[0, 0, 1, 2]);
        assert_eq!(ls.level(0), &[0, 1]);
        assert!(ls.respects_dependencies(&preds));
    }

    #[test]
    #[should_panic(expected = "topologically earlier")]
    fn from_predecessors_rejects_forward_edges() {
        let preds = vec![vec![1], vec![]];
        let _ = LevelSets::from_predecessors(&preds);
    }

    #[test]
    fn diagonal_matrix_has_one_level() {
        let l = generators::random_lower_triangular(20, 0.0, 1).unwrap();
        let ls = LevelSets::from_lower_triangular(&l);
        assert_eq!(ls.num_levels(), 1);
        assert_eq!(ls.level(0).len(), 20);
    }

    #[test]
    fn bfs_level_sets_cover_all_vertices_even_when_disconnected() {
        let a = generators::symmetric_from_edges(7, &[(0, 1), (1, 2), (4, 5)]).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let levels = bfs_level_sets(&g, None);
        let mut all: Vec<usize> = levels.concat();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_level_sets_start_at_requested_vertex() {
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let a = generators::symmetric_from_edges(10, &edges).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let levels = bfs_level_sets(&g, Some(0));
        assert_eq!(levels.len(), 10);
        assert_eq!(levels[0], vec![0]);
    }
}
