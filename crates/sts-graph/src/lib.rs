//! Graph substrate for the STS-k reproduction.
//!
//! Everything STS-k does to a sparse triangular system is driven by graphs:
//!
//! * the undirected graph `G1` of the symmetric matrix `A = L + Lᵀ`
//!   ([`adjacency::Graph`]);
//! * band-reducing reorderings of `G1` (reverse Cuthill–McKee, [`rcm`]);
//! * independent-set extraction by greedy [`coloring`] or by dependency
//!   [`levelset`]s;
//! * coarsening of `G1` into the super-row graph `G2` ([`coarsen`]), the
//!   "CSR-2" level of the paper's hierarchy;
//! * permutation bookkeeping ([`permutation`]) and structural
//!   [`metrics`] (bandwidth, profile, degree statistics).
//!
//! The crate depends only on `sts-matrix` and has no threading concerns.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod adjacency;
pub mod bfs;
pub mod coarsen;
pub mod coloring;
pub mod levelset;
pub mod metrics;
pub mod permutation;
pub mod rcm;

pub use adjacency::Graph;
pub use coarsen::{Coarsening, CoarseningStrategy};
pub use coloring::{Coloring, ColoringOrder};
pub use levelset::LevelSets;
pub use permutation::Permutation;
