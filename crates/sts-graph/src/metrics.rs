//! Structural metrics: bandwidth, profile and degree statistics under a given
//! ordering. Used to validate RCM and to report ordering quality in the
//! benchmark harnesses.

use crate::adjacency::Graph;
use crate::permutation::Permutation;

/// Matrix bandwidth of the graph under `perm`: the maximum of
/// `|new(u) - new(v)|` over all edges `{u, v}`.
pub fn bandwidth(graph: &Graph, perm: &Permutation) -> usize {
    let old_to_new = perm.old_to_new();
    let mut bw = 0usize;
    for u in 0..graph.n() {
        for &v in graph.neighbors(u) {
            let a = old_to_new[u];
            let b = old_to_new[v];
            bw = bw.max(a.abs_diff(b));
        }
    }
    bw
}

/// Matrix profile (envelope size) of the graph under `perm`: for every vertex,
/// the distance from its new index to its left-most neighbour, summed.
pub fn profile(graph: &Graph, perm: &Permutation) -> usize {
    let old_to_new = perm.old_to_new();
    let mut total = 0usize;
    for u in 0..graph.n() {
        let nu = old_to_new[u];
        let leftmost = graph
            .neighbors(u)
            .iter()
            .map(|&v| old_to_new[v])
            .filter(|&nv| nv < nu)
            .min();
        if let Some(lm) = leftmost {
            total += nu - lm;
        }
    }
    total
}

/// Degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest vertex degree.
    pub min: usize,
    /// Largest vertex degree.
    pub max: usize,
    /// Mean vertex degree.
    pub mean: f64,
}

/// Computes min/max/mean degree (all zero for an empty graph).
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.n();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    for v in 0..n {
        let d = graph.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::generators;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_symmetric_csr(&generators::symmetric_from_edges(n, &edges).unwrap())
    }

    #[test]
    fn bandwidth_of_natural_path_is_one() {
        let g = path(10);
        assert_eq!(bandwidth(&g, &Permutation::identity(10)), 1);
    }

    #[test]
    fn bandwidth_grows_when_endpoints_are_swapped() {
        let g = path(10);
        // Move vertex 9 next to vertex 0 in the ordering.
        let perm = Permutation::from_new_to_old(vec![0, 9, 1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert!(bandwidth(&g, &perm) > 1);
    }

    #[test]
    fn profile_of_natural_path() {
        let g = path(5);
        // Every vertex after the first has its left neighbour at distance 1.
        assert_eq!(profile(&g, &Permutation::identity(5)), 4);
    }

    #[test]
    fn degree_stats_on_grid() {
        let a = generators::grid2d_laplacian(4, 4).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let s = degree_stats(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 4);
        assert!(s.mean > 2.0 && s.mean < 4.0);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Graph::from_raw(vec![0], vec![], vec![]);
        let s = degree_stats(&g);
        assert_eq!((s.min, s.max), (0, 0));
        assert_eq!(bandwidth(&g, &Permutation::identity(0)), 0);
        assert_eq!(profile(&g, &Permutation::identity(0)), 0);
    }
}
