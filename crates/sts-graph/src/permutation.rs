//! Permutation bookkeeping.
//!
//! Every ordering produced in this workspace (RCM, pack ordering, within-pack
//! DAR reordering) is represented as a [`Permutation`] mapping *new* indices
//! to *old* indices, the convention used by
//! [`CsrMatrix::permute_symmetric`](sts_matrix::CsrMatrix::permute_symmetric).

/// A bijection on `0..n` stored as a new-index → old-index table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_to_old: (0..n).collect(),
        }
    }

    /// Builds a permutation from a new → old table, validating bijectivity.
    pub fn from_new_to_old(new_to_old: Vec<usize>) -> Option<Self> {
        let n = new_to_old.len();
        let mut seen = vec![false; n];
        for &old in &new_to_old {
            if old >= n || seen[old] {
                return None;
            }
            seen[old] = true;
        }
        Some(Permutation { new_to_old })
    }

    /// Builds a permutation from an old → new table, validating bijectivity.
    pub fn from_old_to_new(old_to_new: &[usize]) -> Option<Self> {
        let n = old_to_new.len();
        let mut new_to_old = vec![usize::MAX; n];
        for (old, &new) in old_to_new.iter().enumerate() {
            if new >= n || new_to_old[new] != usize::MAX {
                return None;
            }
            new_to_old[new] = old;
        }
        Some(Permutation { new_to_old })
    }

    /// Size of the permuted index set.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// True when the permutation acts on an empty index set.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The old index that lands at position `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.new_to_old[new]
    }

    /// The new → old table.
    pub fn new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The old → new table.
    pub fn old_to_new(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.new_to_old.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            inv[old] = new;
        }
        inv
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_to_old: self.old_to_new(),
        }
    }

    /// Composition `self ∘ other`: applying the result is the same as first
    /// applying `other`, then `self`. In new→old tables this is
    /// `result[new] = other.old_of(self.old_of(new))`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation sizes must match");
        let new_to_old = (0..self.len())
            .map(|new| other.old_of(self.old_of(new)))
            .collect();
        Permutation { new_to_old }
    }

    /// Reorders a slice: `result[new] = values[old_of(new)]`.
    pub fn apply_to_slice<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        self.new_to_old
            .iter()
            .map(|&old| values[old].clone())
            .collect()
    }

    /// Scatters a slice back to the original ordering:
    /// `result[old_of(new)] = values[new]`. This is the inverse of
    /// [`Permutation::apply_to_slice`].
    pub fn scatter_to_original<T: Clone + Default>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        let mut out = vec![T::default(); self.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            out[old] = values[new].clone();
        }
        out
    }

    /// True when this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &o)| i == o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrips() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.inverse(), p);
        assert_eq!(p.apply_to_slice(&[1, 2, 3, 4, 5]), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn from_new_to_old_rejects_non_bijections() {
        assert!(Permutation::from_new_to_old(vec![0, 0, 1]).is_none());
        assert!(Permutation::from_new_to_old(vec![0, 5, 1]).is_none());
        assert!(Permutation::from_new_to_old(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn from_old_to_new_matches_inverse() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let q = Permutation::from_old_to_new(&p.old_to_new()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn apply_then_scatter_roundtrips() {
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        let values = vec![10, 20, 30, 40];
        let applied = p.apply_to_slice(&values);
        assert_eq!(applied, vec![40, 20, 10, 30]);
        assert_eq!(p.scatter_to_original(&applied), values);
    }

    #[test]
    fn compose_order_matters() {
        // p reverses, q rotates.
        let p = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let q = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let pq = p.compose(&q);
        let qp = q.compose(&p);
        assert_ne!(pq, qp);
        // Applying pq to values equals applying q first, then p.
        let vals = vec![100, 200, 300];
        let via_compose = pq.apply_to_slice(&vals);
        let via_steps = p.apply_to_slice(&q.apply_to_slice(&vals));
        assert_eq!(via_compose, via_steps);
    }

    #[test]
    fn empty_permutation_is_identity() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }
}
