//! Reverse Cuthill–McKee ordering.
//!
//! RCM is used three times in the STS-k pipeline:
//!
//! 1. all methods receive the input matrix in RCM order (the paper's reference
//!    implementations "perform best when the matrix is presented in the RCM
//!    ordering");
//! 2. coarsening into super-rows groups *contiguous* rows of the RCM-ordered
//!    matrix (Section 3.1);
//! 3. within each pack the DAR graph is reordered with RCM so it approaches a
//!    line graph (Section 3.4).

use crate::adjacency::Graph;
use crate::bfs::{connected_components, pseudo_peripheral_vertex};
use crate::permutation::Permutation;

/// Computes the Cuthill–McKee ordering of a graph (new → old).
///
/// Each connected component is traversed from a pseudo-peripheral vertex;
/// within the frontier, vertices are visited in increasing degree order, which
/// is the classic bandwidth-reducing heuristic.
// The traversal visits every vertex exactly once, so the final
// `from_new_to_old` cannot fail; the expect documents the invariant.
#[allow(clippy::expect_used)]
pub fn cuthill_mckee(graph: &Graph) -> Permutation {
    let n = graph.n();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for component in connected_components(graph) {
        // Start from a pseudo-peripheral vertex of this component, seeding the
        // search at the component's minimum-degree vertex.
        let Some(&seed) = component.iter().min_by_key(|&&v| graph.degree(v)) else {
            continue;
        };
        let start = pseudo_peripheral_vertex(graph, seed);
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        order.push(start);
        while let Some(v) = queue.pop_front() {
            let mut nb: Vec<usize> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u])
                .collect();
            nb.sort_unstable_by_key(|&u| (graph.degree(u), u));
            for u in nb {
                visited[u] = true;
                order.push(u);
                queue.push_back(u);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_new_to_old(order).expect("CM traversal visits each vertex exactly once")
}

/// Computes the *reverse* Cuthill–McKee ordering (new → old).
// Reversal preserves bijectivity, so the rebuild cannot fail.
#[allow(clippy::expect_used)]
pub fn reverse_cuthill_mckee(graph: &Graph) -> Permutation {
    let cm = cuthill_mckee(graph);
    let reversed: Vec<usize> = cm.new_to_old().iter().rev().copied().collect();
    Permutation::from_new_to_old(reversed).expect("reversal preserves bijectivity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bandwidth;
    use sts_matrix::generators;

    #[test]
    fn rcm_is_a_permutation_on_every_generator() {
        for a in [
            generators::grid2d_laplacian(7, 9).unwrap(),
            generators::triangulated_grid(8, 8, 1).unwrap(),
            generators::road_network(12, 12, 0.5, 2).unwrap(),
        ] {
            let g = Graph::from_symmetric_csr(&a);
            let p = reverse_cuthill_mckee(&g);
            assert_eq!(p.len(), g.n());
            // from_new_to_old already validated bijectivity; double-check by
            // composing with the inverse.
            assert!(p.compose(&p.inverse()).is_identity());
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_of_a_shuffled_grid() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let a = generators::grid2d_laplacian(16, 16).unwrap();
        // Shuffle the grid ordering so there is bandwidth to recover.
        let mut idx: Vec<usize> = (0..a.nrows()).collect();
        idx.shuffle(&mut rand::rngs::StdRng::seed_from_u64(5));
        let shuffled = a.permute_symmetric(&idx).unwrap();
        let g = Graph::from_symmetric_csr(&shuffled);
        let before = bandwidth(&g, &Permutation::identity(g.n()));
        let p = reverse_cuthill_mckee(&g);
        let after = bandwidth(&g, &p);
        assert!(
            after < before / 2,
            "RCM should cut the bandwidth substantially: before={before}, after={after}"
        );
    }

    #[test]
    fn rcm_on_path_gives_bandwidth_one() {
        let edges: Vec<(usize, usize)> = (0..19).map(|i| (i, i + 1)).collect();
        let a = generators::symmetric_from_edges(20, &edges).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(bandwidth(&g, &p), 1);
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let a = generators::symmetric_from_edges(6, &[(0, 1), (3, 4), (4, 5)]).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn reverse_is_the_reverse_of_cuthill_mckee() {
        let a = generators::grid2d_laplacian(5, 5).unwrap();
        let g = Graph::from_symmetric_csr(&a);
        let cm = cuthill_mckee(&g);
        let rcm = reverse_cuthill_mckee(&g);
        let reversed: Vec<usize> = cm.new_to_old().iter().rev().copied().collect();
        assert_eq!(rcm.new_to_old(), reversed.as_slice());
    }
}
