//! `sts-krylov`: the iterative-solver subsystem the triangular kernels serve.
//!
//! The paper's argument for fast sparse triangular solves is end-to-end: a
//! preconditioned Krylov solver applies one forward and one backward
//! triangular sweep *per iteration*, thousands of times on one fixed
//! structure. This crate is that workload as a production subsystem:
//!
//! * [`SpdSystem`] — an SPD operator bound to an STS ordering: the system
//!   matrix is permuted **once** into the structure's numbering, so every
//!   sweep, product and update of the iteration runs in reordered space and
//!   the permutation is paid only at entry (right-hand side gather) and exit
//!   (solution scatter);
//! * [`Preconditioner`] — the sweep contract ([`Identity`], [`Ssor`],
//!   [`Ic0`]), each applying `z = M⁻¹ r` with **no heap allocation**: the
//!   sweeps run through the `solve_*_into` kernels against caller-held
//!   buffers and reusable [`PipelinePlan`](sts_core::PipelinePlan)s, with
//!   the sweep engine selectable between the bitwise-identical sequential
//!   split kernels and the pack-pipelined parallel kernels
//!   ([`SweepEngine`]);
//! * [`KrylovWorkspace`] — the persistent vector arena (`r`, `z`, `p`,
//!   `A·p`, sweep scratch) sized once per structure, so a converged solve
//!   followed by a thousand more allocates nothing;
//! * [`Pcg`] — the conjugate-gradient driver: tolerance policy
//!   ([`Tolerance`]), iteration bound, per-iteration residual history,
//!   preconditioner wall-time attribution ([`PcgOutcome`]), a batched
//!   multi-RHS entry point ([`Pcg::solve_batch`]) running lockstep CG on the
//!   interleaved layout of the batch sweep kernels, and a **block**-CG entry
//!   point ([`Pcg::solve_block`]) sharing one Krylov space across the batch
//!   — small dense projections pick the step over the whole direction block,
//!   with rank-revealing deflation of dependent directions and per-system
//!   convergence freezing, so the batch converges in fewer iterations, not
//!   just cheaper ones;
//! * [`RobustPcg`] — the fault-tolerant driver: on IC(0) breakdown it
//!   descends a recovery ladder (a single-row diagonal boost targeting the
//!   exact pivot the breakdown named, then Manteuffel-shifted IC(0) under
//!   escalating α, then SSOR, then Identity), reporting every abandoned rung
//!   in a [`RecoveryReport`] so degradation is observable, never silent;
//! * [`solve_refined`] — iterative refinement for the mixed-precision
//!   kernels: triangular sweeps on f32 value slabs
//!   ([`PrecisionPolicy`](sts_core::PrecisionPolicy)), residuals in f64, so
//!   the cheap solves converge to the same tolerance as the f64 path.
//!
//! # Quickstart
//!
//! ```
//! use sts_core::Method;
//! use sts_krylov::{Ic0, KrylovWorkspace, Pcg, Preconditioner, SpdSystem, Ssor, SweepEngine};
//! use sts_matrix::generators;
//! use sts_numa::Schedule;
//!
//! // An SPD operator: the 2-D 5-point Laplacian, bound to an STS-3 ordering.
//! let a = generators::grid2d_laplacian(24, 24).unwrap();
//! let sys = SpdSystem::build(&a, Method::Sts3, 40).unwrap();
//!
//! // A PCG driver and a preconditioner whose sweeps run on the pipelined
//! // parallel kernels.
//! let pcg = Pcg::new(4, Schedule::Guided { min_chunk: 1 });
//! let mut pre = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
//!
//! // Persistent workspace: repeated solves allocate nothing.
//! let mut ws = KrylovWorkspace::new(sys.n());
//! let b = vec![1.0; sys.n()];
//! let out = pcg.solve(&sys, &mut pre, &b, &mut ws).unwrap();
//! assert!(out.converged);
//! assert!(out.iterations < 200);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod pcg;
pub mod precond;
pub mod recovery;
pub mod refine;
pub mod system;
pub mod workspace;

pub use pcg::{Pcg, PcgBatchOutcome, PcgBlockOutcome, PcgOptions, PcgOutcome, Tolerance};
pub use precond::{Ic0, Identity, Preconditioner, Ssor, SweepEngine};
pub use recovery::{
    build_ladder_preconditioner, LadderPreconditioner, RecoveryAttempt, RecoveryPolicy,
    RecoveryReport, RobustBatchOutcome, RobustBlockOutcome, RobustOutcome, RobustPcg,
};
pub use refine::{solve_refined, RefineOptions, RefineOutcome};
pub use system::SpdSystem;
pub use workspace::KrylovWorkspace;

/// Result alias for the Krylov subsystem (errors are the matrix substrate's).
pub type Result<T> = std::result::Result<T, sts_matrix::MatrixError>;
