//! The preconditioned conjugate-gradient driver.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sts_core::{ParallelSolver, SolveOptions};
use sts_matrix::{ops, MatrixError};
use sts_numa::Schedule;
use sts_trace::Registry;

use crate::precond::Preconditioner;
use crate::system::SpdSystem;
use crate::workspace::KrylovWorkspace;
use crate::Result;

/// When the iteration is allowed to stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Stop once `‖r‖₂ ≤ factor · ‖b‖₂` (the production default: scale
    /// invariant).
    Relative(f64),
    /// Stop once `‖r‖₂ ≤ bound` outright.
    Absolute(f64),
}

impl Tolerance {
    /// The concrete residual threshold for a system with `‖b‖₂ = b_norm`.
    ///
    /// A zero `b_norm` yields a zero threshold, so a zero right-hand side
    /// converges immediately (at `x = 0`) instead of dividing by zero
    /// somewhere downstream. A *non-finite* `b_norm` would poison the
    /// stopping comparison (`NaN > NaN` is `false`, which would silently
    /// report an untouched iterate as finished); the solve drivers reject a
    /// non-finite initial residual with
    /// [`MatrixError::NonFiniteResidual`]
    /// before consulting the threshold, and this helper stays total for
    /// direct callers by clamping to `0.0` — the conservative
    /// "never converged" answer, never a NaN.
    pub fn threshold(&self, b_norm: f64) -> f64 {
        match *self {
            Tolerance::Relative(factor) => {
                if b_norm.is_finite() {
                    factor * b_norm
                } else {
                    0.0
                }
            }
            Tolerance::Absolute(bound) => bound,
        }
    }
}

/// Driver policy: tolerance, iteration bound, history recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgOptions {
    /// Stopping criterion on the (true, recurrence-maintained) residual.
    pub tolerance: Tolerance,
    /// Hard iteration bound; exceeding it reports `converged: false`.
    pub max_iterations: usize,
    /// Whether to record `‖r‖₂` per iteration in the outcome.
    pub record_history: bool,
}

impl Default for PcgOptions {
    fn default() -> Self {
        PcgOptions {
            tolerance: Tolerance::Relative(1e-8),
            max_iterations: 1000,
            record_history: true,
        }
    }
}

/// What a single-RHS solve produced.
#[derive(Debug, Clone)]
pub struct PcgOutcome {
    /// The solution, in the caller's (original) numbering.
    pub x: Vec<f64>,
    /// Iterations performed (= preconditioner applications = `A·p`
    /// products).
    pub iterations: usize,
    /// Whether the tolerance was met within the iteration bound.
    pub converged: bool,
    /// Final `‖r‖₂`.
    pub residual_norm: f64,
    /// `‖r‖₂` before each iteration (index 0 is the initial residual), when
    /// history recording is on.
    pub history: Vec<f64>,
    /// Wall time of the whole solve.
    pub seconds_total: f64,
    /// Wall time spent inside preconditioner applications.
    pub seconds_precond: f64,
    /// Wall time of the whole solve, integer nanoseconds — the canonical
    /// value every reporting layer (metrics lines, histograms, bench
    /// fields) should reuse instead of re-deriving its own. The legacy
    /// `seconds_total` is the same measurement rendered as f64 seconds.
    pub wall_ns: u64,
    /// Wall time inside preconditioner applications, integer nanoseconds
    /// (the same measurement as `seconds_precond`).
    pub precond_ns: u64,
}

impl PcgOutcome {
    /// Fraction of the solve spent applying the preconditioner — the share
    /// of end-to-end time the triangular kernels own.
    pub fn precond_share(&self) -> f64 {
        if self.seconds_total > 0.0 {
            self.seconds_precond / self.seconds_total
        } else {
            0.0
        }
    }
}

/// What a batched solve produced.
#[derive(Debug, Clone)]
pub struct PcgBatchOutcome {
    /// Solutions, interleaved (`x[i * nrhs + q]`), original numbering.
    pub x: Vec<f64>,
    /// Per-system iteration at which the tolerance was first met (the
    /// lockstep count for systems that never converged).
    pub iterations: Vec<usize>,
    /// Per-system convergence flags.
    pub converged: Vec<bool>,
    /// Per-system final `‖r‖₂`.
    pub residual_norms: Vec<f64>,
    /// Lockstep iterations performed (every system advances together; a
    /// converged system is frozen, not dropped, so the batch kernels keep
    /// their full width).
    pub lockstep_iterations: usize,
}

/// What a block solve produced.
#[derive(Debug, Clone)]
pub struct PcgBlockOutcome {
    /// Solutions, interleaved (`x[i * nrhs + q]`), original numbering.
    pub x: Vec<f64>,
    /// Per-system block step at which the tolerance was first met (the
    /// total block-step count for systems that never converged).
    pub iterations: Vec<usize>,
    /// Per-system convergence flags.
    pub converged: Vec<bool>,
    /// Per-system final `‖r‖₂`.
    pub residual_norms: Vec<f64>,
    /// Shared Krylov steps performed: each step applies one batched
    /// preconditioner sweep pair and one batched `A·P` product to the whole
    /// block.
    pub block_steps: usize,
    /// Search directions dropped as linearly dependent by the
    /// rank-revealing projection (converged systems leaving the basis are
    /// not counted).
    pub deflations: usize,
    /// Wall time of the whole solve.
    pub seconds_total: f64,
    /// Wall time spent inside preconditioner applications.
    pub seconds_precond: f64,
}

impl PcgBlockOutcome {
    /// Total per-system iterations — the block analogue of summing
    /// [`PcgOutcome::iterations`] over standalone solves, and the number the
    /// shared Krylov space is meant to shrink.
    pub fn total_iterations(&self) -> usize {
        self.iterations.iter().sum()
    }
}

/// The conjugate-gradient driver: owns the worker pool every kernel of the
/// iteration runs on (triangular sweeps, `A·p` products) and the stopping
/// policy.
pub struct Pcg {
    solver: ParallelSolver,
    options: PcgOptions,
    metrics: Option<Arc<Registry>>,
}

impl Pcg {
    /// A driver on `threads` workers with default options.
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        Pcg {
            solver: ParallelSolver::new(threads, schedule),
            options: PcgOptions::default(),
            metrics: None,
        }
    }

    /// A driver with explicit options.
    pub fn with_options(threads: usize, schedule: Schedule, options: PcgOptions) -> Self {
        Pcg {
            solver: ParallelSolver::new(threads, schedule),
            options,
            metrics: None,
        }
    }

    /// Installs (or clears) a metrics registry the driver feeds per solve:
    /// the `pcg_solves_total` counter plus the `pcg_iterations`,
    /// `pcg_wall_ns` and `pcg_precond_share_pct` histograms (and, through
    /// [`RobustPcg`](crate::RobustPcg), the `pcg_recovery_rungs_total`
    /// counter). Observation is lock-free; the registry lookup happens once
    /// per solve, far off the iteration hot path.
    pub fn set_metrics_registry(&mut self, registry: Option<Arc<Registry>>) {
        self.metrics = registry;
    }

    /// The installed metrics registry, if any.
    pub fn metrics_registry(&self) -> Option<&Arc<Registry>> {
        self.metrics.as_ref()
    }

    /// The worker pool — preconditioner plans must be built against this
    /// solver so the `_into` kernels accept them.
    pub fn solver(&self) -> &ParallelSolver {
        &self.solver
    }

    /// Mutable access to the worker pool, for configuring the watchdog
    /// deadline ([`ParallelSolver::set_watchdog`]) or installing a
    /// fault-injection hook.
    pub fn solver_mut(&mut self) -> &mut ParallelSolver {
        &mut self.solver
    }

    /// The driver's stopping policy.
    pub fn options(&self) -> &PcgOptions {
        &self.options
    }

    /// Replaces the stopping policy without rebuilding the worker pool.
    /// Lets a long-lived driver (e.g. a solver service) honour per-request
    /// tolerances while keeping its threads parked between solves.
    pub fn set_options(&mut self, options: PcgOptions) {
        self.options = options;
    }

    /// Solves `A x = b` (original numbering) with preconditioned CG. After
    /// warm-up (lazy layout builds on first use), an iteration performs no
    /// heap allocation: every vector lives in `ws` and the sweeps run
    /// through the `_into` kernels.
    pub fn solve(
        &self,
        sys: &SpdSystem,
        pre: &mut dyn Preconditioner,
        b: &[f64],
        ws: &mut KrylovWorkspace,
    ) -> Result<PcgOutcome> {
        let n = sys.n();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {}, expected {n}",
                b.len()
            )));
        }
        if ws.n() != n || ws.nrhs() != 1 {
            return Err(MatrixError::DimensionMismatch(format!(
                "workspace is sized for n = {} × nrhs = {}, solve needs n = {n} × nrhs = 1",
                ws.n(),
                ws.nrhs()
            )));
        }
        let start = Instant::now();
        let mut precond = Duration::ZERO;
        // With x₀ = 0 the initial residual *is* the gathered right-hand
        // side, so it lands directly in r.
        sys.gather_into(b, &mut ws.r);
        ws.x.fill(0.0);
        let mut rnorm = ops::norm2(&ws.r);
        if !rnorm.is_finite() {
            // A NaN or infinite right-hand side: every comparison against
            // the threshold would be silently false. Name the breakdown
            // instead of iterating on poison.
            return Err(MatrixError::NonFiniteResidual { iteration: 0 });
        }
        let threshold = self.options.tolerance.threshold(rnorm);
        let mut history = Vec::new();
        if self.options.record_history {
            history.reserve(self.options.max_iterations + 1);
            history.push(rnorm);
        }
        let mut iterations = 0usize;
        let mut rz = 0.0f64;
        while rnorm > threshold && iterations < self.options.max_iterations {
            let t0 = Instant::now();
            pre.apply_into(&self.solver, &ws.r, &mut ws.z, &mut ws.sweep)?;
            precond += t0.elapsed();
            let rz_new = ops::dot(&ws.r, &ws.z);
            if iterations == 0 {
                ws.p.copy_from_slice(&ws.z);
            } else {
                if rz == 0.0 {
                    // Stagnated preconditioned residual (e.g. an exactly
                    // converged system iterated past convergence, or an
                    // indefinite preconditioner): `rz_new / rz` would poison
                    // p with ±∞ and, one 0·∞ alpha later, x with NaN. Stop
                    // here instead — x, p and r keep their last finite
                    // values and `converged` reports the true residual
                    // state, mirroring the batch path's `rz[q] == 0.0`
                    // freeze.
                    break;
                }
                let beta = rz_new / rz;
                for (pi, zi) in ws.p.iter_mut().zip(&ws.z) {
                    *pi = zi + beta * *pi;
                }
            }
            rz = rz_new;
            self.solver.spmv_into(sys.matrix(), &ws.p, &mut ws.ap)?;
            let pap = ops::dot(&ws.p, &ws.ap);
            let alpha = rz / pap;
            if !alpha.is_finite() {
                // Breakdown (indefinite operator or preconditioner): report
                // the state honestly instead of iterating on NaNs.
                break;
            }
            ops::axpy(alpha, &ws.p, &mut ws.x);
            ops::axpy(-alpha, &ws.ap, &mut ws.r);
            iterations += 1;
            rnorm = ops::norm2(&ws.r);
            if !rnorm.is_finite() {
                // A non-finite value slipped into the recurrence (operator
                // or preconditioner emitted NaN/∞ past the alpha guard):
                // stop with the iteration named rather than looping on NaN
                // until the bound.
                return Err(MatrixError::NonFiniteResidual {
                    iteration: iterations,
                });
            }
            if self.options.record_history {
                history.push(rnorm);
            }
        }
        let mut x = vec![0.0; n];
        sys.scatter_into(&ws.x, &mut x);
        // One elapsed() reading feeds both representations, so the integer
        // and f64 fields can never disagree about what was measured.
        let wall = start.elapsed();
        let outcome = PcgOutcome {
            x,
            iterations,
            converged: rnorm <= threshold,
            residual_norm: rnorm,
            history,
            seconds_total: wall.as_secs_f64(),
            seconds_precond: precond.as_secs_f64(),
            wall_ns: wall.as_nanos() as u64,
            precond_ns: precond.as_nanos() as u64,
        };
        if let Some(reg) = &self.metrics {
            reg.counter("pcg_solves_total").inc();
            reg.histogram("pcg_iterations").observe(iterations as u64);
            reg.histogram("pcg_wall_ns").observe(outcome.wall_ns);
            reg.histogram("pcg_precond_share_pct")
                .observe((outcome.precond_share() * 100.0) as u64);
        }
        Ok(outcome)
    }

    /// [`Pcg::solve`] behind the unified [`SolveOptions`] front door: sets
    /// the requested [`SolveOptions::precision`] on `pre`
    /// ([`Preconditioner::set_precision`]) and runs the single-RHS solve.
    ///
    /// Only the `precision` and `nrhs` fields are consumed here — the
    /// preconditioner's own [`SweepEngine`](crate::SweepEngine) governs how
    /// its sweeps run, and CG has no direction to choose. `nrhs` must be 1;
    /// use [`Pcg::solve_batch_with`] / [`Pcg::solve_block_with`] for more.
    pub fn solve_with(
        &self,
        sys: &SpdSystem,
        pre: &mut dyn Preconditioner,
        b: &[f64],
        ws: &mut KrylovWorkspace,
        opts: &SolveOptions,
    ) -> Result<PcgOutcome> {
        if opts.nrhs != 1 {
            return Err(MatrixError::DimensionMismatch(format!(
                "solve_with is the single-RHS entry (got nrhs = {}); use solve_batch_with",
                opts.nrhs
            )));
        }
        pre.set_precision(opts.precision);
        self.solve(sys, pre, b, ws)
    }

    /// [`Pcg::solve_batch`] behind the unified [`SolveOptions`] front door:
    /// sets [`SolveOptions::precision`] on `pre` and solves
    /// [`SolveOptions::nrhs`] systems in lockstep.
    pub fn solve_batch_with(
        &self,
        sys: &SpdSystem,
        pre: &mut dyn Preconditioner,
        b: &[f64],
        ws: &mut KrylovWorkspace,
        opts: &SolveOptions,
    ) -> Result<PcgBatchOutcome> {
        pre.set_precision(opts.precision);
        self.solve_batch(sys, pre, b, opts.nrhs, ws)
    }

    /// [`Pcg::solve_block`] behind the unified [`SolveOptions`] front door:
    /// sets [`SolveOptions::precision`] on `pre` and solves
    /// [`SolveOptions::nrhs`] systems on a shared block Krylov space.
    pub fn solve_block_with(
        &self,
        sys: &SpdSystem,
        pre: &mut dyn Preconditioner,
        b: &[f64],
        ws: &mut KrylovWorkspace,
        opts: &SolveOptions,
    ) -> Result<PcgBlockOutcome> {
        pre.set_precision(opts.precision);
        self.solve_block(sys, pre, b, opts.nrhs, ws)
    }

    /// Solves `nrhs` systems `A X = B` at once (interleaved layout,
    /// `b[i * nrhs + q]`, original numbering) with lockstep preconditioned
    /// CG on the batch kernels: one batched sweep pair and one batched
    /// `A·X` product per lockstep iteration serve the whole batch, so the
    /// index traffic of every row is amortised over the right-hand sides.
    /// Converged systems are frozen (their updates scaled by zero) until the
    /// stragglers finish.
    pub fn solve_batch(
        &self,
        sys: &SpdSystem,
        pre: &mut dyn Preconditioner,
        b: &[f64],
        nrhs: usize,
        ws: &mut KrylovWorkspace,
    ) -> Result<PcgBatchOutcome> {
        let n = sys.n();
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_batch needs at least one right-hand side".into(),
            ));
        }
        if b.len() != n * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B has length {}, expected n * nrhs = {}",
                b.len(),
                n * nrhs
            )));
        }
        if ws.n() != n || ws.nrhs() != nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "workspace is sized for n = {} × nrhs = {}, solve needs n = {n} × nrhs = {nrhs}",
                ws.n(),
                ws.nrhs()
            )));
        }
        sys.gather_batch_into(b, &mut ws.r, nrhs);
        ws.x.fill(0.0);
        // Per-system scalar state (O(nrhs), allocated once per solve call).
        let mut rnorm = vec![0.0f64; nrhs];
        strided_norms_into(&ws.r, nrhs, &mut rnorm);
        check_finite_norms(&rnorm, 0)?;
        let thresholds: Vec<f64> = rnorm
            .iter()
            .map(|&bn| self.options.tolerance.threshold(bn))
            .collect();
        let mut iterations = vec![self.options.max_iterations; nrhs];
        let mut rz = vec![0.0f64; nrhs];
        let mut rz_new = vec![0.0f64; nrhs];
        let mut pap = vec![0.0f64; nrhs];
        let mut alpha = vec![0.0f64; nrhs];
        let mut beta = vec![0.0f64; nrhs];
        for (q, (&r, &t)) in rnorm.iter().zip(&thresholds).enumerate() {
            if r <= t {
                iterations[q] = 0;
            }
        }
        let mut lockstep = 0usize;
        while lockstep < self.options.max_iterations
            && rnorm.iter().zip(&thresholds).any(|(&r, &t)| r > t)
        {
            pre.apply_batch_into(&self.solver, &ws.r, &mut ws.z, &mut ws.sweep, nrhs)?;
            strided_dots(&ws.r, &ws.z, nrhs, &mut rz_new);
            for q in 0..nrhs {
                let active = rnorm[q] > thresholds[q];
                beta[q] = if lockstep == 0 || !active || rz[q] == 0.0 {
                    0.0
                } else {
                    rz_new[q] / rz[q]
                };
            }
            if lockstep == 0 {
                ws.p.copy_from_slice(&ws.z);
            } else {
                for (i, chunk) in ws.p.chunks_exact_mut(nrhs).enumerate() {
                    let base = i * nrhs;
                    for (q, pi) in chunk.iter_mut().enumerate() {
                        *pi = ws.z[base + q] + beta[q] * *pi;
                    }
                }
            }
            rz.copy_from_slice(&rz_new);
            self.solver
                .spmv_batch_into(sys.matrix(), &ws.p, &mut ws.ap, nrhs)?;
            strided_dots(&ws.p, &ws.ap, nrhs, &mut pap);
            for q in 0..nrhs {
                let active = rnorm[q] > thresholds[q];
                let a = rz[q] / pap[q];
                // Frozen or broken-down systems get a zero step: x and r
                // stay put, so their reported residual remains truthful.
                alpha[q] = if active && a.is_finite() { a } else { 0.0 };
            }
            for i in 0..n {
                let base = i * nrhs;
                for (q, &aq) in alpha.iter().enumerate() {
                    ws.x[base + q] += aq * ws.p[base + q];
                    ws.r[base + q] -= aq * ws.ap[base + q];
                }
            }
            lockstep += 1;
            strided_norms_into(&ws.r, nrhs, &mut rnorm);
            check_finite_norms(&rnorm, lockstep)?;
            for q in 0..nrhs {
                if rnorm[q] <= thresholds[q] && iterations[q] > lockstep {
                    iterations[q] = lockstep;
                }
            }
        }
        let mut x = vec![0.0; n * nrhs];
        sys.scatter_batch_into(&ws.x, &mut x, nrhs);
        let converged: Vec<bool> = rnorm
            .iter()
            .zip(&thresholds)
            .map(|(&r, &t)| r <= t)
            .collect();
        for (it, &c) in iterations.iter_mut().zip(&converged) {
            if !c {
                *it = lockstep;
            }
        }
        Ok(PcgBatchOutcome {
            x,
            iterations,
            converged,
            residual_norms: rnorm,
            lockstep_iterations: lockstep,
        })
    }

    /// Solves `nrhs` systems `A X = B` (interleaved layout, original
    /// numbering) with **block** preconditioned CG: one Krylov space shared
    /// by every right-hand side. Where [`Pcg::solve_batch`] runs `nrhs`
    /// independent scalar recurrences in lockstep (amortising index traffic
    /// but not iterations), the block driver searches over the *whole*
    /// direction block each step — the coefficient matrices
    /// `α = (Pᵀ A P)⁻¹ (Pᵀ R)` and `β = −(Pᵀ A P)⁻¹ ((A P)ᵀ Z)` come from
    /// small dense projections ([`ops::block_gram_into`] /
    /// [`ops::block_dots_into`] and the rank-revealing
    /// [`ops::small_cholesky_solve`]) — so every system converges in as few
    /// steps as the union of the Krylov spaces allows, typically strictly
    /// fewer than its scalar count.
    ///
    /// Robustness:
    ///
    /// * **deflation** — a direction that becomes linearly dependent (e.g.
    ///   duplicate right-hand sides) is detected by the rank-revealing
    ///   Cholesky and dropped from the basis; its system keeps iterating on
    ///   the remaining directions and re-enters with a fresh direction next
    ///   step;
    /// * **freezing** — a converged system stops updating (its coefficient
    ///   columns are zeroed and its direction leaves the basis), so its
    ///   reported residual stays truthful while stragglers finish;
    /// * if every direction deflates while systems are still unconverged
    ///   (residuals numerically inside the converged span), the solve stops
    ///   and reports the state honestly rather than spinning.
    ///
    /// Works with either [`SweepEngine`](crate::SweepEngine): the
    /// preconditioner's batched application runs on the pipelined batch
    /// kernels or the sequential batched split kernels.
    pub fn solve_block(
        &self,
        sys: &SpdSystem,
        pre: &mut dyn Preconditioner,
        b: &[f64],
        nrhs: usize,
        ws: &mut KrylovWorkspace,
    ) -> Result<PcgBlockOutcome> {
        let n = sys.n();
        if nrhs == 0 {
            return Err(MatrixError::DimensionMismatch(
                "solve_block needs at least one right-hand side".into(),
            ));
        }
        if b.len() != n * nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "B has length {}, expected n * nrhs = {}",
                b.len(),
                n * nrhs
            )));
        }
        if ws.n() != n || ws.nrhs() != nrhs {
            return Err(MatrixError::DimensionMismatch(format!(
                "workspace is sized for n = {} × nrhs = {}, solve needs n = {n} × nrhs = {nrhs}",
                ws.n(),
                ws.nrhs()
            )));
        }
        // A dependent direction is one whose pivot has fallen this far below
        // the block's largest: it no longer contributes a numerically new
        // search direction.
        const DEFLATION_TOL: f64 = 1e-12;
        let start = Instant::now();
        let mut seconds_precond = 0.0f64;
        sys.gather_batch_into(b, &mut ws.r, nrhs);
        ws.x.fill(0.0);
        let mut rnorm = vec![0.0f64; nrhs];
        strided_norms_into(&ws.r, nrhs, &mut rnorm);
        check_finite_norms(&rnorm, 0)?;
        let thresholds: Vec<f64> = rnorm
            .iter()
            .map(|&bn| self.options.tolerance.threshold(bn))
            .collect();
        let mut iterations = vec![self.options.max_iterations; nrhs];
        let mut active: Vec<bool> = rnorm
            .iter()
            .zip(&thresholds)
            .map(|(&r, &t)| r > t)
            .collect();
        for (q, &a) in active.iter().enumerate() {
            if !a {
                iterations[q] = 0;
            }
        }
        let mut block_steps = 0usize;
        let mut deflations = 0usize;
        if active.iter().any(|&a| a) {
            // Initial directions: P = Z = M⁻¹ R, masked to the unconverged
            // systems (converged-at-entry columns never enter the basis).
            let t0 = Instant::now();
            pre.apply_batch_into(&self.solver, &ws.r, &mut ws.z, &mut ws.sweep, nrhs)?;
            seconds_precond += t0.elapsed().as_secs_f64();
            for (pc, zc) in ws.p.chunks_exact_mut(nrhs).zip(ws.z.chunks_exact(nrhs)) {
                for (q, (pv, &zv)) in pc.iter_mut().zip(zc).enumerate() {
                    *pv = if active[q] { zv } else { 0.0 };
                }
            }
            let mut in_basis = active.clone();
            while block_steps < self.options.max_iterations && active.iter().any(|&a| a) {
                self.solver
                    .spmv_batch_into(sys.matrix(), &ws.p, &mut ws.ap, nrhs)?;
                // α = W⁻¹ (Pᵀ R), W = Pᵀ A P. The Gram matrix is factored
                // in place; a copy feeds the β solve after the residual
                // update below invalidates this right-hand side.
                ops::block_gram_into(&ws.p, &ws.ap, nrhs, &mut ws.gram)?;
                ws.gram_copy.copy_from_slice(&ws.gram);
                ops::block_dots_into(&ws.p, &ws.r, nrhs, &mut ws.coef)?;
                ops::small_cholesky_solve(
                    &mut ws.gram,
                    nrhs,
                    &mut ws.coef,
                    nrhs,
                    DEFLATION_TOL,
                    &mut ws.retained,
                )?;
                // Rank-revealing deflation: a basis direction the Cholesky
                // dropped is linearly dependent — remove it (its system, if
                // still unconverged, keeps riding the retained directions
                // and gets a fresh direction at the β step).
                for q in 0..nrhs {
                    if in_basis[q] && !ws.retained[q] {
                        in_basis[q] = false;
                        deflations += 1;
                        for pc in ws.p.chunks_exact_mut(nrhs) {
                            pc[q] = 0.0;
                        }
                        for apc in ws.ap.chunks_exact_mut(nrhs) {
                            apc[q] = 0.0;
                        }
                        // Drop the direction from the saved Gram matrix
                        // too, so the β solve below projects onto the
                        // retained basis only.
                        for j in 0..nrhs {
                            ws.gram_copy[j * nrhs + q] = 0.0;
                            ws.gram_copy[q * nrhs + j] = 0.0;
                        }
                    }
                }
                if !in_basis.iter().any(|&b| b) {
                    // Every direction deflated with systems still active:
                    // no further progress is possible — stop honestly.
                    break;
                }
                // Freeze converged systems: their coefficient columns are
                // zeroed so x and r stay put.
                for (q, &act) in active.iter().enumerate() {
                    if !act {
                        for j in 0..nrhs {
                            ws.coef[j * nrhs + q] = 0.0;
                        }
                    }
                }
                // X += P α, R −= (A P) α.
                for i in 0..n {
                    let base = i * nrhs;
                    for (q, &act) in active.iter().enumerate() {
                        if !act {
                            continue;
                        }
                        let mut dx = 0.0;
                        let mut dr = 0.0;
                        for j in 0..nrhs {
                            let a = ws.coef[j * nrhs + q];
                            if a != 0.0 {
                                dx += ws.p[base + j] * a;
                                dr += ws.ap[base + j] * a;
                            }
                        }
                        ws.x[base + q] += dx;
                        ws.r[base + q] -= dr;
                    }
                }
                block_steps += 1;
                strided_norms_into(&ws.r, nrhs, &mut rnorm);
                check_finite_norms(&rnorm, block_steps)?;
                for q in 0..nrhs {
                    if active[q] && rnorm[q] <= thresholds[q] {
                        active[q] = false;
                        in_basis[q] = false;
                        iterations[q] = block_steps;
                        // Retire the frozen direction completely, exactly
                        // like deflation: zero its p *and* ap columns and
                        // its row/column of the saved Gram matrix, so the β
                        // projection below solves over the retained basis
                        // only (the zeroed Gram pivot is dropped by the
                        // rank-revealing Cholesky).
                        for pc in ws.p.chunks_exact_mut(nrhs) {
                            pc[q] = 0.0;
                        }
                        for apc in ws.ap.chunks_exact_mut(nrhs) {
                            apc[q] = 0.0;
                        }
                        for j in 0..nrhs {
                            ws.gram_copy[j * nrhs + q] = 0.0;
                            ws.gram_copy[q * nrhs + j] = 0.0;
                        }
                    }
                }
                if !active.iter().any(|&a| a) {
                    break;
                }
                // β = −W⁻¹ ((A P)ᵀ Z): A-conjugate the fresh preconditioned
                // residuals against the old basis.
                let t0 = Instant::now();
                pre.apply_batch_into(&self.solver, &ws.r, &mut ws.z, &mut ws.sweep, nrhs)?;
                seconds_precond += t0.elapsed().as_secs_f64();
                ops::block_dots_into(&ws.ap, &ws.z, nrhs, &mut ws.coef)?;
                ops::small_cholesky_solve(
                    &mut ws.gram_copy,
                    nrhs,
                    &mut ws.coef,
                    nrhs,
                    DEFLATION_TOL,
                    &mut ws.retained,
                )?;
                // P ← Z − P β, staged per row through the sweep scratch so
                // every new column reads the *old* direction block.
                for i in 0..n {
                    let base = i * nrhs;
                    for (q, &act) in active.iter().enumerate() {
                        if !act {
                            continue;
                        }
                        let mut acc = ws.z[base + q];
                        for j in 0..nrhs {
                            let bq = ws.coef[j * nrhs + q];
                            if bq != 0.0 {
                                acc -= ws.p[base + j] * bq;
                            }
                        }
                        ws.sweep[base + q] = acc;
                    }
                    for (q, &act) in active.iter().enumerate() {
                        if act {
                            ws.p[base + q] = ws.sweep[base + q];
                        }
                    }
                }
                // Every active system owns a fresh direction again;
                // dependence is re-detected at the next projection.
                in_basis.copy_from_slice(&active);
            }
        }
        let mut x = vec![0.0; n * nrhs];
        sys.scatter_batch_into(&ws.x, &mut x, nrhs);
        let converged: Vec<bool> = rnorm
            .iter()
            .zip(&thresholds)
            .map(|(&r, &t)| r <= t)
            .collect();
        for (it, &c) in iterations.iter_mut().zip(&converged) {
            if !c {
                *it = block_steps;
            }
        }
        Ok(PcgBlockOutcome {
            x,
            iterations,
            converged,
            residual_norms: rnorm,
            block_steps,
            deflations,
            seconds_total: start.elapsed().as_secs_f64(),
            seconds_precond,
        })
    }
}

/// Rejects a non-finite residual norm anywhere in a batch, naming the
/// iteration at which it appeared (0 is the initial residual).
fn check_finite_norms(rnorm: &[f64], iteration: usize) -> Result<()> {
    if rnorm.iter().any(|r| !r.is_finite()) {
        return Err(MatrixError::NonFiniteResidual { iteration });
    }
    Ok(())
}

/// Per-system 2-norms of an interleaved batch vector, into a caller buffer
/// (no allocation in the lockstep loop).
fn strided_norms_into(v: &[f64], nrhs: usize, out: &mut [f64]) {
    out.fill(0.0);
    for chunk in v.chunks_exact(nrhs) {
        for (a, &x) in out.iter_mut().zip(chunk) {
            *a += x * x;
        }
    }
    for a in out {
        *a = a.sqrt();
    }
}

/// Per-system dot products of two interleaved batch vectors.
fn strided_dots(u: &[f64], v: &[f64], nrhs: usize, out: &mut [f64]) {
    out.fill(0.0);
    for (cu, cv) in u.chunks_exact(nrhs).zip(v.chunks_exact(nrhs)) {
        for ((o, &a), &b) in out.iter_mut().zip(cu).zip(cv) {
            *o += a * b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Ic0, Identity, Ssor, SweepEngine};
    use sts_core::Method;
    use sts_matrix::{generators, ops};

    fn laplacian_system(nx: usize, ny: usize) -> SpdSystem {
        let a = generators::grid2d_laplacian(nx, ny).unwrap();
        SpdSystem::build(&a, Method::Sts3, 8).unwrap()
    }

    #[test]
    fn plain_cg_solves_the_laplacian() {
        let sys = laplacian_system(12, 12);
        let a = generators::grid2d_laplacian(12, 12).unwrap();
        let x_true: Vec<f64> = (0..sys.n())
            .map(|i| ((i % 13) as f64 - 6.0) * 0.5)
            .collect();
        let b = ops::spmv(&a, &x_true).unwrap();
        let pcg = Pcg::new(2, Schedule::Guided { min_chunk: 1 });
        let mut ws = KrylovWorkspace::new(sys.n());
        let out = pcg.solve(&sys, &mut Identity, &b, &mut ws).unwrap();
        assert!(out.converged, "CG must converge on an SPD Laplacian");
        assert!(ops::relative_error_inf(&out.x, &x_true) < 1e-6);
        assert_eq!(out.history.len(), out.iterations + 1);
        assert!(out.history.windows(2).any(|w| w[1] < w[0]));
        assert!(out.residual_norm <= out.history[0] * 1e-8);
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let sys = laplacian_system(16, 16);
        let a = generators::grid2d_laplacian(16, 16).unwrap();
        let x_true: Vec<f64> = (0..sys.n()).map(|i| 1.0 + (i % 7) as f64 * 0.4).collect();
        let b = ops::spmv(&a, &x_true).unwrap();
        let pcg = Pcg::new(3, Schedule::Guided { min_chunk: 1 });
        let mut ws = KrylovWorkspace::new(sys.n());
        let plain = pcg.solve(&sys, &mut Identity, &b, &mut ws).unwrap();
        let mut ssor = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
        let with_ssor = pcg.solve(&sys, &mut ssor, &b, &mut ws).unwrap();
        let mut ic0 = Ic0::new(&sys, pcg.solver(), SweepEngine::Pipelined).unwrap();
        let with_ic0 = pcg.solve(&sys, &mut ic0, &b, &mut ws).unwrap();
        assert!(plain.converged && with_ssor.converged && with_ic0.converged);
        assert!(
            with_ssor.iterations < plain.iterations,
            "SSOR must beat plain CG ({} vs {})",
            with_ssor.iterations,
            plain.iterations
        );
        assert!(
            with_ic0.iterations < plain.iterations,
            "IC(0) must beat plain CG ({} vs {})",
            with_ic0.iterations,
            plain.iterations
        );
        assert!(ops::relative_error_inf(&with_ssor.x, &x_true) < 1e-6);
        assert!(ops::relative_error_inf(&with_ic0.x, &x_true) < 1e-6);
        assert!(with_ssor.seconds_precond > 0.0);
        assert!(with_ssor.precond_share() > 0.0 && with_ssor.precond_share() < 1.0);
    }

    #[test]
    fn sequential_and_pipelined_sweeps_take_identical_iteration_counts() {
        // The acceptance invariant: both engines run the same per-row
        // arithmetic, so the iterate sequences — and hence the counts — are
        // identical, not merely close.
        let sys = laplacian_system(20, 20);
        let a = generators::grid2d_laplacian(20, 20).unwrap();
        let b = ops::spmv(&a, &vec![1.0; sys.n()]).unwrap();
        let pcg = Pcg::new(4, Schedule::Guided { min_chunk: 1 });
        let mut ws = KrylovWorkspace::new(sys.n());
        let mut seq = Ssor::new(&sys, pcg.solver(), SweepEngine::Sequential);
        let mut pip = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
        let out_seq = pcg.solve(&sys, &mut seq, &b, &mut ws).unwrap();
        let out_pip = pcg.solve(&sys, &mut pip, &b, &mut ws).unwrap();
        assert!(out_seq.converged && out_pip.converged);
        assert_eq!(out_seq.iterations, out_pip.iterations);
        assert_eq!(out_seq.history, out_pip.history, "bitwise-identical paths");
    }

    #[test]
    fn absolute_tolerance_and_iteration_bound_are_honored() {
        let sys = laplacian_system(10, 10);
        let a = generators::grid2d_laplacian(10, 10).unwrap();
        let x_rough: Vec<f64> = (0..sys.n())
            .map(|i| ((i * 7919) % 23) as f64 - 11.0)
            .collect();
        let b = ops::spmv(&a, &x_rough).unwrap();
        // A bound too tight to reach in 3 iterations.
        let pcg = Pcg::with_options(
            2,
            Schedule::Static,
            PcgOptions {
                tolerance: Tolerance::Absolute(1e-12),
                max_iterations: 3,
                record_history: false,
            },
        );
        let mut ws = KrylovWorkspace::new(sys.n());
        let out = pcg.solve(&sys, &mut Identity, &b, &mut ws).unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert!(out.history.is_empty());
    }

    #[test]
    fn batched_solve_matches_single_rhs_solves() {
        let sys = laplacian_system(11, 13);
        let a = generators::grid2d_laplacian(11, 13).unwrap();
        let n = sys.n();
        let nrhs = 3;
        let pcg = Pcg::new(3, Schedule::Guided { min_chunk: 1 });
        let mut pre = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
        let mut b = vec![0.0; n * nrhs];
        let mut x_true = vec![0.0; n * nrhs];
        for q in 0..nrhs {
            let xq: Vec<f64> = (0..n)
                .map(|i| 1.0 + ((i + 3 * q) % 9) as f64 * 0.3)
                .collect();
            let bq = ops::spmv(&a, &xq).unwrap();
            for i in 0..n {
                b[i * nrhs + q] = bq[i];
                x_true[i * nrhs + q] = xq[i];
            }
        }
        let mut ws = KrylovWorkspace::with_nrhs(n, nrhs);
        let out = pcg.solve_batch(&sys, &mut pre, &b, nrhs, &mut ws).unwrap();
        assert!(
            out.converged.iter().all(|&c| c),
            "all systems must converge"
        );
        assert!(ops::relative_error_inf(&out.x, &x_true) < 1e-6);
        assert!(out.lockstep_iterations >= *out.iterations.iter().max().unwrap());
        // Each system's count matches its standalone solve (same arithmetic
        // per slot — frozen systems never perturb the others).
        let mut ws1 = KrylovWorkspace::new(n);
        for q in 0..nrhs {
            let bq: Vec<f64> = (0..n).map(|i| b[i * nrhs + q]).collect();
            let single = pcg.solve(&sys, &mut pre, &bq, &mut ws1).unwrap();
            assert_eq!(
                single.iterations, out.iterations[q],
                "system {q} diverged from its standalone count"
            );
        }
    }

    /// A preconditioner manufactured to stagnate: the second application
    /// returns a vector *exactly* orthogonal to r (so `rz` lands on 0.0
    /// while the residual is still alive), and later applications return r
    /// again — the shape that used to drive `beta = rz_new / 0` to ±∞ and
    /// then `x += (0·∞) · p` to NaN.
    struct StagnatingPre {
        calls: usize,
    }

    impl Preconditioner for StagnatingPre {
        fn label(&self) -> &'static str {
            "stagnating"
        }

        fn apply_into(
            &mut self,
            _solver: &sts_core::ParallelSolver,
            r: &[f64],
            z: &mut [f64],
            _sweep: &mut [f64],
        ) -> crate::Result<()> {
            if self.calls == 1 {
                // z ⊥ r exactly: dot(r, z) = r₀·r₁ − r₁·r₀ = 0.0 in floating
                // point (the two products are bitwise equal).
                z.fill(0.0);
                z[0] = r[1];
                z[1] = -r[0];
            } else {
                z.copy_from_slice(r);
            }
            self.calls += 1;
            Ok(())
        }
    }

    #[test]
    fn stagnated_rz_breaks_cleanly_instead_of_poisoning_x() {
        // Regression for the beta recurrence dividing by rz == 0: the solve
        // must stop at the stagnation point with finite x/r state and an
        // honest convergence flag, not return NaNs.
        let sys = laplacian_system(8, 8);
        let a = generators::grid2d_laplacian(8, 8).unwrap();
        // A rough right-hand side so the solve is still far from converged
        // when the stagnating application lands at iteration 1.
        let x_rough: Vec<f64> = (0..sys.n())
            .map(|i| ((i * 7919) % 23) as f64 - 11.0)
            .collect();
        let b = ops::spmv(&a, &x_rough).unwrap();
        let pcg = Pcg::new(2, Schedule::Static);
        let mut ws = KrylovWorkspace::new(sys.n());
        let mut pre = StagnatingPre { calls: 0 };
        let out = pcg.solve(&sys, &mut pre, &b, &mut ws).unwrap();
        assert!(
            out.x.iter().all(|v| v.is_finite()),
            "x must stay unpoisoned through the rz == 0 breakdown"
        );
        assert!(out.residual_norm.is_finite());
        assert!(
            !out.converged,
            "the stagnated solve did not reach tolerance"
        );
        assert!(out.history.iter().all(|v| v.is_finite()));
        // The orthogonal application lands at iteration 1 (rz = 0, alpha =
        // 0); the guard fires at the next beta step, so exactly two
        // iterations ran.
        assert_eq!(out.iterations, 2);
    }

    #[test]
    fn zero_rhs_converges_immediately_with_zero_solution() {
        let sys = laplacian_system(9, 9);
        let pcg = Pcg::new(2, Schedule::Static);
        let mut ws = KrylovWorkspace::new(sys.n());
        let b = vec![0.0; sys.n()];
        let out = pcg.solve(&sys, &mut Identity, &b, &mut ws).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.residual_norm, 0.0);
        assert!(out.x.iter().all(|&v| v == 0.0));
        // Batch and block paths agree: an all-zero batch is converged at
        // entry with zero block steps.
        let nrhs = 3;
        let mut wsb = KrylovWorkspace::with_nrhs(sys.n(), nrhs);
        let bb = vec![0.0; sys.n() * nrhs];
        let blk = pcg
            .solve_block(&sys, &mut Identity, &bb, nrhs, &mut wsb)
            .unwrap();
        assert!(blk.converged.iter().all(|&c| c));
        assert_eq!(blk.block_steps, 0);
        assert!(blk.iterations.iter().all(|&i| i == 0));
        assert!(blk.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn absolute_tolerance_converging_path_is_honored() {
        // The Absolute branch with a reachable bound: the final residual
        // respects the bound outright (no scaling by ‖b‖).
        let sys = laplacian_system(10, 10);
        let a = generators::grid2d_laplacian(10, 10).unwrap();
        let b = ops::spmv(&a, &vec![2.0; sys.n()]).unwrap();
        let bound = 1e-6;
        let pcg = Pcg::with_options(
            2,
            Schedule::Static,
            PcgOptions {
                tolerance: Tolerance::Absolute(bound),
                max_iterations: 500,
                record_history: true,
            },
        );
        let mut ws = KrylovWorkspace::new(sys.n());
        let out = pcg.solve(&sys, &mut Identity, &b, &mut ws).unwrap();
        assert!(out.converged);
        assert!(out.residual_norm <= bound);
        assert!(
            out.history[out.iterations - 1] > bound,
            "the solve must stop at the first iteration under the bound"
        );
    }

    #[test]
    fn block_solve_matches_single_solves_in_fewer_or_equal_steps() {
        let sys = laplacian_system(14, 11);
        let a = generators::grid2d_laplacian(14, 11).unwrap();
        let n = sys.n();
        let nrhs = 3;
        let pcg = Pcg::new(3, Schedule::Guided { min_chunk: 1 });
        let mut pre = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
        let mut b = vec![0.0; n * nrhs];
        let mut x_true = vec![0.0; n * nrhs];
        for q in 0..nrhs {
            let xq: Vec<f64> = (0..n)
                .map(|i| ((i * 7919 + q * 131) % 23) as f64 * 0.3 - 3.0)
                .collect();
            let bq = ops::spmv(&a, &xq).unwrap();
            for i in 0..n {
                b[i * nrhs + q] = bq[i];
                x_true[i * nrhs + q] = xq[i];
            }
        }
        let mut ws = KrylovWorkspace::with_nrhs(n, nrhs);
        let out = pcg.solve_block(&sys, &mut pre, &b, nrhs, &mut ws).unwrap();
        assert!(out.converged.iter().all(|&c| c), "block CG must converge");
        assert!(ops::relative_error_inf(&out.x, &x_true) < 1e-6);
        assert_eq!(out.block_steps, *out.iterations.iter().max().unwrap());
        // On this (deterministic) workload no system needs more steps than
        // its standalone scalar solve. That is an empirical property of the
        // workload, not a theorem — block CG minimizes each column's A-norm
        // error over the *shared* space, whose per-column polynomial can in
        // principle lag a tailored scalar one by a step on skewed batches
        // (e.g. one tiny-norm smooth system among rough ones).
        let mut ws1 = KrylovWorkspace::new(n);
        let mut total_single = 0;
        for q in 0..nrhs {
            let bq: Vec<f64> = (0..n).map(|i| b[i * nrhs + q]).collect();
            let single = pcg.solve(&sys, &mut pre, &bq, &mut ws1).unwrap();
            assert!(
                out.iterations[q] <= single.iterations,
                "system {q} took {} block steps vs {} scalar iterations",
                out.iterations[q],
                single.iterations
            );
            total_single += single.iterations;
        }
        assert!(out.total_iterations() <= total_single);
        assert!(out.seconds_precond > 0.0);
    }

    #[test]
    fn block_solve_deflates_duplicate_right_hand_sides() {
        // Two identical columns make P rank-deficient at step 0: the
        // rank-revealing projection must drop one direction and still drive
        // both systems to the same solution.
        let sys = laplacian_system(12, 12);
        let a = generators::grid2d_laplacian(12, 12).unwrap();
        let n = sys.n();
        let nrhs = 3;
        let pcg = Pcg::new(2, Schedule::Guided { min_chunk: 1 });
        let mut pre = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
        let b0: Vec<f64> = (0..n).map(|i| ((i * 31) % 19) as f64 - 9.0).collect();
        let b2: Vec<f64> = (0..n).map(|i| ((i * 17) % 13) as f64 * 0.5).collect();
        let mut b = vec![0.0; n * nrhs];
        for i in 0..n {
            b[i * nrhs] = b0[i];
            b[i * nrhs + 1] = b0[i]; // exact duplicate of column 0
            b[i * nrhs + 2] = b2[i];
        }
        let mut ws = KrylovWorkspace::with_nrhs(n, nrhs);
        let out = pcg.solve_block(&sys, &mut pre, &b, nrhs, &mut ws).unwrap();
        assert!(out.converged.iter().all(|&c| c));
        assert!(out.deflations >= 1, "the duplicate direction must deflate");
        for i in 0..n {
            assert!(
                (out.x[i * nrhs] - out.x[i * nrhs + 1]).abs() < 1e-8,
                "duplicate systems must agree at row {i}"
            );
        }
        // Against the scalar reference solution.
        let mut ws1 = KrylovWorkspace::new(n);
        let single = pcg.solve(&sys, &mut pre, &b0, &mut ws1).unwrap();
        let x0: Vec<f64> = (0..n).map(|i| out.x[i * nrhs]).collect();
        assert!(ops::relative_error_inf(&x0, &single.x) < 1e-6);
        let r0 = ops::spmv(&a, &x0).unwrap();
        let res: Vec<f64> = r0.iter().zip(&b0).map(|(a, b)| a - b).collect();
        assert!(ops::norm2(&res) <= 1e-8 * ops::norm2(&b0) * 10.0);
    }

    #[test]
    fn block_and_batch_solves_run_on_the_sequential_engine() {
        // The engine matrix is complete: batched lockstep and block solves
        // work on single-core hosts through the sequential batched split
        // kernels, with iterate sequences identical to the pipelined engine
        // (the kernels are bitwise identical per lane).
        let sys = laplacian_system(10, 13);
        let a = generators::grid2d_laplacian(10, 13).unwrap();
        let n = sys.n();
        let nrhs = 2;
        let pcg = Pcg::new(2, Schedule::Guided { min_chunk: 1 });
        let mut b = vec![0.0; n * nrhs];
        for q in 0..nrhs {
            let xq: Vec<f64> = (0..n)
                .map(|i| 1.0 + ((i + 5 * q) % 7) as f64 * 0.4)
                .collect();
            let bq = ops::spmv(&a, &xq).unwrap();
            for i in 0..n {
                b[i * nrhs + q] = bq[i];
            }
        }
        let mut ws = KrylovWorkspace::with_nrhs(n, nrhs);
        let mut seq = Ssor::new(&sys, pcg.solver(), SweepEngine::Sequential);
        let mut pip = Ssor::new(&sys, pcg.solver(), SweepEngine::Pipelined);
        let batch_seq = pcg.solve_batch(&sys, &mut seq, &b, nrhs, &mut ws).unwrap();
        let batch_pip = pcg.solve_batch(&sys, &mut pip, &b, nrhs, &mut ws).unwrap();
        assert!(batch_seq.converged.iter().all(|&c| c));
        assert_eq!(batch_seq.iterations, batch_pip.iterations);
        assert!(ops::relative_error_inf(&batch_seq.x, &batch_pip.x) < 1e-10);
        // The strong form of "exactly as single-RHS": every lane of the
        // sequential-engine batch solve is bitwise identical to its
        // standalone sequential-engine solve (the batched sequential sweeps
        // run the scalar kernels' exact floating-point sequence; the
        // pipelined batch kernels only promise tolerance-level agreement).
        let mut ws1 = KrylovWorkspace::new(n);
        for q in 0..nrhs {
            let bq: Vec<f64> = (0..n).map(|i| b[i * nrhs + q]).collect();
            let single = pcg.solve(&sys, &mut seq, &bq, &mut ws1).unwrap();
            assert_eq!(single.iterations, batch_seq.iterations[q]);
            for i in 0..n {
                assert_eq!(
                    batch_seq.x[i * nrhs + q],
                    single.x[i],
                    "lane {q} diverged from its standalone solve at row {i}"
                );
            }
        }
        let block_seq = pcg.solve_block(&sys, &mut seq, &b, nrhs, &mut ws).unwrap();
        let block_pip = pcg.solve_block(&sys, &mut pip, &b, nrhs, &mut ws).unwrap();
        assert!(block_seq.converged.iter().all(|&c| c));
        assert_eq!(block_seq.iterations, block_pip.iterations);
        assert!(ops::relative_error_inf(&block_seq.x, &block_pip.x) < 1e-10);
    }

    #[test]
    fn mismatched_workspace_and_rhs_are_rejected() {
        let sys = laplacian_system(6, 6);
        let pcg = Pcg::new(2, Schedule::Static);
        let mut ws = KrylovWorkspace::new(sys.n());
        assert!(pcg.solve(&sys, &mut Identity, &[1.0; 3], &mut ws).is_err());
        let mut small = KrylovWorkspace::new(5);
        assert!(pcg
            .solve(&sys, &mut Identity, &vec![1.0; sys.n()], &mut small)
            .is_err());
        let b = vec![1.0; sys.n() * 2];
        assert!(pcg
            .solve_batch(&sys, &mut Identity, &b, 0, &mut ws)
            .is_err());
        assert!(pcg
            .solve_batch(&sys, &mut Identity, &b, 2, &mut ws)
            .is_err());
        assert!(pcg
            .solve_block(&sys, &mut Identity, &b, 0, &mut ws)
            .is_err());
        assert!(pcg
            .solve_block(&sys, &mut Identity, &b, 2, &mut ws)
            .is_err());
        assert!(pcg
            .solve_block(&sys, &mut Identity, &b[..5], 2, &mut ws)
            .is_err());
    }
}
