//! Preconditioners whose sweeps run on the STS triangular kernels.
//!
//! A preconditioner application is two triangular sweeps — one forward, one
//! backward — on a fixed structure, repeated every iteration. Both
//! implementations here therefore bind to an [`SpdSystem`]'s structure at
//! construction, build their [`PipelinePlan`]s once, and apply through the
//! allocation-free `solve_*_into` kernels:
//!
//! * [`Ssor`] — symmetric Gauss–Seidel, `M = (D + L) D⁻¹ (D + L)ᵀ`, whose
//!   operand *is* the system structure's reordered lower triangle (no extra
//!   factorization);
//! * [`Ic0`] — zero-fill incomplete Cholesky, `M = F Fᵀ` with
//!   `F = ic0(P A Pᵀ)`: the factor shares the lower triangle's sparsity
//!   pattern exactly, so it reuses the system's pack / super-row hierarchy
//!   (and hence the whole split-kernel machinery) through
//!   [`StsStructure::with_operand`]. The factorization itself is
//!   level-scheduled over that same hierarchy on the driver's pool by
//!   default ([`Ic0::new_parallel`]), bitwise identical to the sequential
//!   sweep ([`Ic0::new_sequential`]);
//! * [`Identity`] — `M = I`, turning the driver into plain CG for
//!   comparison runs.
//!
//! The [`SweepEngine`] selects between the sequential split kernels and the
//! pack-pipelined parallel kernels. Both run the *same* per-row arithmetic
//! in the same order, so switching engines changes wall time, never the
//! iterate sequence — sequential- and pipelined-sweep PCG take bitwise
//! identical paths and the same iteration count.

use std::sync::Arc;

use sts_core::{ParallelSolver, PipelinePlan, PrecisionPolicy, StsStructure};
use sts_matrix::MatrixError;

use crate::system::SpdSystem;
use crate::Result;

/// Which kernels a preconditioner's triangular sweeps run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepEngine {
    /// The sequential split kernels (`solve_sequential_split_into` /
    /// `solve_transpose_sequential_split_into`): single-core, no pool
    /// involvement.
    Sequential,
    /// The pack-pipelined parallel kernels (`solve_pipelined_into` /
    /// `solve_transpose_pipelined_into`) on the driver's worker pool.
    Pipelined,
}

/// The application contract `z = M⁻¹ r`, in the system's reordered
/// numbering, with no heap allocation: implementations may only use the
/// provided buffers (`sweep` is the caller's mid-sweep scratch from the
/// [`KrylovWorkspace`](crate::KrylovWorkspace)) and their own prebuilt
/// state.
pub trait Preconditioner {
    /// Short label for reports ("none", "ssor", "ic0").
    fn label(&self) -> &'static str;

    /// Applies `z ← M⁻¹ r`. `solver` must be the pool the preconditioner's
    /// plans were built against (the `_into` kernels verify this).
    fn apply_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
    ) -> Result<()>;

    /// Applies `z ← M⁻¹ r` to `nrhs` interleaved systems
    /// (`r[i * nrhs + q]`). Both sweep engines carry batch sweeps ([`Ssor`]
    /// / [`Ic0`] route the sequential engine through the batched sequential
    /// split kernels); the trait default refuses for preconditioners
    /// without batch support.
    fn apply_batch_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let _ = (solver, r, z, sweep, nrhs);
        Err(MatrixError::InvalidParameter(format!(
            "preconditioner '{}' does not support batched application",
            self.label()
        )))
    }

    /// Selects the value-slab precision the sweeps read
    /// ([`PrecisionPolicy::ValuesF32WithRefinement`] loads the lazily
    /// demoted f32 slabs, accumulating in f64). The default is a no-op:
    /// preconditioners without triangular sweeps ([`Identity`]) have nothing
    /// to demote and always behave as f64. Implementations must make the
    /// switch take effect on the *next* application; they may eagerly build
    /// the f32 slabs so the first mixed-precision apply is not the one
    /// paying the demotion sweep.
    fn set_precision(&mut self, precision: PrecisionPolicy) {
        let _ = precision;
    }

    /// The value-slab precision the sweeps currently read
    /// ([`PrecisionPolicy::ValuesF64`] unless
    /// [`Preconditioner::set_precision`] switched it).
    fn precision(&self) -> PrecisionPolicy {
        PrecisionPolicy::ValuesF64
    }
}

/// `M = I`: plain conjugate gradient.
#[derive(Debug, Default, Clone, Copy)]
pub struct Identity;

impl Preconditioner for Identity {
    fn label(&self) -> &'static str {
        "none"
    }

    fn apply_into(
        &mut self,
        _solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        _sweep: &mut [f64],
    ) -> Result<()> {
        z.copy_from_slice(r);
        Ok(())
    }

    fn apply_batch_into(
        &mut self,
        _solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        _sweep: &mut [f64],
        _nrhs: usize,
    ) -> Result<()> {
        z.copy_from_slice(r);
        Ok(())
    }
}

/// The two sweeps shared by [`Ssor`] and [`Ic0`]: a structure, its
/// forward/backward plans (pipelined engine only), and the engine choice.
#[derive(Debug)]
struct SweepPair {
    structure: Arc<StsStructure>,
    engine: SweepEngine,
    /// `(forward, backward)` plans; `None` for the sequential engine.
    plans: Option<(PipelinePlan, PipelinePlan)>,
    /// Which value slabs the sweeps read; switched by
    /// [`Preconditioner::set_precision`], f64 by default.
    precision: PrecisionPolicy,
}

impl SweepPair {
    fn new(structure: Arc<StsStructure>, solver: &ParallelSolver, engine: SweepEngine) -> Self {
        let plans = match engine {
            SweepEngine::Sequential => {
                // Force the lazy layouts now so the first apply is not the
                // one paying the build sweeps.
                structure.split();
                structure.transpose_split();
                None
            }
            SweepEngine::Pipelined => {
                Some((solver.plan(&structure), solver.plan_transpose(&structure)))
            }
        };
        SweepPair {
            structure,
            engine,
            plans,
            precision: PrecisionPolicy::ValuesF64,
        }
    }

    /// Switches the value-slab precision of subsequent sweeps, eagerly
    /// demoting the slabs so the next apply is not the one paying the
    /// one-time conversion.
    fn set_precision(&mut self, precision: PrecisionPolicy) {
        if precision == PrecisionPolicy::ValuesF32WithRefinement {
            self.structure.split().ext_vals_f32();
            self.structure.split().int_vals_f32();
            self.structure.transpose_split().ext_vals_f32();
            self.structure.transpose_split().int_vals_f32();
        }
        self.precision = precision;
    }

    fn f32_vals(&self) -> bool {
        self.precision == PrecisionPolicy::ValuesF32WithRefinement
    }

    /// Forward sweep `L y = r` into `y`.
    fn forward(&mut self, solver: &ParallelSolver, r: &[f64], y: &mut [f64]) -> Result<()> {
        let f32_vals = self.f32_vals();
        match (&self.engine, &mut self.plans) {
            (SweepEngine::Sequential, _) if f32_vals => {
                self.structure.solve_sequential_split_f32_into(r, y)
            }
            (SweepEngine::Sequential, _) => self.structure.solve_sequential_split_into(r, y),
            (SweepEngine::Pipelined, Some((fwd, _))) if f32_vals => {
                solver.solve_pipelined_f32_into(&self.structure, fwd, r, y)
            }
            (SweepEngine::Pipelined, Some((fwd, _))) => {
                solver.solve_pipelined_into(&self.structure, fwd, r, y)
            }
            (SweepEngine::Pipelined, None) => unreachable!("pipelined pair always holds plans"),
        }
    }

    /// Backward sweep `Lᵀ z = t` into `z`.
    fn backward(&mut self, solver: &ParallelSolver, t: &[f64], z: &mut [f64]) -> Result<()> {
        let f32_vals = self.f32_vals();
        match (&self.engine, &mut self.plans) {
            (SweepEngine::Sequential, _) if f32_vals => self
                .structure
                .solve_transpose_sequential_split_f32_into(t, z),
            (SweepEngine::Sequential, _) => {
                self.structure.solve_transpose_sequential_split_into(t, z)
            }
            (SweepEngine::Pipelined, Some((_, bwd))) if f32_vals => {
                solver.solve_transpose_pipelined_f32_into(&self.structure, bwd, t, z)
            }
            (SweepEngine::Pipelined, Some((_, bwd))) => {
                solver.solve_transpose_pipelined_into(&self.structure, bwd, t, z)
            }
            (SweepEngine::Pipelined, None) => unreachable!("pipelined pair always holds plans"),
        }
    }

    /// Batched forward sweep. The sequential engine runs the batched
    /// sequential split kernel — bitwise identical per right-hand side to
    /// the scalar sequential sweep — so engine selection works for batches
    /// exactly as it does for single-RHS applications.
    fn forward_batch(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        y: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let f32_vals = self.f32_vals();
        match (&self.engine, &mut self.plans) {
            (SweepEngine::Sequential, _) if f32_vals => self
                .structure
                .solve_batch_sequential_split_f32_into(r, y, nrhs),
            (SweepEngine::Sequential, _) => {
                self.structure.solve_batch_sequential_split_into(r, y, nrhs)
            }
            (SweepEngine::Pipelined, Some((fwd, _))) if f32_vals => {
                solver.solve_batch_pipelined_f32_into(&self.structure, fwd, r, y, nrhs)
            }
            (SweepEngine::Pipelined, Some((fwd, _))) => {
                solver.solve_batch_pipelined_into(&self.structure, fwd, r, y, nrhs)
            }
            (SweepEngine::Pipelined, None) => unreachable!("pipelined pair always holds plans"),
        }
    }

    /// Batched backward sweep; engine selection as in
    /// [`SweepPair::forward_batch`].
    fn backward_batch(
        &mut self,
        solver: &ParallelSolver,
        t: &[f64],
        z: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        let f32_vals = self.f32_vals();
        match (&self.engine, &mut self.plans) {
            (SweepEngine::Sequential, _) if f32_vals => self
                .structure
                .solve_transpose_batch_sequential_split_f32_into(t, z, nrhs),
            (SweepEngine::Sequential, _) => self
                .structure
                .solve_transpose_batch_sequential_split_into(t, z, nrhs),
            (SweepEngine::Pipelined, Some((_, bwd))) if f32_vals => {
                solver.solve_transpose_batch_pipelined_f32_into(&self.structure, bwd, t, z, nrhs)
            }
            (SweepEngine::Pipelined, Some((_, bwd))) => {
                solver.solve_transpose_batch_pipelined_into(&self.structure, bwd, t, z, nrhs)
            }
            (SweepEngine::Pipelined, None) => unreachable!("pipelined pair always holds plans"),
        }
    }
}

/// Symmetric Gauss–Seidel (SSOR with ω = 1):
/// `M = (D + L) D⁻¹ (D + L)ᵀ`, where `D + L` is the system structure's
/// reordered lower triangle. Application is a forward sweep, a diagonal
/// scale, and a backward sweep — all on the STS kernels, no factorization.
#[derive(Debug)]
pub struct Ssor {
    sweeps: SweepPair,
    /// Diagonal of the reordered operand (`D`).
    diag: Vec<f64>,
}

impl Ssor {
    /// Builds the preconditioner on `sys`'s structure, with plans bound to
    /// `solver` when the pipelined engine is selected.
    pub fn new(sys: &SpdSystem, solver: &ParallelSolver, engine: SweepEngine) -> Ssor {
        let structure = sys.structure_arc();
        let diag = (0..structure.n())
            .map(|i| structure.lower().diag(i))
            .collect();
        Ssor {
            sweeps: SweepPair::new(structure, solver, engine),
            diag,
        }
    }
}

impl Preconditioner for Ssor {
    fn label(&self) -> &'static str {
        "ssor"
    }

    fn apply_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
    ) -> Result<()> {
        // (D + L) y = r.
        self.sweeps.forward(solver, r, sweep)?;
        // t = D y, in place.
        for (value, d) in sweep.iter_mut().zip(&self.diag) {
            *value *= d;
        }
        // (D + L)ᵀ z = t.
        self.sweeps.backward(solver, sweep, z)
    }

    fn apply_batch_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        self.sweeps.forward_batch(solver, r, sweep, nrhs)?;
        for (i, &d) in self.diag.iter().enumerate() {
            for value in &mut sweep[i * nrhs..(i + 1) * nrhs] {
                *value *= d;
            }
        }
        self.sweeps.backward_batch(solver, sweep, z, nrhs)
    }

    fn set_precision(&mut self, precision: PrecisionPolicy) {
        self.sweeps.set_precision(precision);
    }

    fn precision(&self) -> PrecisionPolicy {
        self.sweeps.precision
    }
}

/// Zero-fill incomplete Cholesky: `M = F Fᵀ` with `F = ic0(P A Pᵀ)`.
///
/// The factor is computed in the system's reordered numbering (incomplete
/// factorizations are ordering-dependent, so factoring the *reordered*
/// matrix is what makes the preconditioner consistent with the iteration's
/// coordinates), and carried by a second [`StsStructure`] that shares the
/// system's pack / super-row hierarchy — IC(0) preserves the sparsity
/// pattern, so the hierarchy transfers via
/// [`StsStructure::with_operand`].
#[derive(Debug)]
pub struct Ic0 {
    sweeps: SweepPair,
    /// The Manteuffel shift α the factored operand was built with
    /// (`0.0` for a plain factorization).
    shift: f64,
    /// The single-row diagonal boost `(row, alpha)` the operand was built
    /// with, if the row-boost recovery rung produced this factor.
    row_boost: Option<(usize, f64)>,
}

impl Ic0 {
    /// Factorizes `sys`'s reordered operator and builds the sweep state.
    /// Fails with [`MatrixError::FactorizationBreakdown`] when the matrix is
    /// not SPD on the retained pattern.
    ///
    /// This is the **default setup path**: the factorization is
    /// level-scheduled over the system's pack hierarchy on `solver`'s pool
    /// ([`Ic0::new_parallel`]), which on large systems takes the
    /// preconditioner setup off the critical path the pipelined sweeps just
    /// shortened. The sequential sweep is retained as
    /// [`Ic0::new_sequential`]; both produce **bitwise identical** factors
    /// (and identical breakdown errors), so the choice only moves wall
    /// time.
    pub fn new(sys: &SpdSystem, solver: &ParallelSolver, engine: SweepEngine) -> Result<Ic0> {
        Ic0::new_parallel(sys, solver, engine)
    }

    /// [`Ic0::new`] with the factorization explicitly level-scheduled on
    /// `solver`'s worker pool
    /// (`ParallelSolver::parallel_ic0`): pack `p`'s update
    /// sweep waits only on the packs its column range actually reads, so
    /// setup work of later packs overlaps stragglers of earlier ones.
    pub fn new_parallel(
        sys: &SpdSystem,
        solver: &ParallelSolver,
        engine: SweepEngine,
    ) -> Result<Ic0> {
        let factor = solver.parallel_ic0(sys.structure(), sys.matrix())?;
        let structure = Arc::new(sys.structure().with_operand(factor)?);
        Ok(Ic0 {
            sweeps: SweepPair::new(structure, solver, engine),
            shift: 0.0,
            row_boost: None,
        })
    }

    /// [`Ic0::new`] with the sequential up-looking factorization
    /// (`sts_matrix::factor::ic0`) — the single-core fallback, bitwise
    /// identical to the level-scheduled build.
    pub fn new_sequential(
        sys: &SpdSystem,
        solver: &ParallelSolver,
        engine: SweepEngine,
    ) -> Result<Ic0> {
        let factor = sts_matrix::factor::ic0(sys.matrix())?;
        let structure = Arc::new(sys.structure().with_operand(factor)?);
        Ok(Ic0 {
            sweeps: SweepPair::new(structure, solver, engine),
            shift: 0.0,
            row_boost: None,
        })
    }

    /// **Manteuffel-shifted** IC(0): factors `A + α·diag(A)` instead of `A`
    /// (every diagonal entry scaled by `1 + α`), the classical recovery for
    /// an incomplete factorization that breaks down on an operand that is
    /// SPD but not an M-matrix. The pattern is unchanged, so the factor
    /// rides the same pack hierarchy, and a large enough α always restores
    /// diagonal dominance (and hence existence of the factorization) at the
    /// price of a weaker preconditioner. This is the ladder rung the
    /// recovery driver ([`crate::RobustPcg`]) climbs under escalating α.
    ///
    /// Setup is level-scheduled on `solver`'s pool, bitwise identical to
    /// [`Ic0::new_shifted_sequential`].
    pub fn new_shifted(
        sys: &SpdSystem,
        solver: &ParallelSolver,
        engine: SweepEngine,
        alpha: f64,
    ) -> Result<Ic0> {
        Ic0::new_shifted_parallel(sys, solver, engine, alpha)
    }

    /// [`Ic0::new_shifted`] with the factorization explicitly
    /// level-scheduled on `solver`'s worker pool.
    pub fn new_shifted_parallel(
        sys: &SpdSystem,
        solver: &ParallelSolver,
        engine: SweepEngine,
        alpha: f64,
    ) -> Result<Ic0> {
        let shifted = shifted_operand(sys.matrix(), alpha)?;
        let factor = solver.parallel_ic0(sys.structure(), &shifted)?;
        let structure = Arc::new(sys.structure().with_operand(factor)?);
        Ok(Ic0 {
            sweeps: SweepPair::new(structure, solver, engine),
            shift: alpha,
            row_boost: None,
        })
    }

    /// [`Ic0::new_shifted`] with the sequential up-looking factorization —
    /// bitwise identical to the level-scheduled shifted build.
    pub fn new_shifted_sequential(
        sys: &SpdSystem,
        solver: &ParallelSolver,
        engine: SweepEngine,
        alpha: f64,
    ) -> Result<Ic0> {
        let shifted = shifted_operand(sys.matrix(), alpha)?;
        let factor = sts_matrix::factor::ic0(&shifted)?;
        let structure = Arc::new(sys.structure().with_operand(factor)?);
        Ok(Ic0 {
            sweeps: SweepPair::new(structure, solver, engine),
            shift: alpha,
            row_boost: None,
        })
    }

    /// **Row-boosted** IC(0): factors `A` with only row `row`'s diagonal
    /// entry scaled by `1 + α`. This is the gentlest recovery for a
    /// factorization that broke down at a *known* pivot row (reported by
    /// [`MatrixError::FactorizationBreakdown`]): instead of the
    /// whole-diagonal Manteuffel shift — which weakens the preconditioner
    /// everywhere — the perturbation stays local to the row that lost
    /// positivity. The recovery ladder ([`crate::RobustPcg`]) tries this
    /// rung before escalating to [`Ic0::new_shifted`].
    ///
    /// Setup is level-scheduled on `solver`'s pool, like [`Ic0::new`].
    pub fn new_row_boosted(
        sys: &SpdSystem,
        solver: &ParallelSolver,
        engine: SweepEngine,
        row: usize,
        alpha: f64,
    ) -> Result<Ic0> {
        let boosted = boosted_operand(sys.matrix(), row, alpha)?;
        let factor = solver.parallel_ic0(sys.structure(), &boosted)?;
        let structure = Arc::new(sys.structure().with_operand(factor)?);
        Ok(Ic0 {
            sweeps: SweepPair::new(structure, solver, engine),
            shift: 0.0,
            row_boost: Some((row, alpha)),
        })
    }

    /// The Manteuffel shift α this factorization was built with (`0.0` for
    /// the plain constructors).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// The `(row, alpha)` single-row diagonal boost this factorization was
    /// built with, if any ([`Ic0::new_row_boosted`]).
    pub fn row_boost(&self) -> Option<(usize, f64)> {
        self.row_boost
    }

    /// The factor structure's operand values (test/diagnostic hook: setup
    /// engines are asserted bitwise identical through this).
    pub fn factor_values(&self) -> &[f64] {
        self.sweeps.structure.lower().values()
    }
}

/// `A + α·diag(A)`: a copy of `a` with every diagonal entry scaled by
/// `1 + α`. The sparsity pattern — and therefore the pack hierarchy every
/// downstream kernel runs on — is untouched.
fn shifted_operand(a: &sts_matrix::CsrMatrix, alpha: f64) -> Result<sts_matrix::CsrMatrix> {
    if !alpha.is_finite() || alpha < 0.0 {
        return Err(MatrixError::InvalidParameter(format!(
            "Manteuffel shift must be finite and non-negative, got {alpha}"
        )));
    }
    let mut diag_pos = Vec::with_capacity(a.nrows());
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    for r in 0..a.nrows() {
        for (k, &c) in col_idx
            .iter()
            .enumerate()
            .take(row_ptr[r + 1])
            .skip(row_ptr[r])
        {
            if c == r {
                diag_pos.push(k);
            }
        }
    }
    let mut shifted = a.clone();
    let values = shifted.values_mut();
    for k in diag_pos {
        values[k] *= 1.0 + alpha;
    }
    Ok(shifted)
}

/// A copy of `a` with **only** row `row`'s diagonal entry scaled by
/// `1 + α` — the localized counterpart of [`shifted_operand`], used by the
/// row-boost recovery rung. The sparsity pattern is untouched.
fn boosted_operand(
    a: &sts_matrix::CsrMatrix,
    row: usize,
    alpha: f64,
) -> Result<sts_matrix::CsrMatrix> {
    if !alpha.is_finite() || alpha <= 0.0 {
        return Err(MatrixError::InvalidParameter(format!(
            "row boost must be finite and positive, got {alpha}"
        )));
    }
    if row >= a.nrows() {
        return Err(MatrixError::InvalidParameter(format!(
            "row boost targets row {row}, but the operand has {} rows",
            a.nrows()
        )));
    }
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let diag_k = (row_ptr[row]..row_ptr[row + 1])
        .find(|&k| col_idx[k] == row)
        .ok_or_else(|| {
            MatrixError::InvalidStructure(format!("row {row} has no stored diagonal entry"))
        })?;
    let mut boosted = a.clone();
    boosted.values_mut()[diag_k] *= 1.0 + alpha;
    Ok(boosted)
}

impl Preconditioner for Ic0 {
    fn label(&self) -> &'static str {
        if self.row_boost.is_some() {
            "ic0-rowboost"
        } else if self.shift == 0.0 {
            "ic0"
        } else {
            "ic0-shifted"
        }
    }

    fn apply_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
    ) -> Result<()> {
        // F y = r, then Fᵀ z = y.
        self.sweeps.forward(solver, r, sweep)?;
        self.sweeps.backward(solver, sweep, z)
    }

    fn apply_batch_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        self.sweeps.forward_batch(solver, r, sweep, nrhs)?;
        self.sweeps.backward_batch(solver, sweep, z, nrhs)
    }

    fn set_precision(&mut self, precision: PrecisionPolicy) {
        self.sweeps.set_precision(precision);
    }

    fn precision(&self) -> PrecisionPolicy {
        self.sweeps.precision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_core::Method;
    use sts_matrix::{generators, ops};
    use sts_numa::Schedule;

    fn test_setup() -> (SpdSystem, ParallelSolver) {
        let a = generators::grid2d_laplacian(9, 8).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        let solver = ParallelSolver::new(3, Schedule::Guided { min_chunk: 1 });
        (sys, solver)
    }

    /// Dense reference for `M⁻¹ r` with `M = (D+L) D⁻¹ (D+L)ᵀ`.
    fn ssor_reference(sys: &SpdSystem, r: &[f64]) -> Vec<f64> {
        let l = sys.structure().lower();
        let y = l.solve_seq(r).unwrap();
        let dy: Vec<f64> = (0..sys.n()).map(|i| y[i] * l.diag(i)).collect();
        l.solve_transpose_seq(&dy).unwrap()
    }

    #[test]
    fn ssor_engines_agree_with_the_reference_application() {
        let (sys, solver) = test_setup();
        let r: Vec<f64> = (0..sys.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        let expected = ssor_reference(&sys, &r);
        for engine in [SweepEngine::Sequential, SweepEngine::Pipelined] {
            let mut pre = Ssor::new(&sys, &solver, engine);
            let mut z = vec![0.0; sys.n()];
            let mut sweep = vec![0.0; sys.n()];
            pre.apply_into(&solver, &r, &mut z, &mut sweep).unwrap();
            assert!(
                ops::relative_error_inf(&z, &expected) < 1e-12,
                "{engine:?} sweep diverged from the reference"
            );
        }
    }

    #[test]
    fn sequential_and_pipelined_applications_are_bitwise_identical() {
        let (sys, solver) = test_setup();
        let r: Vec<f64> = (0..sys.n()).map(|i| 0.25 + (i % 7) as f64).collect();
        let mut seq = Ssor::new(&sys, &solver, SweepEngine::Sequential);
        let mut pip = Ssor::new(&sys, &solver, SweepEngine::Pipelined);
        let (mut z1, mut z2) = (vec![0.0; sys.n()], vec![0.0; sys.n()]);
        let mut sweep = vec![0.0; sys.n()];
        seq.apply_into(&solver, &r, &mut z1, &mut sweep).unwrap();
        pip.apply_into(&solver, &r, &mut z2, &mut sweep).unwrap();
        assert_eq!(z1, z2, "engines must take bitwise identical paths");
    }

    #[test]
    fn ic0_application_inverts_the_factor_product() {
        let (sys, solver) = test_setup();
        let mut pre = Ic0::new(&sys, &solver, SweepEngine::Pipelined).unwrap();
        // Manufacture r = F Fᵀ w, expect apply(r) = w.
        let f = sts_matrix::factor::ic0(sys.matrix()).unwrap();
        let w: Vec<f64> = (0..sys.n()).map(|i| 1.0 - (i % 4) as f64 * 0.2).collect();
        let ftw = f.multiply_transpose(&w).unwrap();
        let r = f.multiply(&ftw).unwrap();
        let mut z = vec![0.0; sys.n()];
        let mut sweep = vec![0.0; sys.n()];
        pre.apply_into(&solver, &r, &mut z, &mut sweep).unwrap();
        assert!(ops::relative_error_inf(&z, &w) < 1e-10);
    }

    #[test]
    fn ic0_setup_engines_build_bitwise_identical_factors() {
        let (sys, solver) = test_setup();
        let seq = Ic0::new_sequential(&sys, &solver, SweepEngine::Sequential).unwrap();
        let par = Ic0::new_parallel(&sys, &solver, SweepEngine::Sequential).unwrap();
        let def = Ic0::new(&sys, &solver, SweepEngine::Sequential).unwrap();
        assert_eq!(
            seq.factor_values(),
            par.factor_values(),
            "setup engines must produce the same factor bit for bit"
        );
        assert_eq!(def.factor_values(), par.factor_values());
        // And the applications are therefore bitwise identical too.
        let r: Vec<f64> = (0..sys.n()).map(|i| 0.5 + (i % 9) as f64 * 0.3).collect();
        let (mut z1, mut z2) = (vec![0.0; sys.n()], vec![0.0; sys.n()]);
        let mut sweep = vec![0.0; sys.n()];
        let mut seq = seq;
        let mut par = par;
        seq.apply_into(&solver, &r, &mut z1, &mut sweep).unwrap();
        par.apply_into(&solver, &r, &mut z2, &mut sweep).unwrap();
        assert_eq!(z1, z2);
    }

    #[test]
    fn batch_application_matches_per_system_applications() {
        let (sys, solver) = test_setup();
        let n = sys.n();
        let nrhs = 3;
        let mut pre = Ssor::new(&sys, &solver, SweepEngine::Pipelined);
        let mut rb = vec![0.0; n * nrhs];
        let mut expected = vec![0.0; n * nrhs];
        for q in 0..nrhs {
            let r: Vec<f64> = (0..n).map(|i| 1.0 + ((i + q) % 6) as f64 * 0.4).collect();
            let mut z = vec![0.0; n];
            let mut sweep = vec![0.0; n];
            pre.apply_into(&solver, &r, &mut z, &mut sweep).unwrap();
            for i in 0..n {
                rb[i * nrhs + q] = r[i];
                expected[i * nrhs + q] = z[i];
            }
        }
        let mut zb = vec![0.0; n * nrhs];
        let mut sweepb = vec![0.0; n * nrhs];
        pre.apply_batch_into(&solver, &rb, &mut zb, &mut sweepb, nrhs)
            .unwrap();
        assert!(ops::relative_error_inf(&zb, &expected) < 1e-13);
        // The sequential engine's batched sweeps are bitwise identical to
        // its per-system applications (each lane runs the scalar kernel's
        // exact floating-point sequence).
        let mut seq = Ssor::new(&sys, &solver, SweepEngine::Sequential);
        let mut zb_seq = vec![0.0; n * nrhs];
        seq.apply_batch_into(&solver, &rb, &mut zb_seq, &mut sweepb, nrhs)
            .unwrap();
        for q in 0..nrhs {
            let r: Vec<f64> = (0..n).map(|i| rb[i * nrhs + q]).collect();
            let mut z = vec![0.0; n];
            let mut sweep = vec![0.0; n];
            seq.apply_into(&solver, &r, &mut z, &mut sweep).unwrap();
            for i in 0..n {
                assert_eq!(zb_seq[i * nrhs + q], z[i], "lane {q} diverged at row {i}");
            }
        }
    }
}
