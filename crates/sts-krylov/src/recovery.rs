//! The recovery ladder: graceful degradation for breakdown-prone
//! preconditioning.
//!
//! IC(0) exists for every M-matrix, but a merely-SPD operand can drive a
//! pivot of the incomplete factorization negative
//! ([`MatrixError::FactorizationBreakdown`]) even though exact Cholesky
//! would succeed — the classical Kershaw counterexample. A production
//! solver must not surface that as a hard failure when a slightly weaker
//! preconditioner finishes the job. [`RobustPcg`] climbs a ladder instead:
//!
//! 1. **IC(0)** on `A` itself — the fast path, identical to
//!    [`Ic0::new`];
//! 2. **row-boosted IC(0)** ([`Ic0::new_row_boosted`]): the breakdown
//!    reports exactly which pivot went non-positive
//!    ([`MatrixError::FactorizationBreakdown`]`::row`), so before touching
//!    the whole diagonal the ladder boosts *only that row's* diagonal under
//!    escalating boosts — a far smaller perturbation of the
//!    preconditioner, so convergence barely degrades when it works
//!    (Kershaw's counterexample factors with a single boosted pivot);
//! 3. **shifted IC(0)** on `A + α·diag(A)` under escalating α
//!    ([`Ic0::new_shifted`], Manteuffel's shift): each rung is a strictly
//!    more diagonally dominant operand, so a large enough α always
//!    factors;
//! 4. **SSOR** — no factorization at all, cannot break down at setup;
//! 5. **Identity** — plain CG, the unconditional last resort.
//!
//! Every attempt — failed or final — is recorded in a [`RecoveryReport`],
//! so degradation is *observable*: the caller learns which rung converged,
//! which shifts were burned, and how many iterations the descent cost,
//! instead of silently getting a slower solve. Only *breakdown-shaped*
//! errors descend the ladder ([`MatrixError::FactorizationBreakdown`] at
//! setup, [`MatrixError::NonFiniteResidual`] during the iteration);
//! structural errors (dimension mismatches, worker panics, timeouts)
//! propagate immediately — retrying cannot fix those, and masking them
//! would hide real faults.

use sts_core::{ParallelSolver, PrecisionPolicy};
use sts_matrix::MatrixError;

use crate::pcg::{Pcg, PcgBatchOutcome, PcgBlockOutcome, PcgOutcome};
use crate::precond::{Ic0, Identity, Preconditioner, Ssor, SweepEngine};
use crate::system::SpdSystem;
use crate::workspace::KrylovWorkspace;
use crate::Result;

/// Which rungs the ladder may visit, and in what strength order.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Escalating single-row diagonal boosts tried on the exact row
    /// [`MatrixError::FactorizationBreakdown`] reported, before any
    /// whole-diagonal shift ([`Ic0::new_row_boosted`]). Empty disables
    /// the rung.
    pub row_boosts: Vec<f64>,
    /// Escalating Manteuffel shifts tried after the unshifted (and
    /// row-boosted) factorizations break down.
    pub shifts: Vec<f64>,
    /// Whether the ladder may degrade past shifted IC(0) to SSOR.
    pub allow_ssor: bool,
    /// Whether the ladder may degrade all the way to plain CG.
    pub allow_identity: bool,
    /// The sweep engine every rung's preconditioner runs on.
    pub engine: SweepEngine,
    /// The value-slab precision every rung's preconditioner sweeps with
    /// ([`Preconditioner::set_precision`]).
    pub precision: PrecisionPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            row_boosts: vec![1e-2, 1.0],
            shifts: vec![1e-3, 1e-2, 1e-1, 1.0],
            allow_ssor: true,
            allow_identity: true,
            engine: SweepEngine::Pipelined,
            precision: PrecisionPolicy::ValuesF64,
        }
    }
}

/// One rung the ladder tried and abandoned.
#[derive(Debug, Clone)]
pub struct RecoveryAttempt {
    /// The rung's preconditioner label ("ic0", "ic0-rowboost",
    /// "ic0-shifted", "ssor", "none").
    pub preconditioner: &'static str,
    /// The Manteuffel shift of the rung — or, on "ic0-rowboost" rungs,
    /// the single-row boost (0.0 off both).
    pub shift: f64,
    /// Why the rung was abandoned.
    pub error: MatrixError,
    /// Iterations the rung consumed before failing (0 for setup-time
    /// breakdowns).
    pub iterations: usize,
}

/// What the descent looked like: every abandoned rung, plus where the
/// ladder came to rest.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The rungs tried and abandoned, in order. Empty when the fast path
    /// succeeded.
    pub attempts: Vec<RecoveryAttempt>,
    /// The shifts whose factorizations were attempted (successful final
    /// rung included).
    pub shifts_tried: Vec<f64>,
    /// Label of the preconditioner that produced the returned outcome.
    pub final_preconditioner: &'static str,
    /// The shift of the final rung — or its single-row boost when
    /// `final_preconditioner` is "ic0-rowboost" (0.0 when unshifted).
    pub final_shift: f64,
    /// Whether the returned outcome came from anything but the fast path.
    pub degraded: bool,
    /// Iterations consumed by abandoned rungs — the descent's cost on top
    /// of the final solve's own count.
    pub extra_iterations: usize,
}

/// A [`PcgOutcome`] plus the story of how it was obtained.
#[derive(Debug, Clone)]
pub struct RobustOutcome {
    /// The final rung's solve outcome.
    pub outcome: PcgOutcome,
    /// The descent record.
    pub report: RecoveryReport,
}

/// A [`PcgBatchOutcome`] plus the descent record — the batched analogue of
/// [`RobustOutcome`]. The whole batch descends together: a breakdown on any
/// system restarts the lockstep iteration on the next rung for all of them.
#[derive(Debug, Clone)]
pub struct RobustBatchOutcome {
    /// The final rung's batched solve outcome.
    pub outcome: PcgBatchOutcome,
    /// The descent record.
    pub report: RecoveryReport,
}

/// A [`PcgBlockOutcome`] plus the descent record — the block-CG analogue of
/// [`RobustOutcome`].
#[derive(Debug, Clone)]
pub struct RobustBlockOutcome {
    /// The final rung's block solve outcome.
    pub outcome: PcgBlockOutcome,
    /// The descent record.
    pub report: RecoveryReport,
}

/// A preconditioner produced by climbing the setup-time rungs of the
/// recovery ladder ([`build_ladder_preconditioner`]): whichever rung's setup
/// succeeded first, behind one concrete type so callers (e.g. a factor
/// cache) can store it without boxing.
#[derive(Debug)]
pub enum LadderPreconditioner {
    /// An IC(0) factor (possibly Manteuffel-shifted) whose setup succeeded.
    Ic0(Ic0),
    /// The SSOR fallback — no factorization, setup cannot break down.
    Ssor(Ssor),
    /// Plain CG, the unconditional last resort.
    Identity(Identity),
}

impl Preconditioner for LadderPreconditioner {
    fn label(&self) -> &'static str {
        match self {
            LadderPreconditioner::Ic0(p) => p.label(),
            LadderPreconditioner::Ssor(p) => p.label(),
            LadderPreconditioner::Identity(p) => p.label(),
        }
    }

    fn apply_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
    ) -> Result<()> {
        match self {
            LadderPreconditioner::Ic0(p) => p.apply_into(solver, r, z, sweep),
            LadderPreconditioner::Ssor(p) => p.apply_into(solver, r, z, sweep),
            LadderPreconditioner::Identity(p) => p.apply_into(solver, r, z, sweep),
        }
    }

    fn apply_batch_into(
        &mut self,
        solver: &ParallelSolver,
        r: &[f64],
        z: &mut [f64],
        sweep: &mut [f64],
        nrhs: usize,
    ) -> Result<()> {
        match self {
            LadderPreconditioner::Ic0(p) => p.apply_batch_into(solver, r, z, sweep, nrhs),
            LadderPreconditioner::Ssor(p) => p.apply_batch_into(solver, r, z, sweep, nrhs),
            LadderPreconditioner::Identity(p) => p.apply_batch_into(solver, r, z, sweep, nrhs),
        }
    }

    fn set_precision(&mut self, precision: PrecisionPolicy) {
        match self {
            LadderPreconditioner::Ic0(p) => p.set_precision(precision),
            LadderPreconditioner::Ssor(p) => p.set_precision(precision),
            LadderPreconditioner::Identity(p) => p.set_precision(precision),
        }
    }

    fn precision(&self) -> PrecisionPolicy {
        match self {
            LadderPreconditioner::Ic0(p) => p.precision(),
            LadderPreconditioner::Ssor(p) => p.precision(),
            LadderPreconditioner::Identity(p) => p.precision(),
        }
    }
}

/// Climbs the *setup-time* rungs of the ladder without running a solve:
/// IC(0), then shifted IC(0) under the policy's escalating shifts, then SSOR
/// / Identity if permitted. Returns the first rung whose setup succeeded plus
/// a [`RecoveryReport`] of the setup breakdowns burned on the way down.
///
/// This is the factor-cache entry point: a solver service factors once at
/// value-submission time and then reuses the returned preconditioner across
/// many solves, so setup-time degradation must be decided (and reported)
/// once, up front. Iteration-time breakdowns
/// ([`MatrixError::NonFiniteResidual`]) can of course still surface later;
/// only the full [`RobustPcg`] entry points descend on those.
pub fn build_ladder_preconditioner(
    sys: &SpdSystem,
    solver: &ParallelSolver,
    policy: &RecoveryPolicy,
) -> Result<(LadderPreconditioner, RecoveryReport)> {
    let mut attempts: Vec<RecoveryAttempt> = Vec::new();
    let mut shifts_tried: Vec<f64> = Vec::new();
    let mut breakdown_row: Option<usize> = None;
    let finish = |mut pre: LadderPreconditioner, report: RecoveryReport| {
        pre.set_precision(policy.precision);
        Ok((pre, report))
    };

    // Rung 1: plain IC(0). A breakdown names the offending pivot row,
    // which rung 2 targets.
    shifts_tried.push(0.0);
    match Ic0::new(sys, solver, policy.engine) {
        Ok(pre) => {
            return finish(
                LadderPreconditioner::Ic0(pre),
                report_for(attempts, shifts_tried, "ic0", 0.0),
            );
        }
        Err(e) if descends(&e) => {
            if let MatrixError::FactorizationBreakdown { row, .. } = e {
                breakdown_row = Some(row);
            }
            attempts.push(RecoveryAttempt {
                preconditioner: "ic0",
                shift: 0.0,
                error: e,
                iterations: 0,
            });
        }
        Err(e) => return Err(e),
    }

    // Rung 2: boost only the reported pivot row's diagonal, escalating.
    if let Some(row) = breakdown_row {
        for &beta in policy.row_boosts.iter() {
            match Ic0::new_row_boosted(sys, solver, policy.engine, row, beta) {
                Ok(pre) => {
                    return finish(
                        LadderPreconditioner::Ic0(pre),
                        report_for(attempts, shifts_tried, "ic0-rowboost", beta),
                    );
                }
                Err(e) if descends(&e) => {
                    attempts.push(RecoveryAttempt {
                        preconditioner: "ic0-rowboost",
                        shift: beta,
                        error: e,
                        iterations: 0,
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Rung 3: whole-diagonal Manteuffel shifts, escalating.
    for &alpha in policy.shifts.iter() {
        shifts_tried.push(alpha);
        match Ic0::new_shifted(sys, solver, policy.engine, alpha) {
            Ok(pre) => {
                return finish(
                    LadderPreconditioner::Ic0(pre),
                    report_for(attempts, shifts_tried, "ic0-shifted", alpha),
                );
            }
            Err(e) if descends(&e) => {
                attempts.push(RecoveryAttempt {
                    preconditioner: "ic0-shifted",
                    shift: alpha,
                    error: e,
                    iterations: 0,
                });
            }
            Err(e) => return Err(e),
        }
    }
    if policy.allow_ssor {
        return finish(
            LadderPreconditioner::Ssor(Ssor::new(sys, solver, policy.engine)),
            report_for(attempts, shifts_tried, "ssor", 0.0),
        );
    }
    if policy.allow_identity {
        return finish(
            LadderPreconditioner::Identity(Identity),
            report_for(attempts, shifts_tried, "none", 0.0),
        );
    }
    Err(attempts.pop().map(|a| a.error).unwrap_or_else(|| {
        MatrixError::InvalidParameter("recovery ladder has no permitted rungs".into())
    }))
}

/// The fault-tolerant PCG driver: [`Pcg`] plus the recovery ladder.
pub struct RobustPcg {
    pcg: Pcg,
    policy: RecoveryPolicy,
}

impl RobustPcg {
    /// Wraps `pcg` with the default policy (four escalating shifts, SSOR
    /// and Identity both allowed).
    pub fn new(pcg: Pcg) -> Self {
        RobustPcg {
            pcg,
            policy: RecoveryPolicy::default(),
        }
    }

    /// Wraps `pcg` with an explicit policy.
    pub fn with_policy(pcg: Pcg, policy: RecoveryPolicy) -> Self {
        RobustPcg { pcg, policy }
    }

    /// The wrapped driver.
    pub fn pcg(&self) -> &Pcg {
        &self.pcg
    }

    /// The wrapped driver, mutably (watchdog configuration, fault hooks).
    pub fn pcg_mut(&mut self) -> &mut Pcg {
        &mut self.pcg
    }

    /// The ladder policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Solves `A x = b`, descending the ladder on breakdown. Returns the
    /// first rung's outcome that produced a clean solve (converged or
    /// not), together with the [`RecoveryReport`]. Errs only when every
    /// permitted rung failed with a breakdown-shaped error, or any rung
    /// failed with a structural one.
    pub fn solve(
        &self,
        sys: &SpdSystem,
        b: &[f64],
        ws: &mut KrylovWorkspace,
    ) -> Result<RobustOutcome> {
        let (outcome, report) =
            self.solve_ladder(sys, self.policy.precision, &mut |pcg, pre| {
                pcg.solve(sys, pre, b, ws)
            })?;
        self.observe_recovery(&report);
        Ok(RobustOutcome { outcome, report })
    }

    /// [`RobustPcg::solve`] behind the unified
    /// [`SolveOptions`](sts_core::SolveOptions) front door. Only the
    /// `precision` and `nrhs` fields are consumed: the requested precision
    /// overrides [`RecoveryPolicy::precision`] for this solve (every rung's
    /// preconditioner sweeps with it), and `nrhs` must be 1.
    pub fn solve_with(
        &self,
        sys: &SpdSystem,
        b: &[f64],
        ws: &mut KrylovWorkspace,
        opts: &sts_core::SolveOptions,
    ) -> Result<RobustOutcome> {
        if opts.nrhs != 1 {
            return Err(MatrixError::DimensionMismatch(format!(
                "solve_with is the single-RHS entry (got nrhs = {}); use solve_batch",
                opts.nrhs
            )));
        }
        let (outcome, report) = self.solve_ladder(sys, opts.precision, &mut |pcg, pre| {
            pcg.solve(sys, pre, b, ws)
        })?;
        self.observe_recovery(&report);
        Ok(RobustOutcome { outcome, report })
    }

    /// Solves `nrhs` systems at once ([`Pcg::solve_batch`]) behind the
    /// ladder. The lockstep batch shares one preconditioner, so a breakdown
    /// on any system descends the whole batch to the next rung and restarts
    /// the lockstep iteration there; abandoned-rung iteration counts land in
    /// [`RecoveryReport::extra_iterations`] as usual.
    pub fn solve_batch(
        &self,
        sys: &SpdSystem,
        b: &[f64],
        nrhs: usize,
        ws: &mut KrylovWorkspace,
    ) -> Result<RobustBatchOutcome> {
        let (outcome, report) =
            self.solve_ladder(sys, self.policy.precision, &mut |pcg, pre| {
                pcg.solve_batch(sys, pre, b, nrhs, ws)
            })?;
        self.observe_recovery(&report);
        Ok(RobustBatchOutcome { outcome, report })
    }

    /// Solves `nrhs` systems on a shared block Krylov space
    /// ([`Pcg::solve_block`]) behind the ladder, descending the whole block
    /// together on breakdown like [`RobustPcg::solve_batch`].
    pub fn solve_block(
        &self,
        sys: &SpdSystem,
        b: &[f64],
        nrhs: usize,
        ws: &mut KrylovWorkspace,
    ) -> Result<RobustBlockOutcome> {
        let (outcome, report) =
            self.solve_ladder(sys, self.policy.precision, &mut |pcg, pre| {
                pcg.solve_block(sys, pre, b, nrhs, ws)
            })?;
        self.observe_recovery(&report);
        Ok(RobustBlockOutcome { outcome, report })
    }

    /// Feeds the descent into the wrapped driver's metrics registry (if one
    /// is installed): every abandoned rung counts one
    /// `pcg_recovery_rungs_total` — the trend line a weakening default
    /// shift schedule shows up on first.
    fn observe_recovery(&self, report: &RecoveryReport) {
        if report.attempts.is_empty() {
            return;
        }
        if let Some(reg) = self.pcg.metrics_registry() {
            reg.counter("pcg_recovery_rungs_total")
                .add(report.attempts.len() as u64);
        }
    }

    /// The shared descent: builds each rung's preconditioner in ladder order
    /// and hands it to `run` (one of the three [`Pcg`] solve entries).
    /// Breakdown-shaped failures — at setup or inside `run` — are recorded
    /// and descend; structural failures propagate immediately.
    fn solve_ladder<O>(
        &self,
        sys: &SpdSystem,
        precision: PrecisionPolicy,
        run: &mut dyn FnMut(&Pcg, &mut dyn Preconditioner) -> Result<O>,
    ) -> Result<(O, RecoveryReport)> {
        let mut attempts: Vec<RecoveryAttempt> = Vec::new();
        let mut shifts_tried: Vec<f64> = Vec::new();
        let mut breakdown_row: Option<usize> = None;
        let engine = self.policy.engine;

        // Rung 1: plain IC(0). A setup breakdown names the offending pivot
        // row, which rung 2 targets.
        shifts_tried.push(0.0);
        match Ic0::new(sys, self.pcg.solver(), engine) {
            Ok(mut pre) => {
                pre.set_precision(precision);
                if let Some(outcome) =
                    Self::try_rung(run, &self.pcg, &mut pre, "ic0", 0.0, &mut attempts)?
                {
                    return Ok((outcome, report_for(attempts, shifts_tried, "ic0", 0.0)));
                }
            }
            Err(e) if descends(&e) => {
                if let MatrixError::FactorizationBreakdown { row, .. } = e {
                    breakdown_row = Some(row);
                }
                attempts.push(RecoveryAttempt {
                    preconditioner: "ic0",
                    shift: 0.0,
                    error: e,
                    iterations: 0,
                });
            }
            Err(e) => return Err(e),
        }

        // Rung 2: boost only the reported pivot row's diagonal, escalating.
        if let Some(row) = breakdown_row {
            for &beta in self.policy.row_boosts.iter() {
                let mut pre = match Ic0::new_row_boosted(sys, self.pcg.solver(), engine, row, beta)
                {
                    Ok(pre) => pre,
                    Err(e) if descends(&e) => {
                        attempts.push(RecoveryAttempt {
                            preconditioner: "ic0-rowboost",
                            shift: beta,
                            error: e,
                            iterations: 0,
                        });
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                pre.set_precision(precision);
                if let Some(outcome) = Self::try_rung(
                    run,
                    &self.pcg,
                    &mut pre,
                    "ic0-rowboost",
                    beta,
                    &mut attempts,
                )? {
                    return Ok((
                        outcome,
                        report_for(attempts, shifts_tried, "ic0-rowboost", beta),
                    ));
                }
            }
        }

        // Rung 3: whole-diagonal shifted IC(0) under escalating α.
        for &alpha in self.policy.shifts.iter() {
            shifts_tried.push(alpha);
            let mut pre = match Ic0::new_shifted(sys, self.pcg.solver(), engine, alpha) {
                Ok(pre) => pre,
                Err(e) if descends(&e) => {
                    attempts.push(RecoveryAttempt {
                        preconditioner: "ic0-shifted",
                        shift: alpha,
                        error: e,
                        iterations: 0,
                    });
                    continue;
                }
                Err(e) => return Err(e),
            };
            pre.set_precision(precision);
            if let Some(outcome) = Self::try_rung(
                run,
                &self.pcg,
                &mut pre,
                "ic0-shifted",
                alpha,
                &mut attempts,
            )? {
                return Ok((
                    outcome,
                    report_for(attempts, shifts_tried, "ic0-shifted", alpha),
                ));
            }
        }

        // Rung 4: SSOR — setup cannot break down.
        if self.policy.allow_ssor {
            let mut pre = Ssor::new(sys, self.pcg.solver(), engine);
            pre.set_precision(precision);
            if let Some(outcome) =
                Self::try_rung(run, &self.pcg, &mut pre, "ssor", 0.0, &mut attempts)?
            {
                return Ok((outcome, report_for(attempts, shifts_tried, "ssor", 0.0)));
            }
        }

        // Rung 5: plain CG.
        if self.policy.allow_identity {
            let mut pre = Identity;
            if let Some(outcome) =
                Self::try_rung(run, &self.pcg, &mut pre, "none", 0.0, &mut attempts)?
            {
                return Ok((outcome, report_for(attempts, shifts_tried, "none", 0.0)));
            }
        }

        // Every permitted rung broke down. Surface the last breakdown.
        Err(attempts.pop().map(|a| a.error).unwrap_or_else(|| {
            MatrixError::InvalidParameter("recovery ladder has no permitted rungs".into())
        }))
    }

    /// Runs one rung's solve. `Ok(Some(outcome))` means the rung produced
    /// a clean outcome; `Ok(None)` means it broke down (recorded in
    /// `attempts`) and the ladder should descend; `Err` propagates
    /// structural failures.
    fn try_rung<O>(
        run: &mut dyn FnMut(&Pcg, &mut dyn Preconditioner) -> Result<O>,
        pcg: &Pcg,
        pre: &mut dyn Preconditioner,
        label: &'static str,
        shift: f64,
        attempts: &mut Vec<RecoveryAttempt>,
    ) -> Result<Option<O>> {
        match run(pcg, pre) {
            Ok(outcome) => Ok(Some(outcome)),
            Err(e) if descends(&e) => {
                let iterations = match &e {
                    MatrixError::NonFiniteResidual { iteration } => *iteration,
                    _ => 0,
                };
                attempts.push(RecoveryAttempt {
                    preconditioner: label,
                    shift,
                    error: e,
                    iterations,
                });
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// Assembles the descent record once a rung has come to rest.
fn report_for(
    attempts: Vec<RecoveryAttempt>,
    shifts_tried: Vec<f64>,
    final_preconditioner: &'static str,
    final_shift: f64,
) -> RecoveryReport {
    let extra_iterations = attempts.iter().map(|a| a.iterations).sum();
    let degraded = !attempts.is_empty();
    RecoveryReport {
        attempts,
        shifts_tried,
        final_preconditioner,
        final_shift,
        degraded,
        extra_iterations,
    }
}

/// Whether an error is breakdown-shaped — fixable by a weaker
/// preconditioner — as opposed to structural (wrong sizes, poisoned pool,
/// timeout), which retrying under a different preconditioner cannot cure.
fn descends(e: &MatrixError) -> bool {
    matches!(
        e,
        MatrixError::FactorizationBreakdown { .. } | MatrixError::NonFiniteResidual { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_core::Method;
    use sts_matrix::{generators, ops};
    use sts_numa::Schedule;

    #[test]
    fn clean_system_takes_the_fast_path_with_an_empty_report() {
        let a = generators::grid2d_laplacian(12, 12).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        let b = ops::spmv(&a, &vec![1.0; sys.n()]).unwrap();
        let robust = RobustPcg::new(Pcg::new(2, Schedule::Guided { min_chunk: 1 }));
        let mut ws = KrylovWorkspace::new(sys.n());
        let out = robust.solve(&sys, &b, &mut ws).unwrap();
        assert!(out.outcome.converged);
        assert!(!out.report.degraded);
        assert!(out.report.attempts.is_empty());
        assert_eq!(out.report.final_preconditioner, "ic0");
        assert_eq!(out.report.final_shift, 0.0);
        assert_eq!(out.report.extra_iterations, 0);
        assert_eq!(out.report.shifts_tried, vec![0.0]);
    }

    #[test]
    fn batch_and_block_entries_descend_the_same_ladder() {
        let a = generators::grid2d_laplacian(10, 10).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        let nrhs = 3;
        let mut b = vec![0.0; sys.n() * nrhs];
        for (k, slot) in b.iter_mut().enumerate() {
            *slot = 1.0 + (k % 7) as f64;
        }
        let robust = RobustPcg::new(Pcg::new(2, Schedule::Guided { min_chunk: 1 }));
        let mut ws = KrylovWorkspace::with_nrhs(sys.n(), nrhs);
        let batch = robust.solve_batch(&sys, &b, nrhs, &mut ws).unwrap();
        assert!(batch.outcome.converged.iter().all(|&c| c));
        assert!(!batch.report.degraded);
        assert_eq!(batch.report.final_preconditioner, "ic0");
        let block = robust.solve_block(&sys, &b, nrhs, &mut ws).unwrap();
        assert!(block.outcome.converged.iter().all(|&c| c));
        assert!(!block.report.degraded);
        // Batch/batch entries surface structural errors (wrong-size B)
        // without descending, like the scalar entry.
        let e = robust
            .solve_batch(&sys, &b[..5], nrhs, &mut ws)
            .unwrap_err();
        assert!(matches!(e, MatrixError::DimensionMismatch(_)));
    }

    #[test]
    fn setup_ladder_builds_the_fast_path_on_a_clean_operand() {
        let a = generators::grid2d_laplacian(9, 9).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        let pcg = Pcg::new(2, Schedule::Static);
        let (mut pre, report) =
            build_ladder_preconditioner(&sys, pcg.solver(), &RecoveryPolicy::default()).unwrap();
        assert_eq!(pre.label(), "ic0");
        assert!(!report.degraded);
        assert_eq!(report.shifts_tried, vec![0.0]);
        // The returned preconditioner drives an ordinary solve.
        let b = ops::spmv(&a, &vec![1.0; sys.n()]).unwrap();
        let mut ws = KrylovWorkspace::new(sys.n());
        let out = pcg.solve(&sys, &mut pre, &b, &mut ws).unwrap();
        assert!(out.converged);
    }

    #[test]
    fn setup_ladder_with_no_rungs_is_rejected() {
        let a = generators::grid2d_laplacian(6, 6).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        let pcg = Pcg::new(1, Schedule::Static);
        let policy = RecoveryPolicy {
            shifts: vec![],
            row_boosts: vec![],
            allow_ssor: false,
            allow_identity: false,
            engine: SweepEngine::Sequential,
            ..RecoveryPolicy::default()
        };
        // IC(0) itself still runs (the Laplacian factors), so this succeeds…
        let (pre, _) = build_ladder_preconditioner(&sys, pcg.solver(), &policy).unwrap();
        assert_eq!(pre.label(), "ic0");
    }

    #[test]
    fn structural_errors_do_not_descend_the_ladder() {
        let a = generators::grid2d_laplacian(8, 8).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        let robust = RobustPcg::new(Pcg::new(2, Schedule::Static));
        let mut ws = KrylovWorkspace::new(sys.n());
        // Wrong-length b: a DimensionMismatch must propagate, not trigger
        // an SSOR retry that would also fail confusingly.
        let e = robust.solve(&sys, &[1.0; 3], &mut ws).unwrap_err();
        assert!(matches!(e, MatrixError::DimensionMismatch(_)));
    }

    #[test]
    fn ladder_with_no_rungs_is_rejected() {
        let a = generators::grid2d_laplacian(6, 6).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        // A policy that forbids every fallback still runs IC(0) itself.
        let policy = RecoveryPolicy {
            shifts: vec![],
            row_boosts: vec![],
            allow_ssor: false,
            allow_identity: false,
            engine: SweepEngine::Sequential,
            ..RecoveryPolicy::default()
        };
        let robust = RobustPcg::with_policy(Pcg::new(1, Schedule::Static), policy);
        let b = vec![1.0; sys.n()];
        let mut ws = KrylovWorkspace::new(sys.n());
        // The Laplacian factors fine, so the fast path still succeeds.
        let out = robust.solve(&sys, &b, &mut ws).unwrap();
        assert!(out.outcome.converged);
        assert!(!out.report.degraded);
    }
}
