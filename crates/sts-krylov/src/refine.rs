//! Iterative refinement: f32-slab triangular solves driven to f64 accuracy.
//!
//! The mixed-precision kernels
//! ([`PrecisionPolicy::ValuesF32WithRefinement`](sts_core::PrecisionPolicy::ValuesF32WithRefinement))
//! halve the value-slab traffic of a sweep but round every stored
//! coefficient to f32, so a single pass carries ~1e-7 relative error — far
//! short of the 1e-15 a double-precision solve delivers. Classical iterative
//! refinement closes that gap at almost no cost, because the expensive part
//! (the sweep) can *stay* in the cheap precision:
//!
//! 1. `x ← L⁻¹₃₂ b` — solve with the f32 slabs (f64 accumulation);
//! 2. `r ← b − L x` — residual against the **full-precision** operand,
//!    computed entirely in f64;
//! 3. if `‖r‖₂ ≤ tol · ‖b‖₂`, stop; else `x ← x + L⁻¹₃₂ r` and repeat.
//!
//! Each pass contracts the error by roughly the f32 rounding level (~1e-7),
//! so one or two correction sweeps reach 1e-12 relative residuals; the
//! [`RefineOutcome::refine_iterations`] count is the observable the bench
//! gate holds at ≤ 2 on the smoke Laplacian. Requesting
//! [`ValuesF64`](sts_core::PrecisionPolicy::ValuesF64) degenerates gracefully: the first residual
//! check already passes and the wrapper returns the plain solve with zero
//! refinement passes.

use sts_core::{ParallelSolver, SolveOptions, StsStructure, SweepDirection};
use sts_matrix::{ops, MatrixError};
use sts_trace::Phase;

use crate::Result;

/// Stopping policy for [`solve_refined`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Stop once `‖b − L x‖₂ ≤ tolerance · ‖b‖₂`. The default (`1e-12`)
    /// puts the refined solution well within 1e-10 of the f64 direct solve.
    pub tolerance: f64,
    /// Correction passes allowed after the initial solve. Refinement
    /// contracts the error by ~1e-7 per pass, so the default (4) leaves
    /// ample margin; running out marks the outcome `converged = false`
    /// rather than erroring.
    pub max_refinements: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            tolerance: 1e-12,
            max_refinements: 4,
        }
    }
}

/// What [`solve_refined`] produced.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// The refined solution, in the structure's numbering.
    pub x: Vec<f64>,
    /// Correction passes performed after the initial solve (0 when the
    /// first solve already met the tolerance — always the case for
    /// [`ValuesF64`](sts_core::PrecisionPolicy::ValuesF64)).
    pub refine_iterations: usize,
    /// The final residual `‖b − L x‖₂`.
    pub residual_norm: f64,
    /// Whether the tolerance was met within the refinement budget.
    pub converged: bool,
}

/// Solves `L x = b` (or `Lᵀ x = b`) at the precision `opts` requests, then
/// refines the result against the full-precision operand until the relative
/// residual meets `refine.tolerance`.
///
/// `b` lives in the structure's numbering, like every other
/// [`ParallelSolver`] entry; the inner solves go through
/// [`ParallelSolver::solve_with`], so `opts` picks the engine, direction and
/// precision in one place. Only single right-hand sides are refined
/// (`opts.nrhs` must be 1).
pub fn solve_refined(
    solver: &ParallelSolver,
    s: &StsStructure,
    b: &[f64],
    opts: &SolveOptions,
    refine: &RefineOptions,
) -> Result<RefineOutcome> {
    if opts.nrhs != 1 {
        return Err(MatrixError::DimensionMismatch(format!(
            "solve_refined refines single right-hand sides, got nrhs = {}",
            opts.nrhs
        )));
    }
    if b.len() != s.n() {
        return Err(MatrixError::DimensionMismatch(format!(
            "b has length {}, expected {}",
            b.len(),
            s.n()
        )));
    }
    if !(refine.tolerance.is_finite() && refine.tolerance >= 0.0) {
        return Err(MatrixError::InvalidParameter(format!(
            "refinement tolerance must be finite and non-negative, got {}",
            refine.tolerance
        )));
    }
    let l = s.lower();
    let recorder = solver.trace_recorder().cloned();
    let threshold = refine.tolerance * ops::norm2(b);
    let mut x = solver.solve_with(s, b, opts)?;
    let mut refine_iterations = 0usize;
    loop {
        let t0 = recorder.as_ref().map(|r| r.now_ns());
        // The residual is the one place full precision is mandatory: it is
        // computed against the f64 operand even when the sweeps read f32
        // slabs, so refinement converges to the f64 answer, not the f32 one.
        let lx = match opts.direction {
            SweepDirection::Forward => l.multiply(&x)?,
            SweepDirection::Transpose => l.multiply_transpose(&x)?,
        };
        let r: Vec<f64> = b.iter().zip(&lx).map(|(bi, li)| bi - li).collect();
        let rnorm = ops::norm2(&r);
        if !rnorm.is_finite() {
            return Err(MatrixError::NonFiniteResidual {
                iteration: refine_iterations,
            });
        }
        if rnorm <= threshold {
            return Ok(RefineOutcome {
                x,
                refine_iterations,
                residual_norm: rnorm,
                converged: true,
            });
        }
        if refine_iterations == refine.max_refinements {
            return Ok(RefineOutcome {
                x,
                refine_iterations,
                residual_norm: rnorm,
                converged: false,
            });
        }
        let d = solver.solve_with(s, &r, opts)?;
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        if let (Some(rec), Some(t0)) = (recorder.as_ref(), t0) {
            // One span per pass: the f64 residual plus the correction sweep
            // it fed, with the pass index in the pack column.
            rec.record(0, refine_iterations as u32, Phase::Refine, t0, rec.now_ns());
        }
        refine_iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_core::{Method, PrecisionPolicy, SolveEngine};
    use sts_matrix::generators;
    use sts_numa::Schedule;

    fn setup(threads: usize) -> (ParallelSolver, StsStructure, Vec<f64>, Vec<f64>) {
        let a = generators::triangulated_grid(14, 11, 7).unwrap();
        let l = generators::lower_operand(&a).unwrap();
        let s = Method::Sts3.build(&l, 8).unwrap();
        let x_star: Vec<f64> = (0..s.n())
            .map(|i| 0.3 + ((i * 7) % 13) as f64 / 13.0)
            .collect();
        let b = ops::manufacture_rhs(s.lower(), &x_star).unwrap();
        (ParallelSolver::new(threads, Schedule::Static), s, b, x_star)
    }

    #[test]
    fn f64_precision_needs_no_refinement_passes() {
        let (solver, s, b, _) = setup(2);
        let opts = SolveOptions::default();
        let out = solve_refined(&solver, &s, &b, &opts, &RefineOptions::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.refine_iterations, 0);
        assert_eq!(out.x, solver.solve_with(&s, &b, &opts).unwrap());
    }

    #[test]
    fn f32_solves_refine_to_the_f64_answer() {
        let (solver, s, b, _) = setup(4);
        let f64_opts = SolveOptions::default();
        for engine in [
            SolveEngine::Sequential,
            SolveEngine::Split,
            SolveEngine::Pipelined,
        ] {
            for direction in [SweepDirection::Forward, SweepDirection::Transpose] {
                let opts = SolveOptions::default()
                    .with_engine(engine)
                    .with_direction(direction)
                    .with_precision(PrecisionPolicy::ValuesF32WithRefinement);
                let f64_dir = f64_opts.with_direction(direction);
                let reference = solver.solve_with(&s, &b, &f64_dir).unwrap();
                let out = solve_refined(&solver, &s, &b, &opts, &RefineOptions::default()).unwrap();
                assert!(out.converged, "engine {engine:?} direction {direction:?}");
                assert!(
                    out.refine_iterations <= 2,
                    "engine {engine:?} direction {direction:?} took {} passes",
                    out.refine_iterations
                );
                assert!(ops::relative_error_inf(&out.x, &reference) < 1e-10);
            }
        }
    }

    #[test]
    fn refinement_rejects_bad_requests() {
        let (solver, s, b, _) = setup(1);
        let batch = SolveOptions::default().with_nrhs(2);
        assert!(matches!(
            solve_refined(&solver, &s, &b, &batch, &RefineOptions::default()),
            Err(MatrixError::DimensionMismatch(_))
        ));
        assert!(matches!(
            solve_refined(
                &solver,
                &s,
                &b[..3],
                &SolveOptions::default(),
                &RefineOptions::default()
            ),
            Err(MatrixError::DimensionMismatch(_))
        ));
        let bad_tol = RefineOptions {
            tolerance: f64::NAN,
            ..RefineOptions::default()
        };
        assert!(matches!(
            solve_refined(&solver, &s, &b, &SolveOptions::default(), &bad_tol),
            Err(MatrixError::InvalidParameter(_))
        ));
    }
}
