//! An SPD operator bound to an STS ordering.

use std::sync::Arc;

use sts_core::{Method, StsStructure};
use sts_matrix::{CsrMatrix, MatrixError};

use crate::Result;

/// A symmetric positive-definite system `A x = b` prepared for repeated
/// preconditioned solves: the STS structure of `A`'s lower triangle (which
/// fixes the ordering) plus `A` itself permuted into that ordering.
///
/// Everything downstream — matrix–vector products, preconditioner sweeps,
/// vector updates — runs in the reordered numbering; the permutation is
/// applied once to the right-hand side on entry and once to the solution on
/// exit. This matches the intended production use: an application permutes
/// its matrix once and then iterates.
#[derive(Debug, Clone)]
pub struct SpdSystem {
    /// The STS structure of `lower(P A Pᵀ)`; shared with the preconditioners
    /// built from this system.
    structure: Arc<StsStructure>,
    /// `P A Pᵀ` — the operator the iteration multiplies by.
    a: CsrMatrix,
}

impl SpdSystem {
    /// Binds `a` (symmetric, fully stored, positive diagonal) to the
    /// ordering computed by `method` on its lower triangle.
    ///
    /// The operand is validated at this boundary
    /// ([`CsrMatrix::validate`]): sorted in-bounds columns, a present and
    /// positive diagonal, and finite values. A matrix carrying a NaN or an
    /// infinity is rejected here with [`MatrixError::NonFinite`] naming the
    /// offending entry, instead of poisoning every later iterate.
    pub fn build(a: &CsrMatrix, method: Method, rows_per_super_row: usize) -> Result<SpdSystem> {
        if a.nrows() != a.ncols() {
            return Err(MatrixError::DimensionMismatch(format!(
                "SPD system must be square, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        a.validate()?;
        if !a.is_symmetric(1e-12) {
            return Err(MatrixError::InvalidParameter(
                "SpdSystem::build needs a symmetric matrix with both triangles stored".into(),
            ));
        }
        let l = sts_matrix::generators::lower_operand(a)?;
        let structure = method.build(&l, rows_per_super_row)?;
        let a_perm = a.permute_symmetric(structure.permutation().new_to_old())?;
        Ok(SpdSystem {
            structure: Arc::new(structure),
            a: a_perm,
        })
    }

    /// Binds `a` to an ordering that was already computed for its sparsity
    /// pattern, skipping the analysis pipeline entirely.
    ///
    /// This is the warm path of a structure cache: `base` is the
    /// [`StsStructure`] produced by an earlier [`SpdSystem::build`] (or a
    /// pattern-only analysis) on a matrix with the same sparsity pattern.
    /// Orderings are purely structural, so the pack / super-row hierarchy and
    /// permutation carry over unchanged — only the operand values are
    /// re-permuted (`O(nnz)`), and the hierarchy arrays are shared by `Arc`
    /// rather than copied. The resulting system is bitwise identical to what
    /// a fresh [`SpdSystem::build`] with the same method would produce.
    ///
    /// The operand is validated exactly as in [`SpdSystem::build`]; a matrix
    /// whose pattern no longer matches the cached hierarchy is rejected with
    /// [`MatrixError::DimensionMismatch`] or
    /// [`MatrixError::InvalidStructure`].
    pub fn build_with_structure(a: &CsrMatrix, base: &StsStructure) -> Result<SpdSystem> {
        if a.nrows() != a.ncols() {
            return Err(MatrixError::DimensionMismatch(format!(
                "SPD system must be square, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        if a.nrows() != base.n() {
            return Err(MatrixError::DimensionMismatch(format!(
                "matrix is {}x{0}, cached structure expects {1}x{1}",
                a.nrows(),
                base.n()
            )));
        }
        a.validate()?;
        if !a.is_symmetric(1e-12) {
            return Err(MatrixError::InvalidParameter(
                "SpdSystem::build_with_structure needs a symmetric matrix with both triangles \
                 stored"
                    .into(),
            ));
        }
        let a_perm = a.permute_symmetric(base.permutation().new_to_old())?;
        let l_perm = sts_matrix::LowerTriangularCsr::from_lower_triangle_of(&a_perm)?;
        if l_perm.row_ptr() != base.lower().row_ptr() || l_perm.col_idx() != base.lower().col_idx()
        {
            return Err(MatrixError::InvalidStructure(
                "matrix sparsity pattern does not match the cached structure".into(),
            ));
        }
        let structure = base.with_operand(l_perm)?;
        Ok(SpdSystem {
            structure: Arc::new(structure),
            a: a_perm,
        })
    }

    /// Dimension of the system.
    pub fn n(&self) -> usize {
        self.a.nrows()
    }

    /// The reordered operator `P A Pᵀ`.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// The STS structure of the reordered lower triangle (the SSOR sweep
    /// operand, and the carrier of the ordering).
    pub fn structure(&self) -> &StsStructure {
        &self.structure
    }

    /// A shared handle to the structure, for preconditioners that keep it.
    pub fn structure_arc(&self) -> Arc<StsStructure> {
        Arc::clone(&self.structure)
    }

    /// Gathers a vector given in original numbering into reordered
    /// numbering, `out[new] = v[old]`, allocation-free.
    pub fn gather_into(&self, v: &[f64], out: &mut [f64]) {
        let old_of = self.structure.permutation().new_to_old();
        for (slot, &old) in out.iter_mut().zip(old_of) {
            *slot = v[old];
        }
    }

    /// Gathers `nrhs` interleaved systems (`v[i * nrhs + r]`) into reordered
    /// numbering, allocation-free.
    pub fn gather_batch_into(&self, v: &[f64], out: &mut [f64], nrhs: usize) {
        let old_of = self.structure.permutation().new_to_old();
        for (new, &old) in old_of.iter().enumerate() {
            out[new * nrhs..(new + 1) * nrhs].copy_from_slice(&v[old * nrhs..(old + 1) * nrhs]);
        }
    }

    /// Scatters a reordered vector back to original numbering,
    /// `out[old] = v[new]`, allocation-free.
    pub fn scatter_into(&self, v: &[f64], out: &mut [f64]) {
        let old_of = self.structure.permutation().new_to_old();
        for (&value, &old) in v.iter().zip(old_of) {
            out[old] = value;
        }
    }

    /// Scatters `nrhs` interleaved reordered systems back to original
    /// numbering, allocation-free.
    pub fn scatter_batch_into(&self, v: &[f64], out: &mut [f64], nrhs: usize) {
        let old_of = self.structure.permutation().new_to_old();
        for (new, &old) in old_of.iter().enumerate() {
            out[old * nrhs..(old + 1) * nrhs].copy_from_slice(&v[new * nrhs..(new + 1) * nrhs]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_matrix::{generators, ops};

    #[test]
    fn build_permutes_the_operator_consistently() {
        let a = generators::grid2d_laplacian(7, 6).unwrap();
        let sys = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        assert_eq!(sys.n(), 42);
        // A'·(P x) must equal P·(A x) for any x.
        let x: Vec<f64> = (0..sys.n()).map(|i| 0.5 + (i % 9) as f64).collect();
        let ax = ops::spmv(&a, &x).unwrap();
        let mut x_perm = vec![0.0; sys.n()];
        sys.gather_into(&x, &mut x_perm);
        let ax_perm = ops::spmv(sys.matrix(), &x_perm).unwrap();
        let mut expected = vec![0.0; sys.n()];
        sys.gather_into(&ax, &mut expected);
        assert!(ops::relative_error_inf(&ax_perm, &expected) < 1e-13);
        // Gather/scatter round-trip, single and batch.
        let mut back = vec![0.0; sys.n()];
        sys.scatter_into(&x_perm, &mut back);
        assert_eq!(back, x);
        let nrhs = 3;
        let xb: Vec<f64> = (0..sys.n() * nrhs).map(|k| k as f64).collect();
        let mut gathered = vec![0.0; sys.n() * nrhs];
        let mut scattered = vec![0.0; sys.n() * nrhs];
        sys.gather_batch_into(&xb, &mut gathered, nrhs);
        sys.scatter_batch_into(&gathered, &mut scattered, nrhs);
        assert_eq!(scattered, xb);
    }

    #[test]
    fn build_with_structure_matches_fresh_build_bitwise() {
        let a = generators::grid2d_laplacian(9, 5).unwrap();
        let cold = SpdSystem::build(&a, Method::Sts3, 8).unwrap();
        // Same pattern, different values: scale and re-symmetrize.
        let scaled = CsrMatrix::from_raw(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().iter().map(|v| v * 3.0).collect(),
        )
        .unwrap();
        let warm = SpdSystem::build_with_structure(&scaled, cold.structure()).unwrap();
        let fresh = SpdSystem::build(&scaled, Method::Sts3, 8).unwrap();
        assert_eq!(warm.matrix().values(), fresh.matrix().values());
        assert_eq!(warm.structure(), fresh.structure());
        // The warm structure shares the cached hierarchy instead of copying.
        assert!(warm.structure().shares_hierarchy_with(cold.structure()));
        // A pattern that doesn't match the cached hierarchy is rejected.
        let other = generators::grid2d_laplacian(5, 9).unwrap();
        assert!(SpdSystem::build_with_structure(&other, cold.structure()).is_err());
    }

    #[test]
    fn build_rejects_asymmetric_input() {
        let l = generators::paper_figure1_l();
        // A raw lower triangle is not a symmetric operator.
        let e = SpdSystem::build(&l.to_csr(), Method::Sts3, 4);
        assert!(e.is_err());
    }
}
