//! The persistent vector arena behind allocation-free iterations.

/// Every vector a PCG iteration touches, sized once for a structure (and an
/// optional batch width) and reused across solves: after the first
/// [`Pcg::solve`](crate::Pcg::solve) on a warmed-up system, neither the
/// driver's updates nor the preconditioner sweeps allocate.
///
/// The fields are deliberately crate-private: the driver splits disjoint
/// `&`/`&mut` borrows across them (residual read while the sweep scratch is
/// written), which only field access can express.
#[derive(Debug, Clone)]
pub struct KrylovWorkspace {
    n: usize,
    nrhs: usize,
    /// Solution accumulator (reordered numbering).
    pub(crate) x: Vec<f64>,
    /// Residual `r = b − A x`; with `x₀ = 0` the gathered right-hand side
    /// lands here directly.
    pub(crate) r: Vec<f64>,
    /// Preconditioned residual `z = M⁻¹ r`.
    pub(crate) z: Vec<f64>,
    /// Search direction.
    pub(crate) p: Vec<f64>,
    /// Operator application `A p`.
    pub(crate) ap: Vec<f64>,
    /// Preconditioner mid-sweep scratch (the vector between the forward and
    /// backward triangular solves).
    pub(crate) sweep: Vec<f64>,
    /// Block-CG coefficient scratch: the `nrhs × nrhs` Gram matrix
    /// `Pᵀ A P`, factored in place per projection.
    pub(crate) gram: Vec<f64>,
    /// A pristine copy of the Gram matrix — the β projection refactors it
    /// after the α solve consumed the first factorization.
    pub(crate) gram_copy: Vec<f64>,
    /// The `nrhs × nrhs` coefficient block (`α`, then `β`) solved against
    /// the Gram factorization.
    pub(crate) coef: Vec<f64>,
    /// Rank mask from the small Cholesky: directions still linearly
    /// independent in the block Krylov basis.
    pub(crate) retained: Vec<bool>,
}

impl KrylovWorkspace {
    /// Workspace for single-RHS solves on an `n`-dimensional system.
    pub fn new(n: usize) -> Self {
        Self::with_nrhs(n, 1)
    }

    /// Workspace for `nrhs`-wide batched solves (interleaved layout,
    /// `v[i * nrhs + r]`).
    pub fn with_nrhs(n: usize, nrhs: usize) -> Self {
        let nrhs = nrhs.max(1);
        let len = n * nrhs;
        KrylovWorkspace {
            n,
            nrhs,
            x: vec![0.0; len],
            r: vec![0.0; len],
            z: vec![0.0; len],
            p: vec![0.0; len],
            ap: vec![0.0; len],
            sweep: vec![0.0; len],
            gram: vec![0.0; nrhs * nrhs],
            gram_copy: vec![0.0; nrhs * nrhs],
            coef: vec![0.0; nrhs * nrhs],
            retained: vec![false; nrhs],
        }
    }

    /// The dimension this workspace was sized for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The batch width this workspace was sized for.
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_sizes_every_buffer() {
        let ws = KrylovWorkspace::with_nrhs(7, 3);
        assert_eq!(ws.n(), 7);
        assert_eq!(ws.nrhs(), 3);
        for buf in [&ws.x, &ws.r, &ws.z, &ws.p, &ws.ap, &ws.sweep] {
            assert_eq!(buf.len(), 21);
        }
        // Block coefficient scratch: nrhs² dense blocks plus the rank mask.
        for buf in [&ws.gram, &ws.gram_copy, &ws.coef] {
            assert_eq!(buf.len(), 9);
        }
        assert_eq!(ws.retained.len(), 3);
        assert_eq!(KrylovWorkspace::new(5).nrhs(), 1);
    }
}
