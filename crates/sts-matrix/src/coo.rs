//! Coordinate (triplet) matrix builder.
//!
//! A [`CooMatrix`] accumulates `(row, col, value)` triplets in arbitrary order
//! and converts them to [`CsrMatrix`] form, summing
//! duplicates. All matrix generators and the Matrix Market reader build
//! through this type.

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::Result;

/// A sparse matrix in coordinate (triplet) form, used as a builder.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` triplet matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends a triplet. Entries out of bounds are rejected.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Appends a triplet and, if off-diagonal, its transpose — convenient for
    /// assembling symmetric matrices from their lower half.
    pub fn push_symmetric(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Iterates over the stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate entries and dropping entries that
    /// become exactly zero after summation only if `drop_zeros` is requested
    /// via [`CooMatrix::to_csr_drop_zeros`]. This method keeps explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_csr_impl(false)
    }

    /// Converts to CSR, summing duplicates and dropping entries whose summed
    /// value is exactly `0.0`.
    pub fn to_csr_drop_zeros(&self) -> CsrMatrix {
        self.to_csr_impl(true)
    }

    fn to_csr_impl(&self, drop_zeros: bool) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and merge
        // duplicates. This is O(nnz log rowlen) and allocation-lean.
        let nnz = self.values.len();
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; nnz];
        {
            let mut next = row_counts.clone();
            for idx in 0..nnz {
                let r = self.rows[idx];
                order[next[r]] = idx;
                next[r] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(nnz);
        let mut values: Vec<f64> = Vec::with_capacity(nnz);
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &idx in &order[row_counts[r]..row_counts[r + 1]] {
                scratch.push((self.cols[idx], self.values[idx]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                if !(drop_zeros && v == 0.0) {
                    col_idx.push(c);
                    values.push(v);
                }
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0]);
    }

    #[test]
    fn push_out_of_bounds_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
    }

    #[test]
    fn drop_zeros_removes_cancelled_entries() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        assert_eq!(coo.to_csr().nnz(), 2);
        assert_eq!(coo.to_csr_drop_zeros().nnz(), 1);
    }

    #[test]
    fn columns_are_sorted_after_conversion() {
        let mut coo = CooMatrix::new(1, 5);
        for c in [4, 1, 3, 0, 2] {
            coo.push(0, c, c as f64).unwrap();
        }
        let csr = coo.to_csr();
        assert_eq!(csr.col_idx(), &[0, 1, 2, 3, 4]);
        assert_eq!(csr.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn push_symmetric_mirrors_off_diagonals() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(2, 0, 5.0).unwrap();
        coo.push_symmetric(1, 1, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(2, 0), 5.0);
        assert_eq!(csr.get(0, 2), 5.0);
        assert_eq!(csr.get(1, 1), 3.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn iter_returns_insertion_order() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 1, 2.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(1, 1, 2.0), (0, 0, 1.0)]);
    }
}
