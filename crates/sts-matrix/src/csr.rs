//! Compressed sparse row storage.
//!
//! [`CsrMatrix`] is the "level-1" storage of the paper's CSR-k hierarchy:
//! a row-pointer array (`index1` in the paper's notation), a column-index
//! array (`subscript1`) and a value array (`valueL`). Columns within a row are
//! kept sorted and deduplicated; every routine in the workspace relies on
//! that invariant.

use crate::error::MatrixError;
use crate::Result;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating every structural
    /// invariant: pointer monotonicity, array lengths, column bounds and
    /// sortedness.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(MatrixError::InvalidStructure(format!(
                "row_ptr has length {} but expected {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if row_ptr.first().copied().unwrap_or(0) != 0 {
            return Err(MatrixError::InvalidStructure("row_ptr[0] must be 0".into()));
        }
        if col_idx.len() != values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "col_idx ({}) and values ({}) lengths differ",
                col_idx.len(),
                values.len()
            )));
        }
        if row_ptr[nrows] != col_idx.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "row_ptr[n]={} does not match nnz={}",
                row_ptr[nrows],
                col_idx.len()
            )));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(MatrixError::InvalidStructure(format!(
                    "row_ptr decreases at row {r}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c >= ncols {
                    return Err(MatrixError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        nrows,
                        ncols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(MatrixError::InvalidStructure(format!(
                            "columns in row {r} are not strictly increasing"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix without validation. Intended for internal callers
    /// (e.g. [`CooMatrix::to_csr`](crate::CooMatrix::to_csr)) that construct
    /// the arrays correctly by design.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Checks numeric and structural fitness for use as an SPD solver
    /// operand: monotone row pointers, in-bounds strictly-increasing column
    /// indices, every stored value finite and — for square matrices — a
    /// present, positive, finite diagonal in every row.
    ///
    /// Structural invariants are enforced at [`CsrMatrix::from_raw`] time
    /// already; `validate` re-verifies them so matrices assembled through
    /// [`CsrMatrix::from_raw_unchecked`] (or mutated via
    /// [`CsrMatrix::values_mut`]) get the same guarantees at the solver
    /// boundary, and adds the numeric checks no constructor performs.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.nrows + 1
            || self.row_ptr.first() != Some(&0)
            || self.col_idx.len() != self.values.len()
            || self.row_ptr.last() != Some(&self.values.len())
        {
            return Err(MatrixError::InvalidStructure(
                "row pointer array is inconsistent with the entry arrays".to_string(),
            ));
        }
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if lo > hi {
                return Err(MatrixError::InvalidStructure(format!(
                    "row pointers decrease at row {r}"
                )));
            }
            let mut diag = None;
            let mut prev: Option<usize> = None;
            for k in lo..hi {
                let c = self.col_idx[k];
                if c >= self.ncols {
                    return Err(MatrixError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
                if prev.is_some_and(|p| p >= c) {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {r} columns are not strictly increasing"
                    )));
                }
                prev = Some(c);
                let v = self.values[k];
                if !v.is_finite() {
                    return Err(MatrixError::NonFinite {
                        row: r,
                        col: c,
                        value: v,
                    });
                }
                if c == r {
                    diag = Some(v);
                }
            }
            if self.nrows == self.ncols {
                match diag {
                    None => return Err(MatrixError::SingularDiagonal { row: r }),
                    Some(d) if d <= 0.0 => {
                        return Err(MatrixError::InvalidParameter(format!(
                            "row {r} has non-positive diagonal {d}; the operand is not positive \
                             definite"
                        )))
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average row density `nnz / nrows` (0 for an empty matrix).
    pub fn row_density(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// The row pointer array (`index1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array (`subscript1`).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (structure is immutable).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`.
    pub fn row_values(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Returns the stored value at `(r, c)`, or `0.0` when the entry is not
    /// stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_values(r).iter())
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            row_counts[i + 1] += row_counts[i];
        }
        let mut next = row_counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for r in 0..self.nrows {
            for (c, v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                let pos = next[*c];
                col_idx[pos] = r;
                values[pos] = *v;
                next[*c] += 1;
            }
        }
        // Rows of the transpose are filled in increasing original-row order,
        // so columns are already sorted.
        CsrMatrix::from_raw_unchecked(self.ncols, self.nrows, row_counts, col_idx, values)
    }

    /// Returns `A + Aᵀ` as a *pattern* union with summed values, which is the
    /// symmetric matrix whose undirected graph `G1` drives every ordering in
    /// the paper. Diagonal entries are kept once (values summed).
    pub fn plus_transpose(&self) -> CsrMatrix {
        let t = self.transpose();
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.nrows {
            let (ac, av) = (self.row_cols(r), self.row_values(r));
            let (bc, bv) = (t.row_cols(r), t.row_values(r));
            let (mut i, mut j) = (0, 0);
            while i < ac.len() || j < bc.len() {
                let take_a = j >= bc.len() || (i < ac.len() && ac[i] <= bc[j]);
                let take_b = i >= ac.len() || (j < bc.len() && bc[j] <= ac[i]);
                if take_a && take_b {
                    col_idx.push(ac[i]);
                    values.push(av[i] + bv[j]);
                    i += 1;
                    j += 1;
                } else if take_a {
                    col_idx.push(ac[i]);
                    values.push(av[i]);
                    i += 1;
                } else {
                    col_idx.push(bc[j]);
                    values.push(bv[j]);
                    j += 1;
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Extracts the lower-triangular part (including the diagonal) as a new
    /// CSR matrix.
    pub fn lower_triangle(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.nrows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                if c <= r {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Applies a symmetric permutation: returns `P A Pᵀ` where the permuted
    /// matrix's row `i` is the original row `perm[i]`. `perm` maps
    /// new index → old index.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<CsrMatrix> {
        if perm.len() != self.nrows || self.nrows != self.ncols {
            return Err(MatrixError::DimensionMismatch(format!(
                "permutation length {} does not match square matrix dimension {}",
                perm.len(),
                self.nrows
            )));
        }
        let mut inv = vec![usize::MAX; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            if old >= self.nrows || inv[old] != usize::MAX {
                return Err(MatrixError::InvalidParameter(
                    "perm is not a permutation of 0..n".into(),
                ));
            }
            inv[old] = new;
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for &old_r in perm.iter().take(self.nrows) {
            scratch.clear();
            for (&c, &v) in self.row_cols(old_r).iter().zip(self.row_values(old_r)) {
                scratch.push((inv[c], v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(
            self.nrows, self.ncols, row_ptr, col_idx, values,
        ))
    }

    /// True if the matrix is structurally and numerically symmetric to within
    /// `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            return false;
        }
        self.values
            .iter()
            .zip(t.values.iter())
            .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn validate_accepts_an_spd_like_operand() {
        let a = CsrMatrix::from_raw(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![2.0, -1.0, -1.0, 2.0],
        )
        .unwrap();
        assert!(a.validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_finite_values() {
        let mut a = CsrMatrix::identity(3);
        a.values_mut()[1] = f64::NAN;
        assert!(matches!(
            a.validate(),
            Err(MatrixError::NonFinite { row: 1, col: 1, .. })
        ));
        a.values_mut()[1] = f64::INFINITY;
        assert!(matches!(a.validate(), Err(MatrixError::NonFinite { .. })));
    }

    #[test]
    fn validate_rejects_missing_or_non_positive_diagonals() {
        let missing = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 0], vec![1.0, 1.0]).unwrap();
        assert!(matches!(
            missing.validate(),
            Err(MatrixError::SingularDiagonal { row: 1 })
        ));
        let mut neg = CsrMatrix::identity(2);
        neg.values_mut()[0] = -1.0;
        assert!(matches!(
            neg.validate(),
            Err(MatrixError::InvalidParameter(_))
        ));
    }

    #[test]
    fn validate_rejects_malformed_unchecked_structure() {
        let bad = CsrMatrix::from_raw_unchecked(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(matches!(
            bad.validate(),
            Err(MatrixError::InvalidStructure(_))
        ));
        let oob = CsrMatrix::from_raw_unchecked(1, 1, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(
            oob.validate(),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
    }

    fn sample() -> CsrMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 2.0),
            (0, 2, 1.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn from_raw_validates_row_ptr_length() {
        let e = CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(e.is_err());
    }

    #[test]
    fn from_raw_validates_monotonicity() {
        let e = CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(MatrixError::InvalidStructure(_))));
    }

    #[test]
    fn from_raw_validates_column_bounds() {
        let e = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(MatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn from_raw_validates_sorted_columns() {
        let e = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(MatrixError::InvalidStructure(_))));
    }

    #[test]
    fn from_raw_accepts_valid_input() {
        let m = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let id = CsrMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        for i in 0..4 {
            assert_eq!(id.get(i, i), 1.0);
        }
    }

    #[test]
    fn get_returns_zero_for_missing_entries() {
        let m = sample();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 1.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.get(2, 0), 1.0);
    }

    #[test]
    fn plus_transpose_is_symmetric() {
        let m = sample();
        let s = m.plus_transpose();
        assert!(s.is_symmetric(0.0));
        assert_eq!(s.get(0, 0), 4.0); // diagonal summed
        assert_eq!(s.get(0, 2), 5.0); // 1 + 4
        assert_eq!(s.get(2, 0), 5.0);
    }

    #[test]
    fn lower_triangle_drops_upper_entries() {
        let m = sample();
        let l = m.lower_triangle();
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(2, 0), 4.0);
        assert_eq!(l.nnz(), 4);
    }

    #[test]
    fn permute_symmetric_reverses() {
        let m = sample();
        let perm = vec![2, 1, 0];
        let p = m.permute_symmetric(&perm).unwrap();
        // New (0,0) should be old (2,2)
        assert_eq!(p.get(0, 0), 5.0);
        assert_eq!(p.get(2, 2), 2.0);
        // New (0,2) should be old (2,0)
        assert_eq!(p.get(0, 2), 4.0);
    }

    #[test]
    fn permute_symmetric_rejects_bad_permutation() {
        let m = sample();
        assert!(m.permute_symmetric(&[0, 0, 1]).is_err());
        assert!(m.permute_symmetric(&[0, 1]).is_err());
    }

    #[test]
    fn iter_visits_all_entries_in_row_major_order() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0)
            ]
        );
    }

    #[test]
    fn row_density_is_nnz_over_n() {
        let m = sample();
        assert!((m.row_density() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        assert!(!sample().is_symmetric(1e-12));
        assert!(CsrMatrix::identity(3).is_symmetric(0.0));
    }
}
