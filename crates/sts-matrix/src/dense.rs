//! Small dense matrices used as ground-truth oracles in tests and examples.
//!
//! The dense type is intentionally minimal: it exists so that the sparse
//! triangular solvers can be checked against an implementation whose
//! correctness is obvious, not to be fast.

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::Result;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero-filled `nrows x ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates a dense matrix from a sparse one.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let mut d = DenseMatrix::zeros(csr.nrows(), csr.ncols());
        for (r, c, v) in csr.iter() {
            d[(r, c)] += v;
        }
        d
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Matrix–vector product `y = A x`.
    pub fn multiply(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(MatrixError::DimensionMismatch(format!(
                "x has length {}, expected {}",
                x.len(),
                self.ncols
            )));
        }
        let mut y = vec![0.0; self.nrows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Forward substitution treating the matrix as lower triangular
    /// (entries above the diagonal are ignored).
    pub fn solve_lower_triangular(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.nrows != self.ncols {
            return Err(MatrixError::DimensionMismatch(
                "matrix must be square".into(),
            ));
        }
        if b.len() != self.nrows {
            return Err(MatrixError::DimensionMismatch(
                "b has the wrong length".into(),
            ));
        }
        let n = self.nrows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..i {
                acc += self[(i, j)] * x[j];
            }
            let d = self[(i, i)];
            if d == 0.0 {
                return Err(MatrixError::SingularDiagonal { row: i });
            }
            x[i] = (b[i] - acc) / d;
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.ncols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn from_csr_places_entries() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0).unwrap();
        coo.push(1, 0, -2.0).unwrap();
        let d = DenseMatrix::from_csr(&coo.to_csr());
        assert_eq!(d[(0, 2)], 5.0);
        assert_eq!(d[(1, 0)], -2.0);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn multiply_matches_manual_computation() {
        let mut d = DenseMatrix::zeros(2, 2);
        d[(0, 0)] = 1.0;
        d[(0, 1)] = 2.0;
        d[(1, 0)] = 3.0;
        d[(1, 1)] = 4.0;
        let y = d.multiply(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn lower_solve_matches_hand_computation() {
        let mut d = DenseMatrix::zeros(2, 2);
        d[(0, 0)] = 2.0;
        d[(1, 0)] = 1.0;
        d[(1, 1)] = 4.0;
        let x = d.solve_lower_triangular(&[2.0, 9.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn lower_solve_rejects_zero_diagonal() {
        let d = DenseMatrix::zeros(2, 2);
        assert!(matches!(
            d.solve_lower_triangular(&[1.0, 1.0]),
            Err(MatrixError::SingularDiagonal { row: 0 })
        ));
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let d = DenseMatrix::zeros(2, 2);
        assert!(d.multiply(&[1.0]).is_err());
        assert!(d.solve_lower_triangular(&[1.0]).is_err());
    }
}
