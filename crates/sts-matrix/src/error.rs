//! Error type shared by the matrix substrate.

use std::fmt;

/// Errors produced while building, converting or reading sparse matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// An entry referenced a row or column outside the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the matrix being built.
        nrows: usize,
        /// Number of columns of the matrix being built.
        ncols: usize,
    },
    /// A lower-triangular matrix was requested but an entry lies above the
    /// diagonal.
    NotLowerTriangular {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A triangular solve requires a nonzero diagonal in every row; this row
    /// is missing one (or it is exactly zero).
    SingularDiagonal {
        /// Row whose diagonal entry is zero or missing.
        row: usize,
    },
    /// The CSR structural invariants (monotone row pointers, sorted columns,
    /// matching array lengths) are violated.
    InvalidStructure(String),
    /// A dimension mismatch between operands, e.g. `L x = b` with
    /// `len(b) != n`.
    DimensionMismatch(String),
    /// The Matrix Market stream could not be parsed.
    ParseError {
        /// 1-based line number where parsing failed (0 when unknown).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An I/O error while reading or writing a matrix file.
    Io(String),
    /// A generator or suite entry was asked for parameters it cannot satisfy.
    InvalidParameter(String),
    /// An incomplete factorization hit a non-positive pivot: the input was
    /// not (numerically) symmetric positive definite on the retained
    /// pattern.
    FactorizationBreakdown {
        /// Row whose pivot broke down.
        row: usize,
        /// The offending pivot value (`≤ 0`).
        pivot: f64,
    },
    /// A worker thread panicked inside a parallel kernel. The dispatch was
    /// quiesced (no iteration is still running) but output buffers written by
    /// the failed kernel must be considered torn.
    WorkerPanicked {
        /// Pool slot (worker index) whose body panicked.
        slot: usize,
        /// Pack / stage (or loop index) in flight when the panic fired.
        pack: usize,
        /// The panic payload, stringified when possible.
        message: String,
    },
    /// A parallel solve exceeded its watchdog deadline: a worker stalled (or
    /// died without unwinding) and an epoch-gate arrival never came.
    SolveTimeout {
        /// Stage (pack) whose gate wait timed out.
        stage: usize,
        /// The watchdog budget that was exceeded, in milliseconds.
        timeout_ms: u64,
    },
    /// A matrix entry is NaN or infinite.
    NonFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The iterative solver's residual recurrence produced a non-finite norm
    /// (iteration 0 is the initial residual, i.e. the right-hand side).
    NonFiniteResidual {
        /// Iteration at which the residual norm stopped being finite.
        iteration: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix"
            ),
            MatrixError::NotLowerTriangular { row, col } => write!(
                f,
                "entry ({row}, {col}) lies above the diagonal of a lower-triangular matrix"
            ),
            MatrixError::SingularDiagonal { row } => {
                write!(f, "row {row} has a zero or missing diagonal entry")
            }
            MatrixError::InvalidStructure(msg) => write!(f, "invalid CSR structure: {msg}"),
            MatrixError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            MatrixError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            MatrixError::Io(msg) => write!(f, "i/o error: {msg}"),
            MatrixError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MatrixError::FactorizationBreakdown { row, pivot } => write!(
                f,
                "factorization breakdown at row {row}: pivot {pivot} is not positive"
            ),
            MatrixError::WorkerPanicked {
                slot,
                pack,
                message,
            } => write!(
                f,
                "worker {slot} panicked while executing pack {pack}: {message}"
            ),
            MatrixError::SolveTimeout { stage, timeout_ms } => write!(
                f,
                "parallel solve timed out at stage {stage}: a worker stalled past the \
                 {timeout_ms} ms watchdog deadline"
            ),
            MatrixError::NonFinite { row, col, value } => {
                write!(f, "entry ({row}, {col}) has non-finite value {value}")
            }
            MatrixError::NonFiniteResidual { iteration } => write!(
                f,
                "residual norm is not finite at iteration {iteration} \
                 (iteration 0 is the initial residual)"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 3,
            ncols: 3,
        };
        let s = e.to_string();
        assert!(s.contains("(5, 7)"));
        assert!(s.contains("3x3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: MatrixError = io.into();
        assert!(matches!(e, MatrixError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn singular_diagonal_display() {
        let e = MatrixError::SingularDiagonal { row: 42 };
        assert!(e.to_string().contains("42"));
    }
}
