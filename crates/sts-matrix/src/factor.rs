//! Incomplete factorizations producing triangular preconditioner operands.
//!
//! The workload the STS-k kernels exist for is a preconditioned iterative
//! solver: every iteration applies `M⁻¹` through one forward and one
//! backward triangular sweep. [`ic0`] builds the classic zero-fill
//! incomplete Cholesky preconditioner `M = L Lᵀ ≈ A` whose factor has
//! *exactly* the sparsity pattern of `A`'s lower triangle — which means an
//! ordering (and split layout) computed once for `A` hosts the factor's
//! values unchanged.
//!
//! # Algorithm
//!
//! Row-wise up-looking IC(0): for each row `i` in increasing order, and each
//! retained strictly-lower position `(i, k)` in increasing column order,
//!
//! ```text
//! L[i][k] = (A[i][k] − Σ_{j < k} L[i][j] · L[k][j]) / L[k][k]
//! L[i][i] = sqrt(A[i][i] − Σ_{j < i} L[i][j]²)
//! ```
//!
//! where the sums run over the *retained* pattern only (a sorted two-pointer
//! merge of rows `i` and `k`). A non-positive value under the square root is
//! reported as [`MatrixError::FactorizationBreakdown`]; on SPD M-matrices
//! (the grid Laplacians of the synthetic suite) the factorization is known
//! to exist.
//!
//! # Level-scheduled (parallel) construction
//!
//! The factorization's dependency DAG is *the same DAG the triangular solve
//! walks*: row `i`'s update reads exactly the rows `k` named by its retained
//! strictly-lower columns (each such row completely — its prefix for the
//! two-pointer merge and its diagonal for the scale), plus its own earlier
//! entries. A pack / super-row hierarchy that is valid for the solve — no
//! row depends on a row of a *different* super-row of the same pack — is
//! therefore valid verbatim for the factorization: the rows of one pack can
//! be factored concurrently as long as (a) every earlier pack a row's
//! columns reference has fully completed and (b) the rows of one super-row
//! are factored in increasing row order by a single worker. Because each
//! row's value is a pure function of already-final inputs evaluated in the
//! same merge order, the level-scheduled factor is **bitwise identical** to
//! the sequential up-looking sweep, for any worker count and any
//! interleaving. The pool-resident kernel lives in
//! `sts_core::ParallelSolver::parallel_ic0`; this module provides the
//! engine-agnostic pieces it shares with [`ic0`]: the lower-triangle pattern
//! copy ([`lower_pattern_copy`]) and the single-row update
//! ([`ic0_factor_row`]).

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::triangular::LowerTriangularCsr;
use crate::Result;

/// Copies `a`'s lower triangle (columns sorted increasingly, diagonal last
/// in its natural sorted position) into raw CSR arrays — the in-place
/// workspace both the sequential and the level-scheduled IC(0) sweeps
/// overwrite, pattern unchanged.
///
/// Fails when `a` is not square or a row has no stored diagonal.
pub fn lower_pattern_copy(a: &CsrMatrix) -> Result<(Vec<usize>, Vec<usize>, Vec<f64>)> {
    if a.nrows() != a.ncols() {
        return Err(MatrixError::DimensionMismatch(format!(
            "ic0 needs a square matrix, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    let n = a.nrows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0usize);
    for r in 0..n {
        let mut has_diag = false;
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_values(r)) {
            if c > r {
                break; // columns are sorted; the rest is upper triangle
            }
            col_idx.push(c);
            vals.push(v);
            has_diag |= c == r;
        }
        if !has_diag {
            return Err(MatrixError::SingularDiagonal { row: r });
        }
        row_ptr.push(col_idx.len());
    }
    Ok((row_ptr, col_idx, vals))
}

/// The up-looking IC(0) update of row `i` over the retained pattern.
///
/// `row` is the row's value slice `vals[row_ptr[i]..row_ptr[i + 1]]`
/// (initialised with `A`'s lower-triangle values, diagonal last), held
/// exclusively by the caller; `read(k)` returns the already-final factor
/// value at global value index `k < row_ptr[i]` — a plain slice read for the
/// sequential sweep, a shared-pointer read for the level-scheduled one.
/// Every index passed to `read` targets a strictly earlier row, which is
/// what makes the borrow split sound in both engines.
///
/// Returns the pivot `d = A[i][i] − Σ L[i][j]²` *before* the square root,
/// having already stored `sqrt(d)` in the diagonal slot; the caller checks
/// `d <= 0.0 || !d.is_finite()` and reports
/// [`MatrixError::FactorizationBreakdown`] (a non-SPD pivot propagates as
/// NaN, which downstream rows' own pivot checks also catch, so the first —
/// lowest-row — breakdown is identical whichever engine runs the sweep).
#[inline]
pub fn ic0_factor_row<F: Fn(usize) -> f64>(
    row_ptr: &[usize],
    col_idx: &[usize],
    read: F,
    row: &mut [f64],
    i: usize,
) -> f64 {
    let lo = row_ptr[i];
    let hi = row_ptr[i + 1];
    debug_assert_eq!(row.len(), hi - lo, "row slice must cover row {i}");
    for kk in lo..hi - 1 {
        let k = col_idx[kk];
        // Sparse dot of rows i and k over columns < k (two-pointer merge of
        // the already-computed prefixes).
        let mut s = row[kk - lo];
        let (mut pi, mut pk) = (lo, row_ptr[k]);
        let k_end = row_ptr[k + 1] - 1; // exclude L[k][k]
        while pi < kk && pk < k_end {
            match col_idx[pi].cmp(&col_idx[pk]) {
                std::cmp::Ordering::Less => pi += 1,
                std::cmp::Ordering::Greater => pk += 1,
                std::cmp::Ordering::Equal => {
                    s -= row[pi - lo] * read(pk);
                    pi += 1;
                    pk += 1;
                }
            }
        }
        row[kk - lo] = s / read(k_end);
    }
    let mut d = row[hi - 1 - lo];
    for v in &row[..hi - 1 - lo] {
        d -= v * v;
    }
    row[hi - 1 - lo] = d.sqrt();
    d
}

/// Zero-fill incomplete Cholesky: returns the lower-triangular factor `L`
/// with the sparsity pattern of `a`'s lower triangle such that
/// `L Lᵀ ≈ a` (exact on the retained pattern positions).
///
/// `a` must be square with a fully stored symmetric pattern (both triangles
/// present, as the synthetic suite and Matrix Market symmetric readers
/// produce); only the lower triangle is read. This is the sequential
/// up-looking sweep; the level-scheduled parallel construction
/// (`sts_core::ParallelSolver::parallel_ic0`) produces bitwise-identical
/// values on the same input (see the module documentation).
pub fn ic0(a: &CsrMatrix) -> Result<LowerTriangularCsr> {
    let (row_ptr, col_idx, mut vals) = lower_pattern_copy(a)?;
    let n = a.nrows();
    // Up-looking factorization over the retained pattern. Row r's entries
    // end with its diagonal (largest retained column), so vals[row_ptr[r+1]-1]
    // is L[r][r] once row r is done.
    for i in 0..n {
        let lo = row_ptr[i];
        let hi = row_ptr[i + 1];
        // Rows < i are final; the split borrow mirrors the dependency DAG.
        let (done, rest) = vals.split_at_mut(lo);
        let row = &mut rest[..hi - lo];
        let d = ic0_factor_row(&row_ptr, &col_idx, |k| done[k], row, i);
        if d <= 0.0 || !d.is_finite() {
            return Err(MatrixError::FactorizationBreakdown { row: i, pivot: d });
        }
    }
    let csr = CsrMatrix::from_raw_unchecked(n, n, row_ptr, col_idx, vals);
    LowerTriangularCsr::from_csr(&csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::generators;
    use crate::ops;

    /// Dense `L Lᵀ` entry for verification.
    fn llt_entry(l: &LowerTriangularCsr, i: usize, j: usize) -> f64 {
        let row = |r: usize| -> Vec<(usize, f64)> {
            let mut v: Vec<(usize, f64)> = l
                .row_off_diag_cols(r)
                .iter()
                .copied()
                .zip(l.row_off_diag_values(r).iter().copied())
                .collect();
            v.push((r, l.diag(r)));
            v
        };
        let (ri, rj) = (row(i), row(j));
        let mut s = 0.0;
        for &(c, v) in &ri {
            if let Some(&(_, w)) = rj.iter().find(|&&(d, _)| d == c) {
                s += v * w;
            }
        }
        s
    }

    #[test]
    fn tridiagonal_ic0_is_the_exact_cholesky_factor() {
        // A tridiagonal SPD matrix has a tridiagonal Cholesky factor, so
        // IC(0) drops nothing: L Lᵀ must equal A exactly.
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let l = ic0(&a).unwrap();
        for (r, c, v) in a.iter() {
            if c <= r {
                assert!(
                    (llt_entry(&l, r, c) - v).abs() < 1e-12,
                    "LLᵀ[{r}][{c}] diverged from A"
                );
            }
        }
        // The factor actually preconditions: L (Lᵀ x) recovers A x.
        let x: Vec<f64> = (0..n).map(|i| 1.0 + 0.1 * i as f64).collect();
        let ax = ops::spmv(&a, &x).unwrap();
        let y = l.solve_seq(&ax).unwrap();
        let x_back = l.solve_transpose_seq(&y).unwrap();
        assert!(ops::relative_error_inf(&x_back, &x) < 1e-10);
    }

    #[test]
    fn ic0_matches_a_on_the_retained_pattern() {
        // The defining IC(0) property: (L Lᵀ)[i][j] = A[i][j] for every
        // retained position (i, j), even where the exact factor would fill.
        let a = generators::grid2d_laplacian(6, 5).unwrap();
        let l = ic0(&a).unwrap();
        assert_eq!(l.nnz() * 2 - l.n(), a.nnz(), "pattern must be preserved");
        for (r, c, v) in a.iter() {
            if c <= r {
                assert!(
                    (llt_entry(&l, r, c) - v).abs() < 1e-12,
                    "IC(0) must match A at retained position ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn lower_pattern_copy_extracts_exactly_the_lower_triangle() {
        let a = generators::grid2d_laplacian(5, 4).unwrap();
        let (row_ptr, col_idx, vals) = lower_pattern_copy(&a).unwrap();
        assert_eq!(row_ptr.len(), a.nrows() + 1);
        assert_eq!(col_idx.len(), vals.len());
        for r in 0..a.nrows() {
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "columns sorted");
            assert_eq!(*cols.last().unwrap(), r, "diagonal last");
            for (&c, &v) in cols.iter().zip(&vals[row_ptr[r]..row_ptr[r + 1]]) {
                assert_eq!(v, a.get(r, c));
            }
        }
    }

    #[test]
    fn factor_row_reproduces_the_full_sweep_row_by_row() {
        // Driving ic0_factor_row by hand must give the exact ic0 factor —
        // the parity the level-scheduled engine relies on.
        let a = generators::grid2d_laplacian(7, 6).unwrap();
        let reference = ic0(&a).unwrap();
        let (row_ptr, col_idx, mut vals) = lower_pattern_copy(&a).unwrap();
        for i in 0..a.nrows() {
            let (done, rest) = vals.split_at_mut(row_ptr[i]);
            let row = &mut rest[..row_ptr[i + 1] - row_ptr[i]];
            let d = ic0_factor_row(&row_ptr, &col_idx, |k| done[k], row, i);
            assert!(d > 0.0 && d.is_finite());
        }
        assert_eq!(vals, reference.values(), "bitwise parity with ic0");
    }

    #[test]
    fn ic0_rejects_non_spd_input() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        coo.push(1, 1, 1.0).unwrap(); // 1 − 9 < 0 under the root
        let e = ic0(&coo.to_csr());
        assert!(matches!(
            e,
            Err(MatrixError::FactorizationBreakdown { row: 1, .. })
        ));
    }

    #[test]
    fn ic0_rejects_missing_diagonal_and_rectangular_input() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 0.5).unwrap();
        assert!(matches!(
            ic0(&coo.to_csr()),
            Err(MatrixError::SingularDiagonal { row: 1 })
        ));
        let rect = CooMatrix::new(2, 3);
        assert!(matches!(
            ic0(&rect.to_csr()),
            Err(MatrixError::DimensionMismatch(_))
        ));
    }
}
