//! Incomplete factorizations producing triangular preconditioner operands.
//!
//! The workload the STS-k kernels exist for is a preconditioned iterative
//! solver: every iteration applies `M⁻¹` through one forward and one
//! backward triangular sweep. [`ic0`] builds the classic zero-fill
//! incomplete Cholesky preconditioner `M = L Lᵀ ≈ A` whose factor has
//! *exactly* the sparsity pattern of `A`'s lower triangle — which means an
//! ordering (and split layout) computed once for `A` hosts the factor's
//! values unchanged.
//!
//! # Algorithm
//!
//! Row-wise up-looking IC(0): for each row `i` in increasing order, and each
//! retained strictly-lower position `(i, k)` in increasing column order,
//!
//! ```text
//! L[i][k] = (A[i][k] − Σ_{j < k} L[i][j] · L[k][j]) / L[k][k]
//! L[i][i] = sqrt(A[i][i] − Σ_{j < i} L[i][j]²)
//! ```
//!
//! where the sums run over the *retained* pattern only (a sorted two-pointer
//! merge of rows `i` and `k`). A non-positive value under the square root is
//! reported as [`MatrixError::FactorizationBreakdown`]; on SPD M-matrices
//! (the grid Laplacians of the synthetic suite) the factorization is known
//! to exist.

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::triangular::LowerTriangularCsr;
use crate::Result;

/// Zero-fill incomplete Cholesky: returns the lower-triangular factor `L`
/// with the sparsity pattern of `a`'s lower triangle such that
/// `L Lᵀ ≈ a` (exact on the retained pattern positions).
///
/// `a` must be square with a fully stored symmetric pattern (both triangles
/// present, as the synthetic suite and Matrix Market symmetric readers
/// produce); only the lower triangle is read.
pub fn ic0(a: &CsrMatrix) -> Result<LowerTriangularCsr> {
    if a.nrows() != a.ncols() {
        return Err(MatrixError::DimensionMismatch(format!(
            "ic0 needs a square matrix, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    let n = a.nrows();
    // Copy the lower triangle (columns sorted increasingly, diagonal last in
    // its natural sorted position) — the factor overwrites the values in
    // place, pattern unchanged.
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0usize);
    for r in 0..n {
        let mut has_diag = false;
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_values(r)) {
            if c > r {
                break; // columns are sorted; the rest is upper triangle
            }
            col_idx.push(c);
            vals.push(v);
            has_diag |= c == r;
        }
        if !has_diag {
            return Err(MatrixError::SingularDiagonal { row: r });
        }
        row_ptr.push(col_idx.len());
    }
    // Up-looking factorization over the retained pattern. Row r's entries
    // end with its diagonal (largest retained column), so vals[row_ptr[r+1]-1]
    // is L[r][r] once row r is done.
    for i in 0..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        for kk in lo..hi - 1 {
            let k = col_idx[kk];
            // Sparse dot of rows i and k over columns < k (two-pointer merge
            // of the already-computed prefixes).
            let mut s = vals[kk];
            let (mut pi, mut pk) = (lo, row_ptr[k]);
            let k_end = row_ptr[k + 1] - 1; // exclude L[k][k]
            while pi < kk && pk < k_end {
                match col_idx[pi].cmp(&col_idx[pk]) {
                    std::cmp::Ordering::Less => pi += 1,
                    std::cmp::Ordering::Greater => pk += 1,
                    std::cmp::Ordering::Equal => {
                        s -= vals[pi] * vals[pk];
                        pi += 1;
                        pk += 1;
                    }
                }
            }
            vals[kk] = s / vals[k_end];
        }
        let mut d = vals[hi - 1];
        for v in &vals[lo..hi - 1] {
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(MatrixError::FactorizationBreakdown { row: i, pivot: d });
        }
        vals[hi - 1] = d.sqrt();
    }
    let csr = CsrMatrix::from_raw_unchecked(n, n, row_ptr, col_idx, vals);
    LowerTriangularCsr::from_csr(&csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::generators;
    use crate::ops;

    /// Dense `L Lᵀ` entry for verification.
    fn llt_entry(l: &LowerTriangularCsr, i: usize, j: usize) -> f64 {
        let row = |r: usize| -> Vec<(usize, f64)> {
            let mut v: Vec<(usize, f64)> = l
                .row_off_diag_cols(r)
                .iter()
                .copied()
                .zip(l.row_off_diag_values(r).iter().copied())
                .collect();
            v.push((r, l.diag(r)));
            v
        };
        let (ri, rj) = (row(i), row(j));
        let mut s = 0.0;
        for &(c, v) in &ri {
            if let Some(&(_, w)) = rj.iter().find(|&&(d, _)| d == c) {
                s += v * w;
            }
        }
        s
    }

    #[test]
    fn tridiagonal_ic0_is_the_exact_cholesky_factor() {
        // A tridiagonal SPD matrix has a tridiagonal Cholesky factor, so
        // IC(0) drops nothing: L Lᵀ must equal A exactly.
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let l = ic0(&a).unwrap();
        for (r, c, v) in a.iter() {
            if c <= r {
                assert!(
                    (llt_entry(&l, r, c) - v).abs() < 1e-12,
                    "LLᵀ[{r}][{c}] diverged from A"
                );
            }
        }
        // The factor actually preconditions: L (Lᵀ x) recovers A x.
        let x: Vec<f64> = (0..n).map(|i| 1.0 + 0.1 * i as f64).collect();
        let ax = ops::spmv(&a, &x).unwrap();
        let y = l.solve_seq(&ax).unwrap();
        let x_back = l.solve_transpose_seq(&y).unwrap();
        assert!(ops::relative_error_inf(&x_back, &x) < 1e-10);
    }

    #[test]
    fn ic0_matches_a_on_the_retained_pattern() {
        // The defining IC(0) property: (L Lᵀ)[i][j] = A[i][j] for every
        // retained position (i, j), even where the exact factor would fill.
        let a = generators::grid2d_laplacian(6, 5).unwrap();
        let l = ic0(&a).unwrap();
        assert_eq!(l.nnz() * 2 - l.n(), a.nnz(), "pattern must be preserved");
        for (r, c, v) in a.iter() {
            if c <= r {
                assert!(
                    (llt_entry(&l, r, c) - v).abs() < 1e-12,
                    "IC(0) must match A at retained position ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn ic0_rejects_non_spd_input() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        coo.push(1, 1, 1.0).unwrap(); // 1 − 9 < 0 under the root
        let e = ic0(&coo.to_csr());
        assert!(matches!(
            e,
            Err(MatrixError::FactorizationBreakdown { row: 1, .. })
        ));
    }

    #[test]
    fn ic0_rejects_missing_diagonal_and_rectangular_input() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 0.5).unwrap();
        assert!(matches!(
            ic0(&coo.to_csr()),
            Err(MatrixError::SingularDiagonal { row: 1 })
        ));
        let rect = CooMatrix::new(2, 3);
        assert!(matches!(
            ic0(&rect.to_csr()),
            Err(MatrixError::DimensionMismatch(_))
        ));
    }
}
