//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper's test suite comes from the University of Florida Sparse Matrix
//! Collection, which is distributed in Matrix Market format. This module lets
//! users of the library run STS-k on the genuine matrices when they have them
//! on disk, while the [`generators`](crate::generators) module provides
//! synthetic stand-ins when they do not.
//!
//! Supported: `matrix coordinate real/integer/pattern general/symmetric`.
//! Pattern files get unit values. Symmetric files are expanded to full
//! storage on read.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::Result;

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; the upper triangle is implied.
    Symmetric,
}

/// Value field declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmField {
    /// Real floating-point values.
    Real,
    /// Integer values (read as f64).
    Integer,
    /// Pattern only; values default to 1.0.
    Pattern,
}

/// Parses a Matrix Market stream into a [`CsrMatrix`].
///
/// Symmetric inputs are expanded so that the returned matrix stores both
/// halves explicitly (the diagonal once).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header line.
    let header = loop {
        match lines.next() {
            Some(Ok(l)) => {
                lineno += 1;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            Some(Err(e)) => return Err(MatrixError::Io(e.to_string())),
            None => {
                return Err(MatrixError::ParseError {
                    line: lineno,
                    message: "empty Matrix Market stream".into(),
                })
            }
        }
    };
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MatrixError::ParseError {
            line: lineno,
            message: format!("invalid header: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(MatrixError::ParseError {
            line: lineno,
            message: format!("only coordinate format is supported, got {}", tokens[2]),
        });
    }
    let field = match tokens[3] {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(MatrixError::ParseError {
                line: lineno,
                message: format!("unsupported field type {other}"),
            })
        }
    };
    let symmetry = match tokens[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(MatrixError::ParseError {
                line: lineno,
                message: format!("unsupported symmetry {other}"),
            })
        }
    };

    // Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(Ok(l)) => {
                lineno += 1;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            Some(Err(e)) => return Err(MatrixError::Io(e.to_string())),
            None => {
                return Err(MatrixError::ParseError {
                    line: lineno,
                    message: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|_| MatrixError::ParseError {
                line: lineno,
                message: format!("invalid size token {t}"),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    if dims.len() != 3 {
        return Err(MatrixError::ParseError {
            line: lineno,
            message: "size line must contain rows cols nnz".into(),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz * 2);

    let mut read_entries = 0usize;
    for l in lines {
        let l = l.map_err(|e| MatrixError::Io(e.to_string()))?;
        lineno += 1;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        let expected = if field == MmField::Pattern { 2 } else { 3 };
        if toks.len() < expected {
            return Err(MatrixError::ParseError {
                line: lineno,
                message: format!("expected {expected} tokens, got {}", toks.len()),
            });
        }
        let r: usize = toks[0].parse().map_err(|_| MatrixError::ParseError {
            line: lineno,
            message: format!("invalid row index {}", toks[0]),
        })?;
        let c: usize = toks[1].parse().map_err(|_| MatrixError::ParseError {
            line: lineno,
            message: format!("invalid column index {}", toks[1]),
        })?;
        if r == 0 || c == 0 {
            return Err(MatrixError::ParseError {
                line: lineno,
                message: "Matrix Market indices are 1-based; found 0".into(),
            });
        }
        let v: f64 = if field == MmField::Pattern {
            1.0
        } else {
            toks[2].parse().map_err(|_| MatrixError::ParseError {
                line: lineno,
                message: format!("invalid value {}", toks[2]),
            })?
        };
        let (r0, c0) = (r - 1, c - 1);
        match symmetry {
            MmSymmetry::General => coo.push(r0, c0, v)?,
            MmSymmetry::Symmetric => coo.push_symmetric(r0, c0, v)?,
        }
        read_entries += 1;
    }
    if read_entries != nnz {
        return Err(MatrixError::ParseError {
            line: lineno,
            message: format!("header declared {nnz} entries but {read_entries} were read"),
        });
    }
    Ok(coo.to_csr())
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Writes a matrix in `coordinate real general` Matrix Market format.
pub fn write_matrix_market<W: Write>(matrix: &CsrMatrix, mut writer: W) -> Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by the STS-k reproduction library")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz()
    )?;
    for (r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Writes a matrix to a Matrix Market file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(matrix: &CsrMatrix, path: P) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(matrix, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 3\n1 1 2.0\n2 1 -1.0\n3 3 4.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 0), -1.0);
    }

    #[test]
    fn reads_symmetric_and_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 2.0\n2 1 5.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn reads_pattern_with_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        let text = "%%NotMatrixMarket nonsense\n1 1 0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unsupported_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n3.0\n4.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(2, 1, -2.25).unwrap();
        let m = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let m2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(read_matrix_market("".as_bytes()).is_err());
    }

    use crate::coo::CooMatrix;
}
