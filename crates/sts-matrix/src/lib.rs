//! Sparse matrix substrate for the STS-k reproduction.
//!
//! This crate provides everything the higher-level STS-k crates need to talk
//! about sparse matrices:
//!
//! * [`CooMatrix`] — a triplet (coordinate) builder used to assemble matrices
//!   incrementally;
//! * [`CsrMatrix`] — compressed sparse row storage with sorted, deduplicated
//!   column indices, the "CSR-1" level of the paper's CSR-k hierarchy;
//! * [`LowerTriangularCsr`] — the lower-triangular operand `L` of the sparse
//!   triangular system `L x = b`, stored row-wise with the diagonal entry held
//!   last in every row exactly as Algorithm 1 of the paper expects;
//! * [`DenseMatrix`] — a small dense helper used as the ground-truth oracle in
//!   tests;
//! * incomplete factorizations ([`factor`]): zero-fill incomplete Cholesky
//!   ([`factor::ic0`]) producing preconditioner operands with the pattern of
//!   the input's lower triangle;
//! * Matrix Market I/O ([`io`]);
//! * synthetic matrix [`generators`] and the Table-1 analogue [`suite`].
//!
//! The crate is deliberately free of any threading or NUMA concerns; those
//! live in `sts-numa` and `sts-core`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod factor;
pub mod generators;
pub mod io;
pub mod ops;
pub mod suite;
pub mod triangular;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::MatrixError;
pub use suite::{SuiteMatrix, SuiteScale, TestSuite};
pub use triangular::LowerTriangularCsr;

/// Result alias used throughout the matrix substrate.
pub type Result<T> = std::result::Result<T, MatrixError>;
