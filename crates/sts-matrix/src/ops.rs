//! Vector and matrix–vector helpers shared across the workspace: SpMV,
//! norms, residuals, and right-hand-side manufacturing.

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::triangular::LowerTriangularCsr;
use crate::Result;

/// Sparse matrix–vector product `y = A x`.
pub fn spmv(a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>> {
    if x.len() != a.ncols() {
        return Err(MatrixError::DimensionMismatch(format!(
            "x has length {}, expected {}",
            x.len(),
            a.ncols()
        )));
    }
    let mut y = vec![0.0; a.nrows()];
    spmv_into(a, x, &mut y)?;
    Ok(y)
}

/// Sparse matrix–vector product into a caller-provided buffer.
pub fn spmv_into(a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Result<()> {
    if x.len() != a.ncols() || y.len() != a.nrows() {
        return Err(MatrixError::DimensionMismatch(
            "x/y lengths must match the matrix dimensions".into(),
        ));
    }
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_values(r)) {
            acc += v * x[c];
        }
        *yr = acc;
    }
    Ok(())
}

/// Sparse matrix–vector product `y = A x` across `threads` scoped OS
/// threads, each owning a contiguous block of rows (and the matching
/// disjoint slice of `y`).
///
/// This is the dependency-free standalone variant — it spawns threads per
/// call, so it suits one-off products on large matrices. Hot loops that
/// already hold a worker pool should prefer `ParallelSolver::spmv_into` in
/// `sts-core`, which reuses pinned workers and allocates nothing.
pub fn parallel_spmv(a: &CsrMatrix, x: &[f64], threads: usize) -> Result<Vec<f64>> {
    let mut y = vec![0.0; a.nrows()];
    parallel_spmv_into(a, x, &mut y, threads)?;
    Ok(y)
}

/// [`parallel_spmv`] into a caller-provided buffer.
pub fn parallel_spmv_into(a: &CsrMatrix, x: &[f64], y: &mut [f64], threads: usize) -> Result<()> {
    if x.len() != a.ncols() || y.len() != a.nrows() {
        return Err(MatrixError::DimensionMismatch(
            "x/y lengths must match the matrix dimensions".into(),
        ));
    }
    let n = a.nrows();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return spmv_into(a, x, y);
    }
    std::thread::scope(|scope| {
        let mut rest = y;
        for t in 0..threads {
            let start = t * n / threads;
            let end = (t + 1) * n / threads;
            let (mine, tail) = rest.split_at_mut(end - start);
            rest = tail;
            scope.spawn(move || {
                for (r, yr) in (start..end).zip(mine) {
                    let mut acc = 0.0;
                    for (&c, &v) in a.row_cols(r).iter().zip(a.row_values(r)) {
                        acc += v * x[c];
                    }
                    *yr = acc;
                }
            });
        }
    });
    Ok(())
}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm of a vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (axpy).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Per-column cross dot products of two interleaved block vectors:
/// `out[j * nrhs + q] = Σ_i u[i * nrhs + j] · v[i * nrhs + q]` — the small
/// dense matrix `Uᵀ V` (row-major, `nrhs × nrhs`) that block-CG projections
/// are built from (`Pᵀ R`, `(A P)ᵀ Z`). Allocation-free; one pass over the
/// interleaved storage serves all `nrhs²` entries.
pub fn block_dots_into(u: &[f64], v: &[f64], nrhs: usize, out: &mut [f64]) -> Result<()> {
    if u.len() != v.len() || out.len() != nrhs * nrhs || (nrhs > 0 && !u.len().is_multiple_of(nrhs))
    {
        return Err(MatrixError::DimensionMismatch(format!(
            "block_dots needs equal u/v lengths divisible by nrhs = {nrhs} and an nrhs² output, \
             got {} / {} / {}",
            u.len(),
            v.len(),
            out.len()
        )));
    }
    out.fill(0.0);
    for (cu, cv) in u.chunks_exact(nrhs).zip(v.chunks_exact(nrhs)) {
        for (j, &uj) in cu.iter().enumerate() {
            let row = &mut out[j * nrhs..(j + 1) * nrhs];
            for (o, &vq) in row.iter_mut().zip(cv) {
                *o += uj * vq;
            }
        }
    }
    Ok(())
}

/// [`block_dots_into`] with an allocated result.
pub fn block_dots(u: &[f64], v: &[f64], nrhs: usize) -> Result<Vec<f64>> {
    let mut out = vec![0.0; nrhs * nrhs];
    block_dots_into(u, v, nrhs, &mut out)?;
    Ok(out)
}

/// The symmetric block Gram matrix `Pᵀ (A P)` of an interleaved block vector
/// against its operator image: like [`block_dots_into`] but exploiting the
/// symmetry the SPD operator guarantees — only the upper triangle is
/// accumulated, then mirrored, so the inner loop does roughly half the
/// multiplies. (Also correct for `Rᵀ Z = Rᵀ M⁻¹ R` with a symmetric
/// preconditioner.)
pub fn block_gram_into(p: &[f64], ap: &[f64], nrhs: usize, out: &mut [f64]) -> Result<()> {
    if p.len() != ap.len()
        || out.len() != nrhs * nrhs
        || (nrhs > 0 && !p.len().is_multiple_of(nrhs))
    {
        return Err(MatrixError::DimensionMismatch(format!(
            "block_gram needs equal p/ap lengths divisible by nrhs = {nrhs} and an nrhs² output, \
             got {} / {} / {}",
            p.len(),
            ap.len(),
            out.len()
        )));
    }
    out.fill(0.0);
    for (cp, cap) in p.chunks_exact(nrhs).zip(ap.chunks_exact(nrhs)) {
        for (j, &pj) in cp.iter().enumerate() {
            let row = &mut out[j * nrhs + j..(j + 1) * nrhs];
            for (o, &aq) in row.iter_mut().zip(&cap[j..]) {
                *o += pj * aq;
            }
        }
    }
    for j in 0..nrhs {
        for q in j + 1..nrhs {
            out[q * nrhs + j] = out[j * nrhs + q];
        }
    }
    Ok(())
}

/// [`block_gram_into`] with an allocated result.
pub fn block_gram(p: &[f64], ap: &[f64], nrhs: usize) -> Result<Vec<f64>> {
    let mut out = vec![0.0; nrhs * nrhs];
    block_gram_into(p, ap, nrhs, &mut out)?;
    Ok(out)
}

/// Rank-revealing dense Cholesky solve for the small (`m × m`, row-major)
/// coefficient systems of block-CG: factors `w` in place (lower triangle
/// becomes `L` with `W = L Lᵀ`) and overwrites the `m × k` row-major
/// right-hand-side block `b` with the solution of `W X = B`.
///
/// The factorization is *rank-revealing by diagonal threshold*: a pivot
/// whose remaining diagonal has fallen to `drop_tol` times its original
/// magnitude (or below, including exactly zero, negative or non-finite) is
/// declared linearly dependent — its row and column are excluded from the
/// factor and the corresponding solution rows are zeroed, so the solve acts
/// on the retained positive-definite principal submatrix. `retained[j]` is
/// set accordingly (length `m`); block-CG uses it to deflate dependent
/// search directions while continuing with the rest.
pub fn small_cholesky_solve(
    w: &mut [f64],
    m: usize,
    b: &mut [f64],
    k: usize,
    drop_tol: f64,
    retained: &mut [bool],
) -> Result<()> {
    if w.len() != m * m || b.len() != m * k || retained.len() != m {
        return Err(MatrixError::DimensionMismatch(format!(
            "small_cholesky_solve needs w of length m² = {}, b of length m·k = {} and a mask of \
             length {m}, got {} / {} / {}",
            m * m,
            m * k,
            w.len(),
            b.len(),
            retained.len()
        )));
    }
    // Right-looking factorization with column dropping. The drop bound is
    // relative to the *largest original* diagonal (read before any
    // elimination): once updates have cancelled all but a `drop_tol` sliver
    // of a pivot, that direction is numerically inside the span of the
    // retained columns before it.
    let bound = drop_tol
        * (0..m)
            .map(|j| w[j * m + j].abs())
            .fold(0.0f64, |acc, d| if d > acc { d } else { acc });
    for j in 0..m {
        let d = w[j * m + j];
        // NaN pivots (and a NaN bound) are dropped too, never allowed to
        // poison the factor.
        if d.is_nan() || d <= bound || !d.is_finite() || bound.is_nan() {
            retained[j] = false;
            for i in j..m {
                w[i * m + j] = 0.0;
            }
            continue;
        }
        retained[j] = true;
        let ljj = d.sqrt();
        w[j * m + j] = ljj;
        for i in j + 1..m {
            w[i * m + j] /= ljj;
        }
        for i in j + 1..m {
            let lij = w[i * m + j];
            for c in j + 1..=i {
                w[i * m + c] -= lij * w[c * m + j];
            }
        }
    }
    // Forward substitution `L Y = B`, skipping dropped rows.
    for j in 0..m {
        if !retained[j] {
            b[j * k..(j + 1) * k].fill(0.0);
            continue;
        }
        for c in 0..j {
            let ljc = w[j * m + c];
            if ljc != 0.0 {
                let (head, tail) = b.split_at_mut(j * k);
                let yj = &mut tail[..k];
                for (yv, &yc) in yj.iter_mut().zip(&head[c * k..(c + 1) * k]) {
                    *yv -= ljc * yc;
                }
            }
        }
        let inv = 1.0 / w[j * m + j];
        for yv in &mut b[j * k..(j + 1) * k] {
            *yv *= inv;
        }
    }
    // Backward substitution `Lᵀ X = Y`, skipping dropped rows.
    for j in (0..m).rev() {
        if !retained[j] {
            continue;
        }
        for c in j + 1..m {
            let lcj = w[c * m + j];
            if lcj != 0.0 {
                let (head, tail) = b.split_at_mut(c * k);
                let xj = &mut head[j * k..(j + 1) * k];
                for (xv, &xc) in xj.iter_mut().zip(&tail[..k]) {
                    *xv -= lcj * xc;
                }
            }
        }
        let inv = 1.0 / w[j * m + j];
        for xv in &mut b[j * k..(j + 1) * k] {
            *xv *= inv;
        }
    }
    Ok(())
}

/// Residual `||L x - b||₂` of a candidate triangular solution.
pub fn triangular_residual(l: &LowerTriangularCsr, x: &[f64], b: &[f64]) -> Result<f64> {
    let lx = l.multiply(x)?;
    if b.len() != lx.len() {
        return Err(MatrixError::DimensionMismatch(
            "b has the wrong length".into(),
        ));
    }
    Ok(norm2(
        &lx.iter().zip(b).map(|(a, b)| a - b).collect::<Vec<_>>(),
    ))
}

/// Relative infinity-norm error between two vectors, `||a-b||∞ / max(1, ||b||∞)`.
pub fn relative_error_inf(a: &[f64], b: &[f64]) -> f64 {
    let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    norm_inf(&diff) / norm_inf(b).max(1.0)
}

/// Manufactures a right-hand side `b = L x*` for a known solution `x*`, which
/// the benchmark harnesses use so every method can be verified bit-for-bit
/// against the same reference.
pub fn manufacture_rhs(l: &LowerTriangularCsr, x_star: &[f64]) -> Result<Vec<f64>> {
    l.multiply(x_star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small_l() -> LowerTriangularCsr {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 1, -2.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        LowerTriangularCsr::from_csr(&coo.to_csr()).unwrap()
    }

    #[test]
    fn spmv_identity_is_noop() {
        let id = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(spmv(&id, &x).unwrap(), x);
    }

    #[test]
    fn spmv_rejects_bad_lengths() {
        let id = CsrMatrix::identity(4);
        assert!(spmv(&id, &[1.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(spmv_into(&id, &[1.0; 4], &mut y).is_err());
    }

    #[test]
    fn parallel_spmv_matches_the_sequential_product() {
        let l = small_l();
        let a = l.to_csr().plus_transpose();
        let x = vec![1.0, -2.0, 3.0];
        let expected = spmv(&a, &x).unwrap();
        for threads in [1, 2, 4, 9] {
            let y = parallel_spmv(&a, &x, threads).unwrap();
            assert_eq!(y, expected, "{threads} threads diverged");
        }
        let mut y = vec![0.0; 2];
        assert!(parallel_spmv_into(&a, &x, &mut y, 2).is_err());
        assert!(parallel_spmv(&a, &[1.0], 2).is_err());
    }

    #[test]
    fn norms_and_dot() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn block_dots_and_gram_match_the_naive_cross_products() {
        // 3 components, 2 columns, interleaved u[i * nrhs + q].
        let nrhs = 2;
        let u = vec![1.0, 2.0, 3.0, -1.0, 0.5, 4.0];
        let v = vec![2.0, 1.0, -1.0, 3.0, 1.5, -2.0];
        let naive = |a: &[f64], b: &[f64], j: usize, q: usize| -> f64 {
            (0..3).map(|i| a[i * nrhs + j] * b[i * nrhs + q]).sum()
        };
        let d = block_dots(&u, &v, nrhs).unwrap();
        for j in 0..nrhs {
            for q in 0..nrhs {
                assert!((d[j * nrhs + q] - naive(&u, &v, j, q)).abs() < 1e-14);
            }
        }
        // Gram against a symmetric image: ap = u (any equal pair is
        // symmetric enough to check the mirror).
        let g = block_gram(&u, &u, nrhs).unwrap();
        for j in 0..nrhs {
            for q in 0..nrhs {
                assert!((g[j * nrhs + q] - naive(&u, &u, j, q)).abs() < 1e-14);
                assert_eq!(g[j * nrhs + q], g[q * nrhs + j], "gram must be symmetric");
            }
        }
        // Dimension checks.
        let mut out = vec![0.0; 3];
        assert!(block_dots_into(&u, &v, nrhs, &mut out).is_err());
        assert!(block_dots(&u, &v[..4], nrhs).is_err());
        assert!(block_gram(&u[..5], &v[..5], nrhs).is_err());
    }

    #[test]
    fn small_cholesky_solves_an_spd_system() {
        // W = [[4,2,0],[2,5,1],[0,1,3]] (SPD), two right-hand sides.
        let mut w = vec![4.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0];
        let x_true = vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]; // m×k, k=2
        let mut b = vec![0.0; 6];
        for j in 0..3 {
            for q in 0..2 {
                b[j * 2 + q] = (0..3).map(|c| w[j * 3 + c] * x_true[c * 2 + q]).sum();
            }
        }
        let mut retained = vec![false; 3];
        small_cholesky_solve(&mut w, 3, &mut b, 2, 1e-12, &mut retained).unwrap();
        assert!(retained.iter().all(|&r| r));
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn small_cholesky_drops_dependent_and_zero_columns() {
        // Column 1 duplicates column 0 (exactly dependent), column 2 is a
        // zero direction (not in the basis): both must be dropped, and the
        // retained 1×1 system still solves exactly.
        let mut w = vec![2.0, 2.0, 0.0, 2.0, 2.0, 0.0, 0.0, 0.0, 0.0];
        let mut b = vec![6.0, 6.0, 0.0];
        let mut retained = vec![true; 3];
        small_cholesky_solve(&mut w, 3, &mut b, 1, 1e-12, &mut retained).unwrap();
        assert_eq!(retained, vec![true, false, false]);
        assert!((b[0] - 3.0).abs() < 1e-14);
        assert_eq!(b[1], 0.0);
        assert_eq!(b[2], 0.0);
        // A NaN pivot is dropped, never propagated into the solution.
        let mut w = vec![f64::NAN, 0.0, 0.0, 1.0];
        let mut b = vec![5.0, 2.0];
        let mut retained = vec![true; 2];
        small_cholesky_solve(&mut w, 2, &mut b, 1, 1e-12, &mut retained).unwrap();
        assert!(b.iter().all(|v| v.is_finite()));
        assert!(!retained[0]);
        // Dimension checks.
        let mut w = vec![1.0; 4];
        let mut b = vec![1.0; 3];
        let mut mask = vec![false; 2];
        assert!(small_cholesky_solve(&mut w, 2, &mut b, 1, 1e-12, &mut mask).is_err());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let l = small_l();
        let x = vec![1.0, 2.0, 3.0];
        let b = manufacture_rhs(&l, &x).unwrap();
        let x_solved = l.solve_seq(&b).unwrap();
        assert!(triangular_residual(&l, &x_solved, &b).unwrap() < 1e-12);
        assert!(relative_error_inf(&x_solved, &x) < 1e-12);
    }

    #[test]
    fn residual_detects_wrong_solution() {
        let l = small_l();
        let b = vec![1.0, 1.0, 1.0];
        let wrong = vec![10.0, 10.0, 10.0];
        assert!(triangular_residual(&l, &wrong, &b).unwrap() > 1.0);
    }
}
