//! Vector and matrix–vector helpers shared across the workspace: SpMV,
//! norms, residuals, and right-hand-side manufacturing.

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::triangular::LowerTriangularCsr;
use crate::Result;

/// Sparse matrix–vector product `y = A x`.
pub fn spmv(a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>> {
    if x.len() != a.ncols() {
        return Err(MatrixError::DimensionMismatch(format!(
            "x has length {}, expected {}",
            x.len(),
            a.ncols()
        )));
    }
    let mut y = vec![0.0; a.nrows()];
    spmv_into(a, x, &mut y)?;
    Ok(y)
}

/// Sparse matrix–vector product into a caller-provided buffer.
pub fn spmv_into(a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Result<()> {
    if x.len() != a.ncols() || y.len() != a.nrows() {
        return Err(MatrixError::DimensionMismatch(
            "x/y lengths must match the matrix dimensions".into(),
        ));
    }
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_values(r)) {
            acc += v * x[c];
        }
        *yr = acc;
    }
    Ok(())
}

/// Sparse matrix–vector product `y = A x` across `threads` scoped OS
/// threads, each owning a contiguous block of rows (and the matching
/// disjoint slice of `y`).
///
/// This is the dependency-free standalone variant — it spawns threads per
/// call, so it suits one-off products on large matrices. Hot loops that
/// already hold a worker pool should prefer `ParallelSolver::spmv_into` in
/// `sts-core`, which reuses pinned workers and allocates nothing.
pub fn parallel_spmv(a: &CsrMatrix, x: &[f64], threads: usize) -> Result<Vec<f64>> {
    let mut y = vec![0.0; a.nrows()];
    parallel_spmv_into(a, x, &mut y, threads)?;
    Ok(y)
}

/// [`parallel_spmv`] into a caller-provided buffer.
pub fn parallel_spmv_into(a: &CsrMatrix, x: &[f64], y: &mut [f64], threads: usize) -> Result<()> {
    if x.len() != a.ncols() || y.len() != a.nrows() {
        return Err(MatrixError::DimensionMismatch(
            "x/y lengths must match the matrix dimensions".into(),
        ));
    }
    let n = a.nrows();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return spmv_into(a, x, y);
    }
    std::thread::scope(|scope| {
        let mut rest = y;
        for t in 0..threads {
            let start = t * n / threads;
            let end = (t + 1) * n / threads;
            let (mine, tail) = rest.split_at_mut(end - start);
            rest = tail;
            scope.spawn(move || {
                for (r, yr) in (start..end).zip(mine) {
                    let mut acc = 0.0;
                    for (&c, &v) in a.row_cols(r).iter().zip(a.row_values(r)) {
                        acc += v * x[c];
                    }
                    *yr = acc;
                }
            });
        }
    });
    Ok(())
}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm of a vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (axpy).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Residual `||L x - b||₂` of a candidate triangular solution.
pub fn triangular_residual(l: &LowerTriangularCsr, x: &[f64], b: &[f64]) -> Result<f64> {
    let lx = l.multiply(x)?;
    if b.len() != lx.len() {
        return Err(MatrixError::DimensionMismatch(
            "b has the wrong length".into(),
        ));
    }
    Ok(norm2(
        &lx.iter().zip(b).map(|(a, b)| a - b).collect::<Vec<_>>(),
    ))
}

/// Relative infinity-norm error between two vectors, `||a-b||∞ / max(1, ||b||∞)`.
pub fn relative_error_inf(a: &[f64], b: &[f64]) -> f64 {
    let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    norm_inf(&diff) / norm_inf(b).max(1.0)
}

/// Manufactures a right-hand side `b = L x*` for a known solution `x*`, which
/// the benchmark harnesses use so every method can be verified bit-for-bit
/// against the same reference.
pub fn manufacture_rhs(l: &LowerTriangularCsr, x_star: &[f64]) -> Result<Vec<f64>> {
    l.multiply(x_star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small_l() -> LowerTriangularCsr {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 1, -2.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        LowerTriangularCsr::from_csr(&coo.to_csr()).unwrap()
    }

    #[test]
    fn spmv_identity_is_noop() {
        let id = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(spmv(&id, &x).unwrap(), x);
    }

    #[test]
    fn spmv_rejects_bad_lengths() {
        let id = CsrMatrix::identity(4);
        assert!(spmv(&id, &[1.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(spmv_into(&id, &[1.0; 4], &mut y).is_err());
    }

    #[test]
    fn parallel_spmv_matches_the_sequential_product() {
        let l = small_l();
        let a = l.to_csr().plus_transpose();
        let x = vec![1.0, -2.0, 3.0];
        let expected = spmv(&a, &x).unwrap();
        for threads in [1, 2, 4, 9] {
            let y = parallel_spmv(&a, &x, threads).unwrap();
            assert_eq!(y, expected, "{threads} threads diverged");
        }
        let mut y = vec![0.0; 2];
        assert!(parallel_spmv_into(&a, &x, &mut y, 2).is_err());
        assert!(parallel_spmv(&a, &[1.0], 2).is_err());
    }

    #[test]
    fn norms_and_dot() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let l = small_l();
        let x = vec![1.0, 2.0, 3.0];
        let b = manufacture_rhs(&l, &x).unwrap();
        let x_solved = l.solve_seq(&b).unwrap();
        assert!(triangular_residual(&l, &x_solved, &b).unwrap() < 1e-12);
        assert!(relative_error_inf(&x_solved, &x) < 1e-12);
    }

    #[test]
    fn residual_detects_wrong_solution() {
        let l = small_l();
        let b = vec![1.0, 1.0, 1.0];
        let wrong = vec![10.0, 10.0, 10.0];
        assert!(triangular_residual(&l, &wrong, &b).unwrap() > 1.0);
    }
}
