//! The Table-1 analogue test suite.
//!
//! The paper's evaluation (Table 1) uses twelve symmetric matrices from the
//! University of Florida collection. This module reproduces that suite with
//! synthetic matrices of the same structural class (see
//! [`generators`]) at a configurable [`SuiteScale`], so the
//! whole evaluation pipeline runs on a laptop and in CI while preserving the
//! row-density classes that drive the paper's results.

use serde::Serialize;

use crate::csr::CsrMatrix;
use crate::generators;
use crate::triangular::LowerTriangularCsr;
use crate::Result;

/// Identifier of a suite entry, mirroring the labels of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SuiteId {
    /// `ldoor` analogue (very dense rows, ~45 nnz/row).
    G1,
    /// `rgg_n_2_21_s0` analogue (random geometric graph, ~15 nnz/row).
    D1,
    /// `nlpkkt160` analogue (3-D 27-point stencil, ~27 nnz/row).
    S1,
    /// `delaunay_n23` analogue (planar triangulation, ~7 nnz/row).
    D2,
    /// `road_central` analogue (~3.4 nnz/row).
    D3,
    /// `hugetrace-00020` analogue (~4 nnz/row).
    D4,
    /// `delaunay_n24` analogue (~7 nnz/row).
    D5,
    /// `hugebubbles-00000` analogue (~4 nnz/row).
    D6,
    /// `hugebubbles-00010` analogue (~4 nnz/row).
    D7,
    /// `hugebubbles-00020` analogue (~4 nnz/row).
    D8,
    /// `road_usa` analogue (~3.4 nnz/row).
    D9,
    /// `europe_osm` analogue (~3.1 nnz/row).
    D10,
}

impl SuiteId {
    /// All twelve identifiers in Table-1 order.
    pub fn all() -> [SuiteId; 12] {
        use SuiteId::*;
        [G1, D1, S1, D2, D3, D4, D5, D6, D7, D8, D9, D10]
    }

    /// The short label used in the paper's figures (G1, D1, S1, D2, …).
    pub fn label(&self) -> &'static str {
        match self {
            SuiteId::G1 => "G1",
            SuiteId::D1 => "D1",
            SuiteId::S1 => "S1",
            SuiteId::D2 => "D2",
            SuiteId::D3 => "D3",
            SuiteId::D4 => "D4",
            SuiteId::D5 => "D5",
            SuiteId::D6 => "D6",
            SuiteId::D7 => "D7",
            SuiteId::D8 => "D8",
            SuiteId::D9 => "D9",
            SuiteId::D10 => "D10",
        }
    }

    /// The name of the UF-collection matrix this entry stands in for.
    pub fn paper_name(&self) -> &'static str {
        match self {
            SuiteId::G1 => "ldoor",
            SuiteId::D1 => "rgg_n_2_21_s0",
            SuiteId::S1 => "nlpkkt160",
            SuiteId::D2 => "delaunay_n23",
            SuiteId::D3 => "road_central",
            SuiteId::D4 => "hugetrace-00020",
            SuiteId::D5 => "delaunay_n24",
            SuiteId::D6 => "hugebubbles-00000",
            SuiteId::D7 => "hugebubbles-00010",
            SuiteId::D8 => "hugebubbles-00020",
            SuiteId::D9 => "road_usa",
            SuiteId::D10 => "europe_osm",
        }
    }

    /// The row density (nnz/n) reported for the original matrix in Table 1.
    pub fn paper_row_density(&self) -> f64 {
        match self {
            SuiteId::G1 => 44.63,
            SuiteId::D1 => 14.82,
            SuiteId::S1 => 27.01,
            SuiteId::D2 => 7.00,
            SuiteId::D3 => 3.41,
            SuiteId::D4 => 4.00,
            SuiteId::D5 => 7.00,
            SuiteId::D6 => 4.00,
            SuiteId::D7 => 4.00,
            SuiteId::D8 => 4.00,
            SuiteId::D9 => 3.41,
            SuiteId::D10 => 3.12,
        }
    }

    /// The dimension reported for the original matrix in Table 1.
    pub fn paper_n(&self) -> usize {
        match self {
            SuiteId::G1 => 952_203,
            SuiteId::D1 => 2_097_152,
            SuiteId::S1 => 8_345_600,
            SuiteId::D2 => 8_388_608,
            SuiteId::D3 => 14_081_816,
            SuiteId::D4 => 16_002_413,
            SuiteId::D5 => 16_777_216,
            SuiteId::D6 => 18_318_143,
            SuiteId::D7 => 19_458_087,
            SuiteId::D8 => 21_198_119,
            SuiteId::D9 => 23_947_347,
            SuiteId::D10 => 50_912_018,
        }
    }
}

/// Size of the generated suite. The structural classes are identical across
/// scales; only the matrix dimensions change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SuiteScale {
    /// A few thousand rows per matrix — unit/integration tests.
    Tiny,
    /// Tens of thousands of rows — the default for the figure harnesses.
    Small,
    /// Low hundreds of thousands of rows — closer to the paper, slower.
    Medium,
}

impl SuiteScale {
    /// Linear multiplier applied to each generator's base grid dimensions.
    pub fn factor(&self) -> usize {
        match self {
            SuiteScale::Tiny => 1,
            SuiteScale::Small => 3,
            SuiteScale::Medium => 8,
        }
    }
}

/// One generated matrix of the suite together with its Table-1 metadata.
#[derive(Debug, Clone)]
pub struct SuiteMatrix {
    /// Which Table-1 entry this matrix stands in for.
    pub id: SuiteId,
    /// The symmetric matrix `A` whose graph is `G1` (lower triangle = `L`).
    pub symmetric: CsrMatrix,
}

impl SuiteMatrix {
    /// The lower-triangular operand `L` for the solvers.
    pub fn lower(&self) -> Result<LowerTriangularCsr> {
        LowerTriangularCsr::from_lower_triangle_of(&self.symmetric)
    }

    /// Dimension of the generated matrix.
    pub fn n(&self) -> usize {
        self.symmetric.nrows()
    }

    /// Stored nonzeros of the generated symmetric matrix.
    pub fn nnz(&self) -> usize {
        self.symmetric.nnz()
    }

    /// Row density of the generated matrix, comparable against
    /// [`SuiteId::paper_row_density`].
    pub fn row_density(&self) -> f64 {
        self.symmetric.row_density()
    }
}

/// The full twelve-matrix suite.
#[derive(Debug, Clone)]
pub struct TestSuite {
    /// Scale the suite was generated at.
    pub scale: SuiteScale,
    /// The matrices, in Table-1 order.
    pub matrices: Vec<SuiteMatrix>,
}

/// Generates a single suite entry at the requested scale.
pub fn generate(id: SuiteId, scale: SuiteScale) -> Result<SuiteMatrix> {
    let f = scale.factor();
    let symmetric = match id {
        // ldoor: ~45 nnz/row. 9-point 2-D stencil block-expanded by 5:
        // 8 neighbours * 5 + 4 intra-block + 1 diagonal = 45.
        SuiteId::G1 => {
            let base = generators::grid2d_9point(14 * f, 14 * f)?;
            generators::block_expand(&base, 5)?
        }
        // random geometric graph, target ~14 neighbours.
        SuiteId::D1 => generators::random_geometric(4_000 * f * f, 14.0, 21)?,
        // 3-D 27-point stencil.
        SuiteId::S1 => generators::grid3d_27point(10 * f, 10 * f, 10 * f)?,
        // planar triangulations.
        SuiteId::D2 => generators::triangulated_grid(64 * f, 64 * f, 23)?,
        SuiteId::D5 => generators::triangulated_grid(72 * f, 72 * f, 24)?,
        // road networks (sparser).
        SuiteId::D3 => generators::road_network(72 * f, 72 * f, 0.60, 3)?,
        SuiteId::D9 => generators::road_network(76 * f, 76 * f, 0.60, 9)?,
        SuiteId::D10 => generators::road_network(96 * f, 96 * f, 0.50, 10)?,
        // trace / bubble meshes (~4 nnz/row): grid with mild thinning.
        SuiteId::D4 => generators::road_network(70 * f, 70 * f, 0.78, 4)?,
        SuiteId::D6 => generators::road_network(74 * f, 74 * f, 0.78, 6)?,
        SuiteId::D7 => generators::road_network(75 * f, 75 * f, 0.78, 7)?,
        SuiteId::D8 => generators::road_network(78 * f, 78 * f, 0.78, 8)?,
    };
    Ok(SuiteMatrix { id, symmetric })
}

impl TestSuite {
    /// Generates the full twelve-matrix suite at the requested scale.
    pub fn generate(scale: SuiteScale) -> Result<TestSuite> {
        let mut matrices = Vec::with_capacity(12);
        for id in SuiteId::all() {
            matrices.push(generate(id, scale)?);
        }
        Ok(TestSuite { scale, matrices })
    }

    /// Generates a subset of the suite (used by fast-running tests).
    pub fn generate_subset(scale: SuiteScale, ids: &[SuiteId]) -> Result<TestSuite> {
        let mut matrices = Vec::with_capacity(ids.len());
        for &id in ids {
            matrices.push(generate(id, scale)?);
        }
        Ok(TestSuite { scale, matrices })
    }

    /// Looks a matrix up by its Table-1 label.
    pub fn by_label(&self, label: &str) -> Option<&SuiteMatrix> {
        self.matrices.iter().find(|m| m.id.label() == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_ids_are_distinct() {
        let ids = SuiteId::all();
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn tiny_suite_generates_all_matrices() {
        let suite = TestSuite::generate(SuiteScale::Tiny).unwrap();
        assert_eq!(suite.matrices.len(), 12);
        for m in &suite.matrices {
            assert!(m.n() > 100, "{} too small: {}", m.id.label(), m.n());
            assert!(
                m.symmetric.is_symmetric(1e-12),
                "{} not symmetric",
                m.id.label()
            );
            let l = m.lower().unwrap();
            assert_eq!(l.n(), m.n());
        }
    }

    #[test]
    fn row_density_tracks_paper_class() {
        let suite = TestSuite::generate(SuiteScale::Tiny).unwrap();
        for m in &suite.matrices {
            let got = m.row_density();
            let want = m.id.paper_row_density();
            // Within a factor of ~1.7 of the paper's density: the *class*
            // (sparse path-like vs. planar vs. dense FEM) is what matters.
            assert!(
                got > want / 1.7 && got < want * 1.7,
                "{}: generated density {got:.2} vs paper {want:.2}",
                m.id.label()
            );
        }
    }

    #[test]
    fn density_ordering_matches_table1() {
        // G1 (ldoor class) must be the densest, road/osm matrices the sparsest.
        let suite = TestSuite::generate(SuiteScale::Tiny).unwrap();
        let density = |label: &str| {
            suite
                .by_label(label)
                .map(|m| m.row_density())
                .unwrap_or(f64::NAN)
        };
        assert!(density("G1") > density("S1"));
        assert!(density("S1") > density("D1"));
        assert!(density("D1") > density("D2"));
        assert!(density("D2") > density("D10"));
    }

    #[test]
    fn subset_generation_respects_order() {
        let suite =
            TestSuite::generate_subset(SuiteScale::Tiny, &[SuiteId::D3, SuiteId::G1]).unwrap();
        assert_eq!(suite.matrices.len(), 2);
        assert_eq!(suite.matrices[0].id, SuiteId::D3);
        assert_eq!(suite.matrices[1].id, SuiteId::G1);
    }

    #[test]
    fn by_label_finds_entries() {
        let suite = TestSuite::generate_subset(SuiteScale::Tiny, &[SuiteId::S1]).unwrap();
        assert!(suite.by_label("S1").is_some());
        assert!(suite.by_label("G1").is_none());
    }

    #[test]
    fn paper_metadata_is_consistent() {
        for id in SuiteId::all() {
            assert!(id.paper_n() > 900_000);
            assert!(id.paper_row_density() >= 3.0);
            assert!(!id.paper_name().is_empty());
        }
    }

    #[test]
    fn suite_lower_operands_are_solvable() {
        let suite =
            TestSuite::generate_subset(SuiteScale::Tiny, &[SuiteId::G1, SuiteId::D3, SuiteId::S1])
                .unwrap();
        for m in &suite.matrices {
            let l = m.lower().unwrap();
            let x_true = vec![2.0; l.n()];
            let b = l.multiply(&x_true).unwrap();
            let x = l.solve_seq(&b).unwrap();
            for (a, b) in x.iter().zip(&x_true) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
