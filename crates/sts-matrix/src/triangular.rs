//! Lower-triangular matrix storage and the sequential reference solve.
//!
//! [`LowerTriangularCsr`] stores the operand `L` of `L x = b` the way the
//! paper's Algorithm 1 consumes it: row-wise, with the strictly-lower entries
//! of each row first (columns sorted increasingly) and the diagonal entry
//! stored *last* in the row, so the inner kernel is
//!
//! ```text
//! temp = Σ_{j in row i, j < i} L[i,j] * x[j]
//! x[i] = (b[i] - temp) / L[i,i]
//! ```
//!
//! All higher-level solvers in `sts-core` permute and regroup this structure
//! but keep the per-row layout identical, so the innermost loop is shared.

use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::Result;

/// A sparse lower-triangular matrix with a guaranteed nonzero diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerTriangularCsr {
    n: usize,
    /// Row pointers into `col_idx`/`values` (`index1` in the paper).
    row_ptr: Vec<usize>,
    /// Column indices; within a row the strictly-lower columns come first in
    /// increasing order, followed by the diagonal column (== row index).
    col_idx: Vec<usize>,
    /// Values, laid out parallel to `col_idx`.
    values: Vec<f64>,
}

impl LowerTriangularCsr {
    /// Builds a lower-triangular matrix from a general CSR matrix.
    ///
    /// Every entry must satisfy `col <= row`; rows missing a diagonal entry
    /// (or carrying a zero diagonal) are rejected because the triangular
    /// solve would divide by zero.
    pub fn from_csr(csr: &CsrMatrix) -> Result<Self> {
        if csr.nrows() != csr.ncols() {
            return Err(MatrixError::DimensionMismatch(format!(
                "lower-triangular matrix must be square, got {}x{}",
                csr.nrows(),
                csr.ncols()
            )));
        }
        let n = csr.nrows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(csr.nnz());
        let mut values = Vec::with_capacity(csr.nnz());
        row_ptr.push(0);
        for r in 0..n {
            let mut diag: Option<f64> = None;
            for (&c, &v) in csr.row_cols(r).iter().zip(csr.row_values(r)) {
                if c > r {
                    return Err(MatrixError::NotLowerTriangular { row: r, col: c });
                }
                if c == r {
                    diag = Some(v);
                } else {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            match diag {
                Some(d) if d != 0.0 => {
                    col_idx.push(r);
                    values.push(d);
                }
                _ => return Err(MatrixError::SingularDiagonal { row: r }),
            }
            row_ptr.push(col_idx.len());
        }
        Ok(LowerTriangularCsr {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Extracts the lower triangle of a general (e.g. symmetric) matrix and
    /// builds the triangular operand from it.
    pub fn from_lower_triangle_of(csr: &CsrMatrix) -> Result<Self> {
        Self::from_csr(&csr.lower_triangle())
    }

    /// Dimension `n` of the square matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries (strictly-lower + diagonal).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average row density `nnz / n`.
    pub fn row_density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n as f64
        }
    }

    /// Row pointer array (`index1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (`subscript1`).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array (`valueL`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The strictly-lower column indices of row `r` (excludes the diagonal).
    pub fn row_off_diag_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1] - 1]
    }

    /// The strictly-lower values of row `r` (excludes the diagonal).
    pub fn row_off_diag_values(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1] - 1]
    }

    /// The diagonal value of row `r`.
    pub fn diag(&self, r: usize) -> f64 {
        self.values[self.row_ptr[r + 1] - 1]
    }

    /// Number of stored entries in row `r` including the diagonal.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Solves `L x = b` sequentially (forward substitution) and returns `x`.
    pub fn solve_seq(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch(format!(
                "b has length {} but L is {}x{}",
                b.len(),
                self.n,
                self.n
            )));
        }
        let mut x = vec![0.0; self.n];
        self.solve_seq_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `L x = b` sequentially into a caller-provided buffer.
    pub fn solve_seq_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        if b.len() != self.n || x.len() != self.n {
            return Err(MatrixError::DimensionMismatch(
                "b and x must both have length n".into(),
            ));
        }
        for i in 0..self.n {
            let start = self.row_ptr[i];
            let end = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in start..end - 1 {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            x[i] = (b[i] - acc) / self.values[end - 1];
        }
        Ok(())
    }

    /// Solves the transposed system `Lᵀ x = b` (an upper-triangular solve)
    /// sequentially and returns `x`.
    ///
    /// `L` is stored by rows, which is column-major storage for `Lᵀ`, so the
    /// solve uses the classic column sweep: once `x[i]` is known, its
    /// contribution is scattered into the remaining right-hand side entries.
    /// Together with [`LowerTriangularCsr::solve_seq`] this provides the
    /// forward/backward pair needed by symmetric Gauss–Seidel and incomplete
    /// Cholesky preconditioners.
    pub fn solve_transpose_seq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n];
        self.solve_transpose_seq_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `Lᵀ x = b` sequentially into a caller-provided buffer with no
    /// heap allocation: `x` doubles as the running right-hand side of the
    /// column sweep (each finalized `x[i]` scatters its update into the
    /// still-pending entries below it in the buffer).
    pub fn solve_transpose_seq_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        if b.len() != self.n || x.len() != self.n {
            return Err(MatrixError::DimensionMismatch(format!(
                "b and x must both have length {} but got {} and {}",
                self.n,
                b.len(),
                x.len()
            )));
        }
        x.copy_from_slice(b);
        for i in (0..self.n).rev() {
            let start = self.row_ptr[i];
            let end = self.row_ptr[i + 1];
            let xi = x[i] / self.values[end - 1];
            x[i] = xi;
            for k in start..end - 1 {
                x[self.col_idx[k]] -= self.values[k] * xi;
            }
        }
        Ok(())
    }

    /// Computes `y = Lᵀ x` (used to manufacture right-hand sides for the
    /// transposed solve).
    pub fn multiply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(MatrixError::DimensionMismatch(format!(
                "x has length {} but L is {}x{}",
                x.len(),
                self.n,
                self.n
            )));
        }
        let mut y = vec![0.0; self.n];
        for (i, &xi) in x.iter().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k]] += self.values[k] * xi;
            }
        }
        Ok(y)
    }

    /// Computes `y = L x` (used to manufacture right-hand sides and to verify
    /// solutions via the residual).
    pub fn multiply(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(MatrixError::DimensionMismatch(format!(
                "x has length {} but L is {}x{}",
                x.len(),
                self.n,
                self.n
            )));
        }
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Converts back to a general [`CsrMatrix`] with columns fully sorted
    /// (diagonal in its natural position).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for r in 0..self.n {
            for (&c, &v) in self
                .row_off_diag_cols(r)
                .iter()
                .zip(self.row_off_diag_values(r))
            {
                col_idx.push(c);
                values.push(v);
            }
            col_idx.push(r);
            values.push(self.diag(r));
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_unchecked(self.n, self.n, row_ptr, col_idx, values)
    }

    /// Returns the symmetric pattern matrix `A = L + Lᵀ` whose graph `G1`
    /// drives the reorderings of the paper.
    pub fn symmetrized(&self) -> CsrMatrix {
        self.to_csr().plus_transpose()
    }

    /// Applies a symmetric permutation to `L`: rows and columns are relabelled
    /// by `perm` (new index → old index) and the result is re-extracted as a
    /// lower-triangular matrix of the permuted symmetric pattern.
    ///
    /// This matches the paper's use of reorderings: permuting `A = L + Lᵀ`
    /// symmetrically and taking the lower triangle of the result preserves
    /// the solvability of the system while changing the dependency structure.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<LowerTriangularCsr> {
        let sym = self.symmetrized().permute_symmetric(perm)?;
        LowerTriangularCsr::from_lower_triangle_of(&sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// The 9x9 example from Figure 1 of the paper (pattern only; values are
    /// chosen to make L diagonally dominant).
    pub(crate) fn paper_example() -> LowerTriangularCsr {
        // Lower-triangular pattern of Figure 1 (1-based in the paper):
        // row: columns (strictly lower) — diag always present
        // 1: -       2: -      3: 1      4: 2     5: -
        // 6: 3,4     7: 4,5,6  8: 5,7    9: 1,2,8
        let pattern: &[(usize, &[usize])] = &[
            (0, &[]),
            (1, &[]),
            (2, &[0]),
            (3, &[1]),
            (4, &[]),
            (5, &[2, 3]),
            (6, &[3, 4, 5]),
            (7, &[4, 6]),
            (8, &[0, 1, 7]),
        ];
        let mut coo = CooMatrix::new(9, 9);
        for &(r, cols) in pattern {
            for &c in cols {
                coo.push(r, c, -1.0).unwrap();
            }
            coo.push(r, r, 4.0).unwrap();
        }
        LowerTriangularCsr::from_csr(&coo.to_csr()).unwrap()
    }

    #[test]
    fn rejects_upper_triangular_entries() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let e = LowerTriangularCsr::from_csr(&coo.to_csr());
        assert!(matches!(
            e,
            Err(MatrixError::NotLowerTriangular { row: 0, col: 1 })
        ));
    }

    #[test]
    fn rejects_missing_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let e = LowerTriangularCsr::from_csr(&coo.to_csr());
        assert!(matches!(e, Err(MatrixError::SingularDiagonal { row: 1 })));
    }

    #[test]
    fn rejects_zero_diagonal() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 0.0).unwrap();
        let e = LowerTriangularCsr::from_csr(&coo.to_csr());
        assert!(matches!(e, Err(MatrixError::SingularDiagonal { row: 0 })));
    }

    #[test]
    fn rejects_rectangular_matrices() {
        let coo = CooMatrix::new(2, 3);
        let e = LowerTriangularCsr::from_csr(&coo.to_csr());
        assert!(matches!(e, Err(MatrixError::DimensionMismatch(_))));
    }

    #[test]
    fn diagonal_is_stored_last_per_row() {
        let l = paper_example();
        for r in 0..l.n() {
            let end = l.row_ptr()[r + 1];
            assert_eq!(
                l.col_idx()[end - 1],
                r,
                "row {r} must end with its diagonal"
            );
            // off-diagonal columns strictly increasing and < r
            let off = l.row_off_diag_cols(r);
            for w in off.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(off.iter().all(|&c| c < r));
        }
    }

    #[test]
    fn solve_seq_identity() {
        let l = LowerTriangularCsr::from_csr(&CsrMatrix::identity(5)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(l.solve_seq(&b).unwrap(), b);
    }

    #[test]
    fn solve_seq_matches_multiply_roundtrip() {
        let l = paper_example();
        let x_true: Vec<f64> = (0..l.n()).map(|i| (i as f64 + 1.0) * 0.5).collect();
        let b = l.multiply(&x_true).unwrap();
        let x = l.solve_seq(&b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_rejects_wrong_length_rhs() {
        let l = paper_example();
        assert!(l.solve_seq(&[1.0; 3]).is_err());
        assert!(l.multiply(&[1.0; 3]).is_err());
        assert!(l.solve_transpose_seq(&[1.0; 3]).is_err());
        assert!(l.multiply_transpose(&[1.0; 3]).is_err());
    }

    #[test]
    fn transpose_solve_inverts_transpose_multiply() {
        let l = paper_example();
        let x_true: Vec<f64> = (0..l.n()).map(|i| 1.0 - 0.1 * i as f64).collect();
        let b = l.multiply_transpose(&x_true).unwrap();
        let x = l.solve_transpose_seq(&b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_solve_matches_dense_upper_solve() {
        // Forward then backward solve applied to L Lᵀ x = b reproduces x.
        let l = paper_example();
        let x_true = vec![2.0; l.n()];
        let b = l.multiply(&l.multiply_transpose(&x_true).unwrap()).unwrap();
        let y = l.solve_seq(&b).unwrap();
        let x = l.solve_transpose_seq(&y).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_solve_on_identity_is_a_noop() {
        let l = LowerTriangularCsr::from_csr(&CsrMatrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(l.solve_transpose_seq(&b).unwrap(), b);
    }

    #[test]
    fn to_csr_roundtrip_preserves_entries() {
        let l = paper_example();
        let csr = l.to_csr();
        let l2 = LowerTriangularCsr::from_csr(&csr).unwrap();
        assert_eq!(l, l2);
    }

    #[test]
    fn symmetrized_matches_figure_one() {
        let l = paper_example();
        let a = l.symmetrized();
        assert!(a.is_symmetric(1e-12));
        // Figure 1: vertex 9 (index 8) is adjacent to 1, 2 and 8 (indices 0, 1, 7).
        let neighbors: Vec<usize> = a.row_cols(8).iter().copied().filter(|&c| c != 8).collect();
        assert_eq!(neighbors, vec![0, 1, 7]);
    }

    #[test]
    fn permute_symmetric_preserves_solution_up_to_relabelling() {
        let l = paper_example();
        let n = l.n();
        // reverse permutation
        let perm: Vec<usize> = (0..n).rev().collect();
        let lp = l.permute_symmetric(&perm).unwrap();
        assert_eq!(lp.n(), n);
        assert_eq!(lp.nnz(), l.nnz());
        // The permuted matrix must still be solvable and well formed.
        let ones = vec![1.0; n];
        let b = lp.multiply(&ones).unwrap();
        let x = lp.solve_seq(&b).unwrap();
        for v in x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
