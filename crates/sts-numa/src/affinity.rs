//! Thread-to-core pinning.
//!
//! The paper pins OpenMP threads with `KMP_AFFINITY=compact`. The worker pool
//! in [`pool`](crate::pool) pins each worker to a core id taken from
//! [`NumaTopology::compact_core_order`](crate::topology::NumaTopology::compact_core_order)
//! using `sched_setaffinity` on Linux. On other platforms (or when the host
//! has fewer cores than requested) pinning silently degrades to a no-op so the
//! library stays portable.

/// Outcome of a pinning attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinResult {
    /// The calling thread is now pinned to the requested core.
    Pinned,
    /// Pinning is unsupported on this platform or the core does not exist;
    /// the thread keeps its default affinity.
    Unsupported,
}

/// Number of logical cores available to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

/// Pins the calling thread to `core`. Returns [`PinResult::Unsupported`]
/// rather than failing when the platform cannot pin or the core id is out of
/// range, because a reproduction run on a laptop should still work unpinned.
pub fn pin_current_thread(core: usize) -> PinResult {
    if core >= available_cores() {
        return PinResult::Unsupported;
    }
    pin_impl(core)
}

#[cfg(target_os = "linux")]
fn pin_impl(core: usize) -> PinResult {
    // Declared directly instead of through the libc crate (unavailable in the
    // offline build environment). `cpu_set_t` is glibc's 1024-bit CPU mask.
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }

    if core >= 16 * 64 {
        return PinResult::Unsupported;
    }
    let mut set = CpuSet { bits: [0; 16] };
    set.bits[core / 64] |= 1u64 << (core % 64);
    // SAFETY: the mask is a plain bitmask we own on the stack and the kernel
    // reads exactly `size_of::<CpuSet>()` bytes from it; pid 0 targets the
    // calling thread.
    let rc = unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) };
    if rc == 0 {
        PinResult::Pinned
    } else {
        PinResult::Unsupported
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_core: usize) -> PinResult {
    PinResult::Unsupported
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pinning_to_core_zero_does_not_panic() {
        // Either outcome is acceptable; the call must simply not fail.
        let r = pin_current_thread(0);
        assert!(matches!(r, PinResult::Pinned | PinResult::Unsupported));
    }

    #[test]
    fn pinning_out_of_range_reports_unsupported() {
        assert_eq!(pin_current_thread(usize::MAX), PinResult::Unsupported);
    }

    #[test]
    fn pinned_thread_still_computes() {
        let handle = std::thread::spawn(|| {
            let _ = pin_current_thread(0);
            (0..1000u64).sum::<u64>()
        });
        assert_eq!(handle.join().unwrap(), 499_500);
    }
}
