//! A centralized sense-reversing spin barrier.
//!
//! Sparse triangular solution synchronises after every pack (or level); for
//! level-set orderings that can be thousands of barriers per solve, so the
//! barrier must be cheap. This is the classic two-phase sense-reversing
//! design: each arriving thread decrements a counter; the last one flips the
//! global sense and resets the counter; everybody else spins (with a bounded
//! number of `spin_loop` hints before yielding) on the sense flip.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable spin barrier for a fixed set of participants.
#[derive(Debug)]
pub struct SpinBarrier {
    participants: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Creates a barrier for `participants` threads (at least 1).
    pub fn new(participants: usize) -> Self {
        assert!(
            participants >= 1,
            "a barrier needs at least one participant"
        );
        SpinBarrier {
            participants,
            remaining: AtomicUsize::new(participants),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Blocks until all participants have called `wait`. Returns `true` on the
    /// thread that arrived last (the "serial" thread), mirroring
    /// `std::sync::Barrier`.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        // AcqRel: the decrement publishes this thread's writes to the thread
        // that releases the barrier, and the release below publishes them all.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.remaining.store(self.participants, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed or long waits: yield so other workers can
                    // make progress (essential on the single-core CI host).
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_reach_each_phase_before_any_proceeds() {
        let threads = 4;
        let barrier = Arc::new(SpinBarrier::new(threads));
        let counter = Arc::new(AtomicUsize::new(0));
        let phases = if cfg!(miri) { 8 } else { 50 };
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for phase in 0..phases {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // After the barrier every thread must observe that all
                        // increments of this phase happened.
                        assert_eq!(counter.load(Ordering::SeqCst), (phase + 1) * threads);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_thread_is_serial_per_phase() {
        let threads = 3;
        let barrier = Arc::new(SpinBarrier::new(threads));
        let serial_count = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let serial_count = Arc::clone(&serial_count);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        if barrier.wait() {
                            serial_count.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(serial_count.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_is_rejected() {
        let _ = SpinBarrier::new(0);
    }
}
