//! A counter-based epoch gate for pipelined (barrier-fused) pack execution.
//!
//! The split two-phase solver pays two full
//! [`SpinBarrier`](crate::SpinBarrier)-equivalent pool
//! barriers per chained pack, even though phase 1 (the external gather) of
//! pack `p + 1` only depends on packs `≤ p` being *done* — not on every
//! worker having reached the same program point. [`EpochGate`] replaces those
//! barriers with per-stage completion counters and a monotone epoch, so idle
//! workers can run ahead into later stages while stragglers finish:
//!
//! * each stage (pack) declares, up front, how many **phase-1 arrivals**
//!   (static gather chunks) and how many **phase-2 arrivals** (chain tasks)
//!   it will receive;
//! * workers report completed work with [`EpochGate::arrive_phase1`] /
//!   [`EpochGate::arrive_phase2`];
//! * the *"pack p phase-1 done"* flag is [`EpochGate::phase1_drained`] —
//!   true once every phase-1 arrival of the stage has been reported;
//! * the *"pack p done"* flag is the **epoch**: the number of consecutive
//!   leading stages whose arrivals (both phases) have all been reported.
//!   [`EpochGate::is_open`]`(d)` asks whether stages `0..d` are done, which
//!   is exactly the readiness test for a gather chunk whose latest external
//!   read targets pack `d - 1`.
//!
//! # Memory ordering
//!
//! Arrivals decrement their counters with `AcqRel`; successive decrements of
//! one counter form a single release sequence, so a thread that observes a
//! counter at zero with an `Acquire` load synchronises with *every* arriving
//! thread — all writes made before any arrival are visible behind the flag.
//! The epoch is advanced (with a release CAS) only after acquiring such a
//! zero, and epoch waiters use `Acquire` loads, so visibility chains
//! transitively across stages and across whichever threads happened to do the
//! advancing: `is_open(d)` returning `true` happens-after every write made
//! before every arrival of stages `0..d`.
//!
//! Zero-arrival stages (empty packs) complete implicitly: the advance loop
//! walks past them the moment the epoch reaches them (or at construction).
//!
//! # Reuse
//!
//! Within one solve the protocol is monotone: counters only count down and
//! the epoch only moves forward, which keeps the reasoning simple. Callers
//! that solve thousands of times on one structure (preconditioned iterative
//! solvers apply two triangular sweeps per iteration) would otherwise
//! allocate and initialise two counters per pack on every solve, so the gate
//! is *resettable between solves*: [`EpochGate::reset`] takes `&mut self` —
//! exclusive access, so no arrival can race the refill — restores every
//! counter from the arrival counts the gate was built with, rewinds the
//! epoch, and bumps a **generation stamp** ([`EpochGate::generation`]).
//! The stamp lets reuse bugs fail loudly: a caller that caches flag results
//! across a reset observes the generation change, and the stress tests
//! assert each round's flags belong to the round's own generation. The
//! exclusivity requirement is enforced by the borrow checker, not by the
//! protocol: hand the gate back to workers only after `reset` returns.
//!
//! # Poisoning and watchdog deadlines
//!
//! The monotone protocol has one failure mode: an arrival that never comes.
//! A worker that panics (its body is caught by the pool) or stalls leaves its
//! stage's counters above zero, and every peer blocked in [`EpochGate::wait_open`]
//! would spin forever. Two escape hatches close that hole:
//!
//! * **Poisoning** — [`EpochGate::poison`] raises a flag checked by the
//!   bounded waits; a worker that catches a peer's failure (or observes its
//!   own) poisons the gate, and every subsequent
//!   [`EpochGate::wait_open_until`] / [`EpochGate::wait_phase1_drained_until`]
//!   returns [`GateWait::Poisoned`] promptly. The poisoned flag never blocks
//!   arrivals, so already-running workers drain normally.
//! * **Deadlines** — the bounded waits take an absolute [`Instant`] deadline
//!   (the solve-level watchdog) and return [`GateWait::TimedOut`] once it
//!   passes, converting a silent hang behind a stalled worker into a
//!   structured timeout the orchestrator can surface.
//!
//! [`EpochGate::reset`] clears the poison along with the counters, so a
//! poisoned solve does not condemn the structure it ran on.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Spins briefly, then yields: the workers may be oversubscribed (more
/// workers than cores, e.g. the single-core CI host), so unbounded spinning
/// would starve the very thread being waited on.
#[inline]
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Outcome of a bounded gate wait ([`EpochGate::wait_open_until`],
/// [`EpochGate::wait_phase1_drained_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateWait {
    /// The awaited condition (epoch coverage or phase-1 drain) was met.
    Ready,
    /// The gate was poisoned while waiting: a peer worker failed and the
    /// awaited arrivals may never come.
    Poisoned,
    /// The deadline passed before the condition was met.
    TimedOut,
}

/// Per-stage completion counters with a monotone "stages done" epoch; see
/// the module documentation for the protocol.
#[derive(Debug)]
pub struct EpochGate {
    /// Number of consecutive leading stages fully done.
    epoch: AtomicUsize,
    /// Outstanding phase-1 arrivals per stage.
    phase1_remaining: Box<[AtomicUsize]>,
    /// Outstanding arrivals (phase 1 + phase 2) per stage.
    total_remaining: Box<[AtomicUsize]>,
    /// The `(phase-1, phase-2)` arrival counts the gate was built with,
    /// kept so [`EpochGate::reset`] can restore the counters.
    counts: Box<[(usize, usize)]>,
    /// How many times the gate has been reset. Plain (non-atomic) because it
    /// only changes under `&mut self`; readers are synchronised by whatever
    /// handed them the gate.
    generation: usize,
    /// Raised when a participant failed and outstanding arrivals may never
    /// come; cleared by [`EpochGate::reset`].
    poisoned: AtomicBool,
}

impl EpochGate {
    /// Creates a gate over `counts.len()` stages, where `counts[s]` is the
    /// `(phase-1, phase-2)` arrival count stage `s` expects.
    pub fn new(counts: &[(usize, usize)]) -> Self {
        let gate = EpochGate {
            epoch: AtomicUsize::new(0),
            phase1_remaining: counts.iter().map(|&(p1, _)| AtomicUsize::new(p1)).collect(),
            total_remaining: counts
                .iter()
                .map(|&(p1, p2)| AtomicUsize::new(p1 + p2))
                .collect(),
            counts: counts.into(),
            generation: 0,
            poisoned: AtomicBool::new(false),
        };
        // Leading zero-arrival stages are complete before anyone arrives.
        gate.try_advance();
        gate
    }

    /// Rewinds the gate to its post-construction state for the next solve on
    /// the same structure: every counter is restored from the original
    /// arrival counts, the epoch returns to the leading-empty-stage frontier,
    /// and the generation stamp is bumped.
    ///
    /// `&mut self` is the synchronisation: the caller must have exclusive
    /// access, which a completed solve provides (the pool's completion
    /// barrier orders every worker's last arrival before the orchestrator
    /// regains the gate). The plain `get_mut` stores below are therefore
    /// data-race free by construction, and every worker of the next solve
    /// observes the refilled counters through whatever mechanism hands the
    /// gate back out (the next pool dispatch).
    pub fn reset(&mut self) {
        for (s, &(p1, p2)) in self.counts.iter().enumerate() {
            *self.phase1_remaining[s].get_mut() = p1;
            *self.total_remaining[s].get_mut() = p1 + p2;
        }
        *self.epoch.get_mut() = 0;
        *self.poisoned.get_mut() = false;
        self.generation += 1;
        // Leading zero-arrival stages complete implicitly, as at construction.
        self.try_advance();
    }

    /// Marks the gate as poisoned: a participant failed and arrivals it owed
    /// may never come. Bounded waits return [`GateWait::Poisoned`] promptly
    /// afterwards. Idempotent; cleared by [`EpochGate::reset`].
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether the gate has been poisoned this generation.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The number of completed [`EpochGate::reset`] calls: solve `g` runs
    /// under generation `g`, so flag results cached across a reset are
    /// detectably stale.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.total_remaining.len()
    }

    /// The number of consecutive leading stages fully done.
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether stages `0..deps` are all done (non-blocking). `true`
    /// happens-after every write published by those stages' arrivals.
    #[inline]
    pub fn is_open(&self, deps: usize) -> bool {
        self.epoch.load(Ordering::Acquire) >= deps
    }

    /// Blocks until stages `0..deps` are all done.
    pub fn wait_open(&self, deps: usize) {
        let mut spins = 0u32;
        while !self.is_open(deps) {
            relax(&mut spins);
        }
    }

    /// Blocks until stages `0..deps` are all done, the gate is poisoned, or
    /// `deadline` passes — whichever happens first. The deadline is sampled
    /// every 64 spins, so a timeout is reported within a bounded number of
    /// yields of its expiry.
    pub fn wait_open_until(&self, deps: usize, deadline: Instant) -> GateWait {
        let mut spins = 0u32;
        loop {
            if self.is_open(deps) {
                return GateWait::Ready;
            }
            if self.is_poisoned() {
                return GateWait::Poisoned;
            }
            // Sample the clock only once the wait is already in yield
            // territory, so briefly-closed gates never pay for `Instant`.
            if spins >= 64 && spins.is_multiple_of(64) && Instant::now() >= deadline {
                return GateWait::TimedOut;
            }
            relax(&mut spins);
        }
    }

    /// Whether every phase-1 arrival of `stage` has been reported. `true`
    /// happens-after every write those arrivals published.
    #[inline]
    pub fn phase1_drained(&self, stage: usize) -> bool {
        self.phase1_remaining[stage].load(Ordering::Acquire) == 0
    }

    /// Blocks until every phase-1 arrival of `stage` has been reported.
    pub fn wait_phase1_drained(&self, stage: usize) {
        let mut spins = 0u32;
        while !self.phase1_drained(stage) {
            relax(&mut spins);
        }
    }

    /// Blocks until every phase-1 arrival of `stage` has been reported, the
    /// gate is poisoned, or `deadline` passes — whichever happens first.
    pub fn wait_phase1_drained_until(&self, stage: usize, deadline: Instant) -> GateWait {
        let mut spins = 0u32;
        loop {
            if self.phase1_drained(stage) {
                return GateWait::Ready;
            }
            if self.is_poisoned() {
                return GateWait::Poisoned;
            }
            // Sample the clock only once the wait is already in yield
            // territory, so briefly-closed gates never pay for `Instant`.
            if spins >= 64 && spins.is_multiple_of(64) && Instant::now() >= deadline {
                return GateWait::TimedOut;
            }
            relax(&mut spins);
        }
    }

    /// Reports one completed phase-1 unit of `stage`, publishing the caller's
    /// writes to threads that subsequently observe the drained flag (or, once
    /// the stage fully completes, the epoch).
    pub fn arrive_phase1(&self, stage: usize) {
        let prev = self.phase1_remaining[stage].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "phase-1 over-arrival on stage {stage}");
        self.complete_one(stage);
    }

    /// Reports one completed phase-2 unit of `stage`.
    pub fn arrive_phase2(&self, stage: usize) {
        self.complete_one(stage);
    }

    #[inline]
    fn complete_one(&self, stage: usize) {
        let prev = self.total_remaining[stage].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "over-arrival on stage {stage}");
        if prev == 1 {
            self.try_advance();
        }
    }

    /// Advances the epoch over every consecutive complete stage. Racing
    /// advancers are harmless: the CAS keeps the epoch monotone, and each
    /// competitor re-reads and retries until the frontier stage is
    /// incomplete.
    fn try_advance(&self) {
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e >= self.num_stages() || self.total_remaining[e].load(Ordering::Acquire) != 0 {
                return;
            }
            // AcqRel: acquire the previous advancer's chain, release our
            // observation of stage `e`'s completed arrivals to epoch waiters.
            let _ = self
                .epoch
                .compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Acquire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn empty_stages_complete_at_construction() {
        let gate = EpochGate::new(&[(0, 0), (0, 0), (0, 0)]);
        assert_eq!(gate.epoch(), 3);
        assert!(gate.is_open(3));
        assert!(gate.phase1_drained(1));
    }

    #[test]
    fn epoch_advances_only_over_consecutive_complete_stages() {
        let gate = EpochGate::new(&[(1, 1), (2, 0), (0, 0)]);
        assert_eq!(gate.epoch(), 0);
        assert!(!gate.phase1_drained(0));
        gate.arrive_phase1(0);
        assert!(gate.phase1_drained(0));
        assert_eq!(gate.epoch(), 0, "phase 2 of stage 0 still outstanding");
        // Completing a *later* stage must not open earlier ones.
        gate.arrive_phase1(1);
        gate.arrive_phase1(1);
        assert_eq!(gate.epoch(), 0);
        // The last arrival of stage 0 sweeps the epoch across stage 1 and the
        // empty stage 2.
        gate.arrive_phase2(0);
        assert_eq!(gate.epoch(), 3);
        assert!(gate.is_open(3));
    }

    #[test]
    fn single_threaded_in_order_use_never_blocks() {
        let stages = 20;
        let counts: Vec<(usize, usize)> = (0..stages).map(|s| (1 + s % 3, s % 2)).collect();
        let gate = EpochGate::new(&counts);
        for (s, &(p1, p2)) in counts.iter().enumerate() {
            gate.wait_open(s); // deps of an in-order caller are always met
            for _ in 0..p1 {
                gate.arrive_phase1(s);
            }
            gate.wait_phase1_drained(s);
            for _ in 0..p2 {
                gate.arrive_phase2(s);
            }
        }
        assert_eq!(gate.epoch(), stages);
    }

    /// The flags must publish the arriving threads' writes: a reader that
    /// sees `is_open(k)` must see every pre-arrival store of stages `< k`.
    /// Repeated under contention as a poor man's loom-style stress test.
    #[test]
    fn flags_publish_writes_under_contention() {
        let workers = 4;
        // Miri runs every interleaving decision through its scheduler, so
        // the full-size stress loop would take minutes; a few short rounds
        // still cover the publish/claim protocol.
        let stages = if cfg!(miri) { 6 } else { 24 };
        let rounds = if cfg!(miri) { 3 } else { 60 };
        for round in 0..rounds {
            let counts: Vec<(usize, usize)> =
                (0..stages).map(|s| (workers, (s + round) % 3)).collect();
            let gate = Arc::new(EpochGate::new(&counts));
            // slots[s][w] is written (non-atomically ordered w.r.t. the gate;
            // Relaxed stores) before worker w's phase-1 arrival on stage s.
            let slots: Arc<Vec<Vec<AtomicUsize>>> = Arc::new(
                (0..stages)
                    .map(|_| (0..workers).map(|_| AtomicUsize::new(0)).collect())
                    .collect(),
            );
            let phase2_claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..stages).map(|_| AtomicUsize::new(0)).collect());
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let gate = Arc::clone(&gate);
                    let slots = Arc::clone(&slots);
                    let phase2_claims = Arc::clone(&phase2_claims);
                    let counts = counts.clone();
                    std::thread::spawn(move || {
                        for s in 0..stages {
                            // Before arriving, check everything the epoch
                            // claims is published.
                            let open = gate.epoch();
                            for done in 0..open {
                                for v in &slots[done] {
                                    assert_eq!(
                                        v.load(std::sync::atomic::Ordering::Relaxed),
                                        done + 1,
                                        "stage {done} behind epoch {open} not published"
                                    );
                                }
                            }
                            slots[s][w].store(s + 1, std::sync::atomic::Ordering::Relaxed);
                            gate.arrive_phase1(s);
                            // Dynamically claim this stage's phase-2 units.
                            loop {
                                let t = phase2_claims[s]
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if t >= counts[s].1 {
                                    break;
                                }
                                gate.wait_phase1_drained(s);
                                for v in &slots[s] {
                                    assert_eq!(
                                        v.load(std::sync::atomic::Ordering::Relaxed),
                                        s + 1,
                                        "phase-1 write of stage {s} not published to phase 2"
                                    );
                                }
                                gate.arrive_phase2(s);
                            }
                        }
                        gate.wait_open(stages);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(gate.epoch(), stages);
        }
    }

    #[test]
    fn reset_restores_the_post_construction_state() {
        let mut gate = EpochGate::new(&[(0, 0), (2, 1), (1, 0)]);
        assert_eq!(gate.generation(), 0);
        assert_eq!(gate.epoch(), 1, "leading empty stage completes eagerly");
        gate.arrive_phase1(1);
        gate.arrive_phase1(1);
        gate.arrive_phase2(1);
        gate.arrive_phase1(2);
        assert_eq!(gate.epoch(), 3);
        gate.reset();
        assert_eq!(gate.generation(), 1);
        assert_eq!(gate.epoch(), 1, "reset rewinds to the empty-stage frontier");
        assert!(!gate.phase1_drained(1));
        // The gate must be fully usable again.
        gate.arrive_phase1(1);
        gate.arrive_phase1(1);
        assert!(gate.phase1_drained(1));
        gate.arrive_phase2(1);
        gate.arrive_phase1(2);
        assert_eq!(gate.epoch(), 3);
        assert_eq!(gate.generation(), 1);
    }

    /// The PCG shape: one gate, built once per structure, reused for many
    /// solves under worker contention. Every round must behave exactly like a
    /// freshly-built gate — flags publish the round's own writes (stamped
    /// with the round's generation), never a previous round's.
    #[test]
    fn reset_gate_is_reusable_under_contention() {
        let workers = 4;
        // Shortened under Miri (see flags_publish_writes_under_contention).
        let stages = if cfg!(miri) { 4 } else { 16 };
        let rounds = if cfg!(miri) { 4 } else { 40 };
        let counts: Vec<(usize, usize)> = (0..stages).map(|s| (workers, s % 3)).collect();
        let mut gate = EpochGate::new(&counts);
        // slots[s][w] holds `generation * stages + s + 1`, written before
        // worker w's phase-1 arrival on stage s: a stale value behind an open
        // flag pinpoints both the stage and the round that leaked.
        let slots: Vec<Vec<AtomicUsize>> = (0..stages)
            .map(|_| (0..workers).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        for round in 0..rounds {
            if round > 0 {
                gate.reset();
            }
            assert_eq!(gate.generation(), round);
            let phase2_claims: Vec<AtomicUsize> =
                (0..stages).map(|_| AtomicUsize::new(0)).collect();
            let gate_ref = &gate;
            let slots_ref = &slots;
            let claims_ref = &phase2_claims;
            let counts_ref = &counts;
            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || {
                        for s in 0..stages {
                            let open = gate_ref.epoch();
                            for (done, slot) in slots_ref.iter().enumerate().take(open) {
                                for v in slot {
                                    assert_eq!(
                                        v.load(Ordering::Relaxed),
                                        round * stages + done + 1,
                                        "stage {done} of round {round} not published \
                                         (stale generation?)"
                                    );
                                }
                            }
                            slots_ref[s][w].store(round * stages + s + 1, Ordering::Relaxed);
                            gate_ref.arrive_phase1(s);
                            loop {
                                let t = claims_ref[s].fetch_add(1, Ordering::Relaxed);
                                if t >= counts_ref[s].1 {
                                    break;
                                }
                                gate_ref.wait_phase1_drained(s);
                                gate_ref.arrive_phase2(s);
                            }
                        }
                        gate_ref.wait_open(stages);
                    });
                }
            });
            assert_eq!(gate.epoch(), stages, "round {round} did not drain");
        }
        assert_eq!(gate.generation(), rounds - 1);
    }

    #[test]
    fn poisoned_gate_unblocks_bounded_waits_immediately() {
        let gate = EpochGate::new(&[(1, 0)]);
        gate.poison();
        let far = Instant::now() + std::time::Duration::from_secs(60);
        assert_eq!(gate.wait_open_until(1, far), GateWait::Poisoned);
        assert_eq!(gate.wait_phase1_drained_until(0, far), GateWait::Poisoned);
        // Arrivals are still accepted while poisoned, and a satisfied
        // condition wins over the poison flag.
        gate.arrive_phase1(0);
        assert_eq!(gate.wait_open_until(1, far), GateWait::Ready);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spins against the wall clock until a real deadline passes"
    )]
    fn bounded_wait_times_out_on_a_missing_arrival() {
        let gate = EpochGate::new(&[(1, 0)]);
        let deadline = Instant::now() + std::time::Duration::from_millis(20);
        let start = Instant::now();
        assert_eq!(gate.wait_open_until(1, deadline), GateWait::TimedOut);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "timeout must be reported promptly"
        );
    }

    #[test]
    fn reset_clears_the_poison() {
        let mut gate = EpochGate::new(&[(1, 0)]);
        gate.poison();
        assert!(gate.is_poisoned());
        gate.reset();
        assert!(!gate.is_poisoned());
        let far = Instant::now() + std::time::Duration::from_secs(60);
        gate.arrive_phase1(0);
        assert_eq!(gate.wait_open_until(1, far), GateWait::Ready);
    }

    #[test]
    fn out_of_order_completion_is_tolerated() {
        // Stage 1 completes before stage 0; the epoch must hold at 0 and then
        // jump to 2.
        let gate = EpochGate::new(&[(1, 0), (1, 0)]);
        gate.arrive_phase1(1);
        assert_eq!(gate.epoch(), 0);
        assert!(gate.phase1_drained(1));
        gate.arrive_phase1(0);
        assert_eq!(gate.epoch(), 2);
    }
}
