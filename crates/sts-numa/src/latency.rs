//! Data-access latency model.
//!
//! The simulated executor charges each solver the latency of the memory level
//! a datum is served from. The default cycle counts are the ones the paper
//! quotes for its Intel Westmere-EX node (L1 4 cycles, L2 10 cycles, shared
//! L3 with NUMA-dependent 38–170 cycles, DRAM 175–290 cycles) and a
//! comparable set for the AMD MagnyCours node. Absolute numbers matter less
//! than their ordering and ratios: the figures of the paper are relative
//! speedups, which the model preserves.

use serde::Serialize;

use crate::topology::NumaDistance;

/// Where a datum is served from, as seen by the reading core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AccessKind {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Hit in the local L3 slice (same sharing group).
    L3Local,
    /// Hit in a remote L3 slice (other group / other socket).
    L3Remote,
    /// Local-socket DRAM.
    DramLocal,
    /// Remote-socket DRAM.
    DramRemote,
}

/// Cycle costs for the memory hierarchy plus arithmetic and synchronisation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencyModel {
    /// Private L1 hit latency (cycles).
    pub l1_cycles: f64,
    /// Private L2 hit latency (cycles).
    pub l2_cycles: f64,
    /// Shared L3 hit, local slice (cycles).
    pub l3_local_cycles: f64,
    /// Shared L3 hit, remote slice / socket (cycles).
    pub l3_remote_cycles: f64,
    /// Local DRAM access (cycles).
    pub dram_local_cycles: f64,
    /// Remote DRAM access (cycles).
    pub dram_remote_cycles: f64,
    /// Cost of one fused multiply-add of the solve kernel (cycles).
    pub flop_cycles: f64,
    /// Cost per core of one inter-pack barrier (cycles).
    pub barrier_cycles_per_core: f64,
    /// Clock frequency used to convert cycles to seconds.
    pub clock_ghz: f64,
}

impl LatencyModel {
    /// Latencies the paper cites for the Intel Westmere-EX node.
    pub fn intel_westmere_ex() -> Self {
        LatencyModel {
            l1_cycles: 4.0,
            l2_cycles: 10.0,
            l3_local_cycles: 38.0,
            l3_remote_cycles: 170.0,
            dram_local_cycles: 175.0,
            dram_remote_cycles: 290.0,
            flop_cycles: 1.0,
            barrier_cycles_per_core: 600.0,
            clock_ghz: 2.66,
        }
    }

    /// Latencies for the AMD MagnyCours node (L3 per 6-core die; HyperTransport
    /// hops make remote accesses relatively more expensive than on the Intel
    /// node, which is why the paper's AMD gains from locality are larger).
    pub fn amd_magny_cours() -> Self {
        LatencyModel {
            l1_cycles: 3.0,
            l2_cycles: 12.0,
            l3_local_cycles: 45.0,
            l3_remote_cycles: 190.0,
            dram_local_cycles: 190.0,
            dram_remote_cycles: 320.0,
            flop_cycles: 1.0,
            barrier_cycles_per_core: 700.0,
            clock_ghz: 2.1,
        }
    }

    /// The flat model of Definition 1: every cache access costs the same `r`
    /// and every memory-to-cache copy the same `w`.
    pub fn uma() -> Self {
        LatencyModel {
            l1_cycles: 4.0,
            l2_cycles: 10.0,
            l3_local_cycles: 40.0,
            l3_remote_cycles: 40.0,
            dram_local_cycles: 200.0,
            dram_remote_cycles: 200.0,
            flop_cycles: 1.0,
            barrier_cycles_per_core: 500.0,
            clock_ghz: 2.5,
        }
    }

    /// Cycle cost of one access of the given kind.
    pub fn access_cycles(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::L1 => self.l1_cycles,
            AccessKind::L2 => self.l2_cycles,
            AccessKind::L3Local => self.l3_local_cycles,
            AccessKind::L3Remote => self.l3_remote_cycles,
            AccessKind::DramLocal => self.dram_local_cycles,
            AccessKind::DramRemote => self.dram_remote_cycles,
        }
    }

    /// Cycle cost of reading a solution component that was produced by a core
    /// at the given NUMA distance and is still resident in that core's caches
    /// (the "reuse from a proximal cache" path of Section 3.3).
    pub fn reuse_cycles(&self, distance: NumaDistance) -> f64 {
        match distance {
            NumaDistance::SameCore => self.l1_cycles,
            NumaDistance::SameL3 => self.l3_local_cycles,
            NumaDistance::SameSocket => self.l3_remote_cycles,
            NumaDistance::RemoteSocket => self.l3_remote_cycles.max(self.dram_local_cycles),
        }
    }

    /// Cycle cost of reading a solution component that is *not* cache
    /// resident and must come from memory at the given NUMA distance.
    pub fn memory_cycles(&self, distance: NumaDistance) -> f64 {
        match distance {
            NumaDistance::SameCore | NumaDistance::SameL3 | NumaDistance::SameSocket => {
                self.dram_local_cycles
            }
            NumaDistance::RemoteSocket => self.dram_remote_cycles,
        }
    }

    /// Converts a cycle count to seconds using the model's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_model_matches_cited_latencies() {
        let m = LatencyModel::intel_westmere_ex();
        assert_eq!(m.l1_cycles, 4.0);
        assert_eq!(m.l2_cycles, 10.0);
        assert_eq!(m.l3_local_cycles, 38.0);
        assert_eq!(m.l3_remote_cycles, 170.0);
        assert_eq!(m.dram_local_cycles, 175.0);
        assert_eq!(m.dram_remote_cycles, 290.0);
    }

    #[test]
    fn hierarchy_is_monotone_for_all_presets() {
        for m in [
            LatencyModel::intel_westmere_ex(),
            LatencyModel::amd_magny_cours(),
            LatencyModel::uma(),
        ] {
            assert!(m.l1_cycles <= m.l2_cycles);
            assert!(m.l2_cycles <= m.l3_local_cycles);
            assert!(m.l3_local_cycles <= m.l3_remote_cycles);
            assert!(m.l3_remote_cycles <= m.dram_remote_cycles);
            assert!(m.dram_local_cycles <= m.dram_remote_cycles);
        }
    }

    #[test]
    fn reuse_is_cheaper_than_memory_at_every_distance() {
        let m = LatencyModel::intel_westmere_ex();
        for d in [
            NumaDistance::SameCore,
            NumaDistance::SameL3,
            NumaDistance::SameSocket,
            NumaDistance::RemoteSocket,
        ] {
            assert!(m.reuse_cycles(d) <= m.memory_cycles(d));
        }
    }

    #[test]
    fn reuse_cost_grows_with_distance() {
        let m = LatencyModel::amd_magny_cours();
        assert!(m.reuse_cycles(NumaDistance::SameCore) < m.reuse_cycles(NumaDistance::SameL3));
        assert!(m.reuse_cycles(NumaDistance::SameL3) <= m.reuse_cycles(NumaDistance::SameSocket));
        assert!(
            m.reuse_cycles(NumaDistance::SameSocket) <= m.reuse_cycles(NumaDistance::RemoteSocket)
        );
    }

    #[test]
    fn access_cycles_covers_all_kinds() {
        let m = LatencyModel::uma();
        assert_eq!(m.access_cycles(AccessKind::L1), m.l1_cycles);
        assert_eq!(
            m.access_cycles(AccessKind::DramRemote),
            m.dram_remote_cycles
        );
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let m = LatencyModel::uma();
        let s = m.cycles_to_seconds(2.5e9);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
