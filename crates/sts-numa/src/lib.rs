//! NUMA substrate for the STS-k reproduction.
//!
//! The paper's performance argument is about *where data lives* relative to
//! the core that needs it: private L1/L2, the shared (and NUMA-affected) L3,
//! local DRAM or a remote socket's DRAM. This crate provides:
//!
//! * [`topology`] — a machine model (sockets, cores, L3 sharing groups) with
//!   presets for the paper's two evaluation platforms, the 32-core Intel
//!   Westmere-EX node and the 24-core AMD MagnyCours node, plus best-effort
//!   detection of the host machine;
//! * [`latency`] — a cycle-cost model of data accesses at each NUMA distance,
//!   seeded with the latencies the paper cites (L1 4 cycles, L2 10 cycles,
//!   L3 38–170 cycles, DRAM 175–290 cycles);
//! * [`affinity`] — thread pinning (`sched_setaffinity` on Linux, no-op
//!   elsewhere), the equivalent of the paper's `KMP_AFFINITY=compact`;
//! * [`barrier`] — a sense-reversing spin barrier used between packs;
//! * [`epoch`] — a counter-based epoch gate that fuses the per-pack barriers
//!   of the split solver into per-stage completion flags, enabling pack
//!   pipelining (phase 1 of pack `p+1` overlapping phase 2 of pack `p`);
//! * [`pool`] — a persistent, optionally pinned worker pool with the static /
//!   dynamic / guided loop schedules the paper tunes per solver. Loop bodies
//!   run under `catch_unwind`, so a panicking body surfaces as a structured
//!   [`PoolError`] instead of deadlocking the completion barrier, and the
//!   epoch gate carries poisoning plus watchdog deadlines so workers blocked
//!   on a failed peer bail out in bounded time.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod affinity;
pub mod barrier;
pub mod epoch;
pub mod latency;
pub mod pool;
pub mod topology;

pub use barrier::SpinBarrier;
pub use epoch::{EpochGate, GateWait};
pub use latency::{AccessKind, LatencyModel};
pub use pool::{PoolError, Schedule, WorkerPool};
pub use topology::{NumaDistance, NumaTopology};
