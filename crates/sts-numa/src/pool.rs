//! A persistent, optionally core-pinned worker pool.
//!
//! The paper's solvers are OpenMP `parallel for` loops over the super-rows of
//! a pack, run with `schedule(dynamic, 32)` for the flat reference solvers and
//! `schedule(guided, 1)` for the STS-k variants, with threads pinned
//! compactly. [`WorkerPool`] reproduces that execution model:
//!
//! * a fixed set of worker threads is spawned once and reused for every pack,
//!   so the per-pack cost is a wake-up plus a completion barrier rather than a
//!   thread spawn;
//! * each worker can be pinned to a core chosen from the machine topology's
//!   compact order;
//! * [`WorkerPool::parallel_for`] supports [`Schedule::Static`] blocks,
//!   [`Schedule::Dynamic`] chunk self-scheduling and [`Schedule::Guided`]
//!   decreasing chunks, matching the OpenMP schedules the paper tunes.
//!
//! # Panic safety
//!
//! A loop body that panics must not take the pool down with it. The hazard is
//! structural: `parallel_for` blocks until every worker has decremented
//! `active`, and a panic that unwound through a worker's dispatch path would
//! skip that decrement, leaving the caller (and every later caller) blocked
//! forever on the completion condvar.
//!
//! The correctness argument for the recovery path:
//!
//! 1. Every execution of the borrowed loop body — on a worker thread *and* on
//!    the single-thread inline path — runs inside
//!    `catch_unwind(AssertUnwindSafe(..))`. `AssertUnwindSafe` is justified
//!    because a dispatch that observed a panic always returns
//!    [`PoolError::WorkerPanicked`], so the caller is told its shared state
//!    may be torn and must not trust buffers written by this dispatch.
//! 2. After catching, the worker takes the state lock, records the *first*
//!    panic payload (slot, in-flight index, stringified message), raises the
//!    per-dispatch `cancelled` flag, and **then** performs the same
//!    `active -= 1` bookkeeping as the success path. The decrement is
//!    therefore unconditional, so the completion barrier always opens.
//! 3. `cancelled` is checked by every schedule before each claimed index, so
//!    surviving workers drain the remaining iteration space in bounded time
//!    (at most one loop body each) instead of computing garbage against torn
//!    state.
//! 4. `parallel_for` takes the recorded payload out of the shared state after
//!    the barrier, returning `Err(WorkerPanicked)`. Because the record is
//!    *taken* and `cancelled` is re-armed at the next dispatch, the pool
//!    itself stays healthy: the panicking generation is fully quiesced before
//!    `parallel_for` returns, and subsequent dispatches run normally.
//!
//! Higher layers (the pipelined solvers' epoch gates) add their own poisoning
//! on top so that workers *blocked on a gate* — rather than claiming indices —
//! also observe the failure; see `sts_numa::epoch`.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::affinity;

/// Loop schedule for [`WorkerPool::parallel_for`], mirroring OpenMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Each worker takes one contiguous block of `len / threads` iterations.
    Static,
    /// Workers repeatedly claim `chunk` iterations from a shared counter
    /// (OpenMP `schedule(dynamic, chunk)`).
    Dynamic {
        /// Iterations claimed per request (≥ 1).
        chunk: usize,
    },
    /// Workers claim exponentially decreasing chunks, never smaller than
    /// `min_chunk` (OpenMP `schedule(guided, min_chunk)`).
    Guided {
        /// Smallest chunk a worker may claim (≥ 1).
        min_chunk: usize,
    },
}

/// Structured failure of a [`WorkerPool::parallel_for`] dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker's loop body panicked. The dispatch still completed its
    /// barrier (no iteration is left running), but output buffers written by
    /// the loop body must be considered torn.
    WorkerPanicked {
        /// Pool slot (worker index) whose body panicked; for the inline
        /// single-thread path this is 0.
        slot: usize,
        /// Loop index in flight when the panic fired. For the per-pack and
        /// per-chunk dispatches of the solvers this is the pack / task index.
        pack: usize,
        /// The panic payload, stringified when it was a `&str` or `String`.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked {
                slot,
                pack,
                message,
            } => write!(
                f,
                "worker {slot} panicked while executing loop index {pack}: {message}"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// Stringifies a caught panic payload for error reporting.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A type-erased borrow of the loop body, valid only while its generation is
/// in flight. `parallel_for` blocks until every worker has finished, which is
/// what makes storing the raw pointer sound.
struct Job {
    func: *const (dyn Fn(usize) + Sync),
    len: usize,
    schedule: Schedule,
}

// SAFETY: the pointer is only dereferenced by workers between picking up a
// generation and decrementing `active`, and `parallel_for` keeps the referent
// alive (and does not return) until `active` reaches zero.
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    generation: u64,
    active: usize,
    shutdown: bool,
    /// First panic observed in the in-flight generation: (slot, index, msg).
    panic: Option<(usize, usize, String)>,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    next: AtomicUsize,
    /// Raised when a worker panics so the surviving workers stop claiming
    /// iterations; re-armed (cleared) at every dispatch.
    cancelled: AtomicBool,
}

/// A persistent pool of worker threads executing parallel loops.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` unpinned workers.
    pub fn new(threads: usize) -> Self {
        Self::with_pinning(threads, &[])
    }

    /// Creates a pool with `threads` workers; worker `i` is pinned to
    /// `core_order[i]` when that entry exists (see
    /// [`NumaTopology::compact_core_order`](crate::topology::NumaTopology::compact_core_order)).
    pub fn with_pinning(threads: usize, core_order: &[usize]) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            let shared = Arc::clone(&shared);
            let pin_core = core_order.get(worker_id).copied();
            // Spawn failure is a resource-exhaustion condition at pool
            // construction, before any solve is in flight; aborting is the
            // only sane response.
            #[allow(clippy::expect_used)]
            let handle = std::thread::Builder::new()
                .name(format!("sts-worker-{worker_id}"))
                .spawn(move || {
                    if let Some(core) = pin_core {
                        let _ = affinity::pin_current_thread(core);
                    }
                    worker_loop(&shared, worker_id, threads);
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..len` across the workers using the given
    /// schedule, returning once every iteration has completed.
    ///
    /// With a single worker (or `len == 0`) the loop runs inline on the caller
    /// to avoid synchronisation overhead.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::WorkerPanicked`] when any execution of `f`
    /// panicked. The call still blocks until every worker has quiesced (the
    /// remaining workers stop claiming indices once the panic is observed),
    /// so the borrow of `f` never escapes and the pool remains usable for
    /// subsequent dispatches. Buffers written by `f` must be treated as torn.
    pub fn parallel_for(
        &self,
        len: usize,
        schedule: Schedule,
        f: &(dyn Fn(usize) + Sync),
    ) -> Result<(), PoolError> {
        if len == 0 {
            return Ok(());
        }
        if self.threads == 1 {
            let current = Cell::new(0usize);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in 0..len {
                    current.set(i);
                    f(i);
                }
            }));
            return match result {
                Ok(()) => Ok(()),
                Err(payload) => Err(PoolError::WorkerPanicked {
                    slot: 0,
                    pack: current.get(),
                    message: payload_message(payload.as_ref()),
                }),
            };
        }
        self.shared.next.store(0, Ordering::Relaxed);
        self.shared.cancelled.store(false, Ordering::Relaxed);
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.job.is_none(), "parallel_for is not reentrant");
            st.panic = None;
            // SAFETY: this only erases the lifetime of `f`; the pointer is
            // dereferenced exclusively while this call keeps `f` alive (we do
            // not return until every worker has finished the generation).
            let func: *const (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
            };
            st.job = Some(Job {
                func,
                len,
                schedule,
            });
            st.generation = st.generation.wrapping_add(1);
            st.active = self.threads;
            self.shared.work_cv.notify_all();
        }
        let mut st = self.shared.state.lock();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
        match st.panic.take() {
            None => Ok(()),
            Some((slot, pack, message)) => Err(PoolError::WorkerPanicked {
                slot,
                pack,
                message,
            }),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker_id: usize, threads: usize) {
    let mut last_generation = 0u64;
    loop {
        let (func, len, schedule) = {
            let mut st = shared.state.lock();
            while !st.shutdown && (st.job.is_none() || st.generation == last_generation) {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            last_generation = st.generation;
            // The dispatching thread installs the job before bumping the
            // generation under the same lock, so a newer generation implies a
            // present job.
            #[allow(clippy::expect_used)]
            let job = st
                .job
                .as_ref()
                .expect("job present while generation is newer");
            (job.func, job.len, job.schedule)
        };
        // SAFETY: see the `Job` safety comment — the referent outlives this
        // use because `parallel_for` waits for `active == 0`.
        let f = unsafe { &*func };
        let current = Cell::new(0usize);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_chunks(
                f,
                len,
                schedule,
                worker_id,
                threads,
                &shared.next,
                &shared.cancelled,
                &current,
            );
        }));
        let mut st = shared.state.lock();
        if let Err(payload) = result {
            // Stop the other workers promptly, record only the first payload.
            shared.cancelled.store(true, Ordering::Relaxed);
            if st.panic.is_none() {
                st.panic = Some((worker_id, current.get(), payload_message(payload.as_ref())));
            }
        }
        // Unconditional: this is the decrement whose absence used to deadlock
        // the completion barrier on a panic.
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chunks(
    f: &(dyn Fn(usize) + Sync),
    len: usize,
    schedule: Schedule,
    worker_id: usize,
    threads: usize,
    next: &AtomicUsize,
    cancelled: &AtomicBool,
    current: &Cell<usize>,
) {
    match schedule {
        Schedule::Static => {
            let start = worker_id * len / threads;
            let end = (worker_id + 1) * len / threads;
            for i in start..end {
                if cancelled.load(Ordering::Relaxed) {
                    return;
                }
                current.set(i);
                f(i);
            }
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            loop {
                if cancelled.load(Ordering::Relaxed) {
                    return;
                }
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                for i in start..(start + chunk).min(len) {
                    if cancelled.load(Ordering::Relaxed) {
                        return;
                    }
                    current.set(i);
                    f(i);
                }
            }
        }
        Schedule::Guided { min_chunk } => {
            let min_chunk = min_chunk.max(1);
            loop {
                if cancelled.load(Ordering::Relaxed) {
                    return;
                }
                let observed = next.load(Ordering::Relaxed);
                if observed >= len {
                    break;
                }
                let remaining = len - observed;
                let chunk = (remaining / (2 * threads)).max(min_chunk);
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                for i in start..(start + chunk).min(len) {
                    if cancelled.load(Ordering::Relaxed) {
                        return;
                    }
                    current.set(i);
                    f(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    fn check_every_index_once(threads: usize, len: usize, schedule: Schedule) {
        let pool = WorkerPool::new(threads);
        let visited: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(len, schedule, &|i| {
            visited[i].fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        for (i, v) in visited.iter().enumerate() {
            assert_eq!(
                v.load(Ordering::SeqCst),
                1,
                "index {i} visited wrong number of times"
            );
        }
    }

    #[test]
    fn static_schedule_visits_every_index_exactly_once() {
        check_every_index_once(4, 1003, Schedule::Static);
    }

    #[test]
    fn dynamic_schedule_visits_every_index_exactly_once() {
        check_every_index_once(4, 997, Schedule::Dynamic { chunk: 32 });
        check_every_index_once(3, 10, Schedule::Dynamic { chunk: 1 });
    }

    #[test]
    fn guided_schedule_visits_every_index_exactly_once() {
        check_every_index_once(4, 1024, Schedule::Guided { min_chunk: 1 });
        check_every_index_once(2, 5, Schedule::Guided { min_chunk: 4 });
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        check_every_index_once(1, 100, Schedule::Dynamic { chunk: 8 });
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = WorkerPool::new(3);
        let called = AtomicBool::new(false);
        pool.parallel_for(0, Schedule::Static, &|_| {
            called.store(true, Ordering::SeqCst);
        })
        .unwrap();
        assert!(!called.load(Ordering::SeqCst));
    }

    #[test]
    fn pool_is_reusable_across_many_loops() {
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        // Fewer dispatch rounds under Miri: each one is a full cross-thread
        // handshake through the interpreter.
        let rounds = if cfg!(miri) { 8 } else { 50 };
        for round in 0..rounds {
            pool.parallel_for(round + 1, Schedule::Guided { min_chunk: 1 }, &|i| {
                total.fetch_add(i + 1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Sum over rounds of (1 + 2 + ... + (round+1)).
        let expected: usize = (1..=rounds).map(|r| r * (r + 1) / 2).sum();
        assert_eq!(total.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn results_are_deterministic_for_commutative_reductions() {
        let pool = WorkerPool::new(4);
        let sum = AtomicUsize::new(0);
        let n = if cfg!(miri) { 500 } else { 10_000 };
        pool.parallel_for(n, Schedule::Dynamic { chunk: 64 }, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
    }

    #[test]
    fn loop_body_can_borrow_caller_data_mutably_through_cells() {
        // The common solver pattern: each index writes a distinct slot of a
        // shared output vector.
        let pool = WorkerPool::new(4);
        let n = 512;
        let out: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, Schedule::Static, &|i| {
            out[i].store(i * i, Ordering::Relaxed);
        })
        .unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), i * i);
        }
    }

    #[test]
    fn with_pinning_accepts_core_lists_longer_than_host() {
        let pool = WorkerPool::with_pinning(2, &[0, 4096]);
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, Schedule::Static, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panicking_body_returns_structured_error_instead_of_hanging() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let err = pool
                .parallel_for(64, Schedule::Dynamic { chunk: 1 }, &|i| {
                    if i == 17 {
                        panic!("injected fault at index 17");
                    }
                })
                .unwrap_err();
            match err {
                PoolError::WorkerPanicked {
                    slot,
                    pack,
                    message,
                } => {
                    assert!(slot < threads, "slot {slot} out of range");
                    assert_eq!(pack, 17);
                    assert!(message.contains("injected fault"), "message: {message}");
                }
            }
        }
    }

    #[test]
    fn pool_survives_a_panic_and_runs_the_next_dispatch() {
        let pool = WorkerPool::new(4);
        assert!(pool
            .parallel_for(32, Schedule::Static, &|_| panic!("boom"))
            .is_err());
        let count = AtomicUsize::new(0);
        pool.parallel_for(100, Schedule::Guided { min_chunk: 1 }, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn only_the_first_panic_payload_is_reported() {
        let pool = WorkerPool::new(4);
        let err = pool
            .parallel_for(4, Schedule::Static, &|i| panic!("fault in index {i}"))
            .unwrap_err();
        let PoolError::WorkerPanicked { message, .. } = err;
        assert!(message.starts_with("fault in index"), "message: {message}");
    }
}
