//! Machine topology model.
//!
//! A [`NumaTopology`] describes how cores are grouped into L3 sharing domains
//! and sockets. It is deliberately simple — exactly the information the
//! paper's scheduling heuristics and our simulated executor need to decide
//! whether a solution component produced by one core is "proximal" (same L3),
//! on the same socket, or on a remote socket for another core.

use serde::Serialize;

use crate::latency::LatencyModel;

/// Relative placement of two cores in the NUMA hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum NumaDistance {
    /// The same core (data likely in private L1/L2).
    SameCore,
    /// Different cores sharing an L3 cache slice.
    SameL3,
    /// Same socket but different L3 group (AMD MagnyCours has two dies per
    /// package, each with its own L3).
    SameSocket,
    /// Different sockets.
    RemoteSocket,
}

/// A NUMA machine: `sockets × l3_groups_per_socket × cores_per_l3` cores.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NumaTopology {
    /// Human-readable name used in benchmark output.
    pub name: String,
    /// Number of sockets (packages).
    pub sockets: usize,
    /// L3 sharing domains per socket.
    pub l3_groups_per_socket: usize,
    /// Cores per L3 sharing domain.
    pub cores_per_l3: usize,
    /// The access-latency model attached to this machine.
    pub latency: LatencyModel,
}

impl NumaTopology {
    /// Builds a topology, validating that every level has at least one member.
    pub fn new(
        name: impl Into<String>,
        sockets: usize,
        l3_groups_per_socket: usize,
        cores_per_l3: usize,
        latency: LatencyModel,
    ) -> Self {
        assert!(sockets > 0 && l3_groups_per_socket > 0 && cores_per_l3 > 0);
        NumaTopology {
            name: name.into(),
            sockets,
            l3_groups_per_socket,
            cores_per_l3,
            latency,
        }
    }

    /// The paper's Intel evaluation node: 4 × Xeon E7-8837 (Westmere-EX),
    /// 8 cores per socket, one 24 MB L3 shared by all 8 cores of a socket.
    pub fn intel_westmere_ex_32() -> Self {
        NumaTopology::new(
            "Intel Westmere-EX 4x8",
            4,
            1,
            8,
            LatencyModel::intel_westmere_ex(),
        )
    }

    /// The paper's AMD evaluation node: 2 × twelve-core MagnyCours. Each
    /// package carries two six-core dies, each die with its own 6 MB L3.
    pub fn amd_magny_cours_24() -> Self {
        NumaTopology::new(
            "AMD MagnyCours 2x12",
            2,
            2,
            6,
            LatencyModel::amd_magny_cours(),
        )
    }

    /// A flat UMA machine with `cores` cores sharing one L3 — the platform of
    /// Definition 1 (used by the In-Pack complexity results and their tests).
    pub fn uma(cores: usize) -> Self {
        NumaTopology::new(
            format!("UMA {cores}-core"),
            1,
            1,
            cores.max(1),
            LatencyModel::uma(),
        )
    }

    /// Best-effort description of the host: `available_parallelism` cores on a
    /// single socket sharing one L3. Good enough for wall-clock runs; the
    /// simulated executor should use the presets instead.
    pub fn detect_host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        NumaTopology::new(
            format!("host ({cores} cores)"),
            1,
            1,
            cores,
            LatencyModel::uma(),
        )
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.l3_groups_per_socket * self.cores_per_l3
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.l3_groups_per_socket * self.cores_per_l3
    }

    /// The socket that owns `core`.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket()
    }

    /// The global L3-group index that owns `core`.
    pub fn l3_group_of(&self, core: usize) -> usize {
        core / self.cores_per_l3
    }

    /// The NUMA distance between two cores.
    pub fn distance(&self, a: usize, b: usize) -> NumaDistance {
        if a == b {
            NumaDistance::SameCore
        } else if self.l3_group_of(a) == self.l3_group_of(b) {
            NumaDistance::SameL3
        } else if self.socket_of(a) == self.socket_of(b) {
            NumaDistance::SameSocket
        } else {
            NumaDistance::RemoteSocket
        }
    }

    /// The list of core ids in "compact" affinity order (fill one L3 group,
    /// then the next) truncated to `count` — the order in which worker threads
    /// are pinned, matching `KMP_AFFINITY=compact`.
    pub fn compact_core_order(&self, count: usize) -> Vec<usize> {
        (0..self.total_cores().min(count)).collect()
    }

    /// The list of core ids in "scatter" order (round-robin across sockets),
    /// provided for ablation experiments.
    pub fn scatter_core_order(&self, count: usize) -> Vec<usize> {
        let total = self.total_cores();
        let per_socket = self.cores_per_socket();
        let mut order = Vec::with_capacity(total);
        for offset in 0..per_socket {
            for s in 0..self.sockets {
                order.push(s * per_socket + offset);
            }
        }
        order.truncate(count.min(total));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_preset_has_32_cores_in_4_sockets() {
        let t = NumaTopology::intel_westmere_ex_32();
        assert_eq!(t.total_cores(), 32);
        assert_eq!(t.sockets, 4);
        assert_eq!(t.cores_per_socket(), 8);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(31), 3);
    }

    #[test]
    fn amd_preset_has_24_cores_with_6_core_l3_groups() {
        let t = NumaTopology::amd_magny_cours_24();
        assert_eq!(t.total_cores(), 24);
        assert_eq!(t.l3_group_of(0), 0);
        assert_eq!(t.l3_group_of(5), 0);
        assert_eq!(t.l3_group_of(6), 1);
        // cores 0 and 6 share a socket but not an L3.
        assert_eq!(t.distance(0, 6), NumaDistance::SameSocket);
    }

    #[test]
    fn distances_are_ordered_by_proximity() {
        let t = NumaTopology::intel_westmere_ex_32();
        assert_eq!(t.distance(3, 3), NumaDistance::SameCore);
        assert_eq!(t.distance(0, 7), NumaDistance::SameL3);
        assert_eq!(t.distance(0, 8), NumaDistance::RemoteSocket);
        assert!(NumaDistance::SameCore < NumaDistance::SameL3);
        assert!(NumaDistance::SameL3 < NumaDistance::SameSocket);
        assert!(NumaDistance::SameSocket < NumaDistance::RemoteSocket);
    }

    #[test]
    fn distance_is_symmetric() {
        let t = NumaTopology::amd_magny_cours_24();
        for a in 0..t.total_cores() {
            for b in 0..t.total_cores() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn uma_topology_has_single_l3() {
        let t = NumaTopology::uma(16);
        assert_eq!(t.total_cores(), 16);
        assert_eq!(t.distance(0, 15), NumaDistance::SameL3);
    }

    #[test]
    fn compact_order_fills_sockets_in_turn() {
        let t = NumaTopology::intel_westmere_ex_32();
        let order = t.compact_core_order(16);
        assert_eq!(order.len(), 16);
        assert_eq!(order[0], 0);
        assert_eq!(order[8], 8);
        assert!(order[..8].iter().all(|&c| t.socket_of(c) == 0));
    }

    #[test]
    fn scatter_order_round_robins_sockets() {
        let t = NumaTopology::intel_westmere_ex_32();
        let order = t.scatter_core_order(8);
        let sockets: Vec<usize> = order.iter().map(|&c| t.socket_of(c)).collect();
        assert_eq!(sockets[..4], [0, 1, 2, 3]);
    }

    #[test]
    fn detect_host_reports_at_least_one_core() {
        let t = NumaTopology::detect_host();
        assert!(t.total_cores() >= 1);
    }

    #[test]
    #[should_panic]
    fn zero_cores_is_rejected() {
        let _ = NumaTopology::new("bad", 0, 1, 1, LatencyModel::uma());
    }
}
