//! The In-Pack cost model (Definition 1 / Equation 1) and its NUMA extension.
//!
//! On the one-level platform of Definition 1, processor `j` running the task
//! set `V_j` pays
//!
//! ```text
//! w · |∪_{i ∈ Vj} I_i|   — copying each distinct input into its cache once
//! e · |Vj|               — executing the tasks
//! r · Σ_{i ∈ Vj} |I_i|   — re-reading every input from cache per task
//! ```
//!
//! and the schedule's execution time is the maximum over processors
//! (Equation 1). The NUMA extension replaces the flat copy cost `w` by a
//! distance-dependent cost: an input produced by a core at NUMA distance `d`
//! from the reader costs `reuse(d)` to bring in, which is the quantity the
//! paper's within-pack reordering and scheduling heuristics try to minimise.

use sts_numa::{LatencyModel, NumaTopology};

use crate::dar::DarGraph;

/// The flat (UMA) cost model of Definition 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InPackCostModel {
    /// Cost of copying one unit of data from memory into a cache (`w`).
    pub w: f64,
    /// Cost of executing one task (`e`).
    pub e: f64,
    /// Cost of one cache read (`r`).
    pub r: f64,
}

impl InPackCostModel {
    /// The reduction model of Theorem 1: only memory-to-cache copies count.
    pub fn copy_only(w: f64) -> Self {
        InPackCostModel { w, e: 0.0, r: 0.0 }
    }

    /// A model with all three components, in the spirit of the paper's
    /// examples (`w` ≫ `r` > `e`).
    pub fn standard() -> Self {
        InPackCostModel {
            w: 200.0,
            e: 1.0,
            r: 4.0,
        }
    }

    /// Cost of processor `j` under assignment `assignment` (task → processor).
    pub fn processor_cost(&self, dar: &DarGraph, assignment: &[usize], j: usize) -> f64 {
        let mut distinct: Vec<usize> = Vec::new();
        let mut tasks = 0usize;
        let mut reads = 0usize;
        for (t, &p) in assignment.iter().enumerate() {
            if p != j {
                continue;
            }
            tasks += 1;
            reads += dar.inputs(t).len();
            distinct.extend_from_slice(dar.inputs(t));
        }
        distinct.sort_unstable();
        distinct.dedup();
        self.w * distinct.len() as f64 + self.e * tasks as f64 + self.r * reads as f64
    }

    /// Equation 1: the makespan of an assignment onto `q` processors.
    pub fn makespan(&self, dar: &DarGraph, assignment: &[usize], q: usize) -> f64 {
        assert_eq!(assignment.len(), dar.num_tasks());
        assert!(
            assignment.iter().all(|&p| p < q),
            "assignment references processor >= q"
        );
        (0..q)
            .map(|j| self.processor_cost(dar, assignment, j))
            .fold(0.0, f64::max)
    }
}

/// The NUMA-distance extension: inputs are produced by cores of a previous
/// pack, and fetching one costs the reuse latency of the distance between the
/// reading core and the producing core.
#[derive(Debug, Clone)]
pub struct NumaCostModel {
    /// Machine description providing core → core distances.
    pub topology: NumaTopology,
    /// Latency table used to price each distance.
    pub latency: LatencyModel,
    /// Cost of executing one task (cycles).
    pub task_cycles: f64,
}

impl NumaCostModel {
    /// Builds a NUMA cost model from a topology (its latency table is reused).
    pub fn new(topology: NumaTopology, task_cycles: f64) -> Self {
        let latency = topology.latency.clone();
        NumaCostModel {
            topology,
            latency,
            task_cycles,
        }
    }

    /// Cost of core `core` executing the tasks assigned to it when input `x`
    /// was produced by `producer[x]` (a core id of the previous pack). Each
    /// distinct input is fetched once at the distance-dependent cost; each
    /// additional read hits the local L1.
    pub fn core_cost(
        &self,
        dar: &DarGraph,
        assignment: &[usize],
        producer: &[usize],
        core: usize,
    ) -> f64 {
        let mut distinct: Vec<usize> = Vec::new();
        let mut tasks = 0usize;
        let mut reads = 0usize;
        for (t, &c) in assignment.iter().enumerate() {
            if c != core {
                continue;
            }
            tasks += 1;
            reads += dar.inputs(t).len();
            distinct.extend_from_slice(dar.inputs(t));
        }
        distinct.sort_unstable();
        distinct.dedup();
        let fetch: f64 = distinct
            .iter()
            .map(|&x| {
                let d = self.topology.distance(core, producer[x]);
                self.latency.reuse_cycles(d)
            })
            .sum();
        let rereads = (reads - distinct.len()) as f64 * self.latency.l1_cycles;
        fetch + rereads + self.task_cycles * tasks as f64
    }

    /// Makespan over all cores of the topology.
    pub fn makespan(&self, dar: &DarGraph, assignment: &[usize], producer: &[usize]) -> f64 {
        let q = self.topology.total_cores();
        assert!(assignment.iter().all(|&c| c < q));
        (0..q)
            .map(|c| self.core_cost(dar, assignment, producer, c))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_processor_cost_matches_formula() {
        let dar = DarGraph::from_inputs(vec![vec![0, 1], vec![1, 2], vec![3]]);
        let m = InPackCostModel {
            w: 10.0,
            e: 1.0,
            r: 0.5,
        };
        let assignment = vec![0, 0, 0];
        // distinct inputs {0,1,2,3} = 4, tasks = 3, reads = 5
        let expected = 10.0 * 4.0 + 1.0 * 3.0 + 0.5 * 5.0;
        assert_eq!(m.processor_cost(&dar, &assignment, 0), expected);
        assert_eq!(m.makespan(&dar, &assignment, 2), expected);
        assert_eq!(m.processor_cost(&dar, &assignment, 1), 0.0);
    }

    #[test]
    fn splitting_shared_inputs_duplicates_copies() {
        // Two tasks sharing one input: together they copy it once, apart twice.
        let dar = DarGraph::from_inputs(vec![vec![7], vec![7]]);
        let m = InPackCostModel::copy_only(1.0);
        assert_eq!(m.makespan(&dar, &[0, 0], 2), 1.0);
        assert_eq!(m.makespan(&dar, &[0, 1], 2), 1.0); // per-proc max is still 1
                                                       // but the *total* copies differ; check via summed processor costs
        let total_together: f64 = (0..2).map(|j| m.processor_cost(&dar, &[0, 0], j)).sum();
        let total_apart: f64 = (0..2).map(|j| m.processor_cost(&dar, &[0, 1], j)).sum();
        assert_eq!(total_together, 1.0);
        assert_eq!(total_apart, 2.0);
    }

    #[test]
    fn line_dar_block_schedule_cost_matches_paper_formula() {
        // Section 3.3: n = m*q tasks on a line, block schedule has cost
        // w*(m+1) + e*m + r*(2m) per processor.
        let (m_tasks, q) = (4usize, 3usize);
        let n = m_tasks * q;
        let dar = DarGraph::line(n);
        let model = InPackCostModel {
            w: 100.0,
            e: 2.0,
            r: 5.0,
        };
        let assignment: Vec<usize> = (0..n).map(|i| i / m_tasks).collect();
        let expected = model.w * (m_tasks as f64 + 1.0)
            + model.e * m_tasks as f64
            + model.r * (2 * m_tasks) as f64;
        assert_eq!(model.makespan(&dar, &assignment, q), expected);
    }

    #[test]
    #[should_panic]
    fn out_of_range_processor_is_rejected() {
        let dar = DarGraph::line(2);
        let m = InPackCostModel::standard();
        let _ = m.makespan(&dar, &[0, 5], 2);
    }

    #[test]
    fn numa_cost_prefers_proximal_producers() {
        let topo = NumaTopology::amd_magny_cours_24();
        let model = NumaCostModel::new(topo, 1.0);
        // One task reading one input; the input's producer is either core 1
        // (same L3 as core 0) or core 23 (remote socket).
        let dar = DarGraph::from_inputs(vec![vec![0]]);
        let near = model.core_cost(&dar, &[0], &[1], 0);
        let far = model.core_cost(&dar, &[0], &[23], 0);
        assert!(
            near < far,
            "same-L3 producer must be cheaper ({near} vs {far})"
        );
    }

    #[test]
    fn numa_rereads_hit_l1() {
        let topo = NumaTopology::intel_westmere_ex_32();
        let model = NumaCostModel::new(topo, 0.0);
        // Two tasks on the same core sharing the same single input.
        let dar = DarGraph::from_inputs(vec![vec![0], vec![0]]);
        let cost = model.core_cost(&dar, &[0, 0], &[0], 0);
        // one fetch at L1 (producer is the same core) + one re-read at L1
        assert_eq!(cost, model.latency.l1_cycles * 2.0);
    }

    #[test]
    fn numa_makespan_is_max_over_cores() {
        let topo = NumaTopology::uma(4);
        let model = NumaCostModel::new(topo, 10.0);
        let dar = DarGraph::from_inputs(vec![vec![0], vec![1], vec![2]]);
        let producer = vec![0, 0, 0];
        let spread = model.makespan(&dar, &[0, 1, 2], &producer);
        let piled = model.makespan(&dar, &[3, 3, 3], &producer);
        assert!(piled > spread);
    }
}
