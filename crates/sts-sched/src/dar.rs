//! The Data Affinity and Reuse (DAR) graph of a pack.
//!
//! Vertices are the tasks of the pack (one task per super-row); task `t`
//! carries the set `I_t` of *external* inputs it reads — the solution
//! components produced by earlier packs. Two tasks are connected when their
//! input sets intersect (`DX_l ∩ DX_m ≠ ∅` in the paper's notation): executing
//! them on the same core, back to back, lets the second read the shared
//! components out of a proximal cache.

use std::collections::HashMap;

/// The DAR graph of one pack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DarGraph {
    /// `inputs[t]`: sorted, deduplicated external data ids read by task `t`.
    inputs: Vec<Vec<usize>>,
    /// `adj[t]`: tasks sharing at least one input with `t` (sorted).
    adj: Vec<Vec<usize>>,
}

impl DarGraph {
    /// Builds the DAR graph from per-task input sets. Inputs are deduplicated
    /// and sorted; the edge set is derived by grouping tasks per input.
    pub fn from_inputs(mut inputs: Vec<Vec<usize>>) -> DarGraph {
        for set in &mut inputs {
            set.sort_unstable();
            set.dedup();
        }
        let n = inputs.len();
        // input id -> tasks that read it
        let mut readers: HashMap<usize, Vec<usize>> = HashMap::new();
        for (t, set) in inputs.iter().enumerate() {
            for &x in set {
                readers.entry(x).or_default().push(t);
            }
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for tasks in readers.values() {
            for (i, &a) in tasks.iter().enumerate() {
                for &b in &tasks[i + 1..] {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        DarGraph { inputs, adj }
    }

    /// Number of tasks in the pack.
    pub fn num_tasks(&self) -> usize {
        self.inputs.len()
    }

    /// The external inputs of task `t`.
    pub fn inputs(&self, t: usize) -> &[usize] {
        &self.inputs[t]
    }

    /// All input sets.
    pub fn all_inputs(&self) -> &[Vec<usize>] {
        &self.inputs
    }

    /// Tasks sharing at least one input with `t`.
    pub fn neighbors(&self, t: usize) -> &[usize] {
        &self.adj[t]
    }

    /// Number of DAR edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Number of distinct external inputs read by the whole pack.
    pub fn num_distinct_inputs(&self) -> usize {
        let mut all: Vec<usize> = self.inputs.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// Total number of input reads (with multiplicity across tasks), the
    /// `Σ|Iᵢ|` term of the cost model.
    pub fn total_reads(&self) -> usize {
        self.inputs.iter().map(|s| s.len()).sum()
    }

    /// True when the DAR graph is a collection of simple paths (every vertex
    /// has degree ≤ 2 and there are no cycles) — the "line graph" special case
    /// of Section 3.4 for which the block schedule is optimal.
    pub fn is_union_of_paths(&self) -> bool {
        let n = self.num_tasks();
        if self.adj.iter().any(|a| a.len() > 2) {
            return false;
        }
        // With max degree ≤ 2, the graph is a union of paths iff each
        // connected component has edges = vertices - 1 (no cycles).
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut stack = vec![start];
            visited[start] = true;
            let mut vertices = 0usize;
            let mut degree_sum = 0usize;
            while let Some(v) = stack.pop() {
                vertices += 1;
                degree_sum += self.adj[v].len();
                for &u in &self.adj[v] {
                    if !visited[u] {
                        visited[u] = true;
                        stack.push(u);
                    }
                }
            }
            let edges = degree_sum / 2;
            if edges + 1 != vertices && vertices > 1 {
                return false;
            }
            if vertices == 1 && edges != 0 {
                return false;
            }
        }
        true
    }

    /// Relabels tasks: task `new` of the result is task `order[new]` of
    /// `self`. Used after RCM reordering of the pack.
    pub fn reorder(&self, order: &[usize]) -> DarGraph {
        assert_eq!(order.len(), self.num_tasks());
        let inputs = order.iter().map(|&old| self.inputs[old].clone()).collect();
        DarGraph::from_inputs(inputs)
    }

    /// Builds the canonical "line pack" of Figure 5: `n` tasks where task `i`
    /// reads inputs `{i, i+1}`, so consecutive tasks share exactly one input.
    pub fn line(n: usize) -> DarGraph {
        DarGraph::from_inputs((0..n).map(|i| vec![i, i + 1]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure3_pack_two() {
        // Figure 3: pack 2 of the worked example has tasks {1,3}, {2,4} and
        // {5,8}; tasks {1,3} and {2,4} both read x9's neighbours... in the
        // paper the DAR of pack 2 connects (1,3)-(2,4) and (2,4)-(5,8).
        // Reproduce the same shape with explicit input sets.
        let dar = DarGraph::from_inputs(vec![
            vec![8],    // super-row {1,3} reads x9? (shared with {2,4})
            vec![8, 6], // super-row {2,4}
            vec![6],    // super-row {5,8}
        ]);
        assert_eq!(dar.num_edges(), 2);
        assert_eq!(dar.neighbors(1), &[0, 2]);
        assert!(dar.is_union_of_paths());
    }

    #[test]
    fn edges_exist_exactly_when_inputs_intersect() {
        let dar = DarGraph::from_inputs(vec![vec![1, 2], vec![2, 3], vec![4], vec![3, 4]]);
        assert!(dar.neighbors(0).contains(&1));
        assert!(!dar.neighbors(0).contains(&2));
        assert!(dar.neighbors(2).contains(&3));
        assert_eq!(dar.num_edges(), 3);
    }

    #[test]
    fn duplicate_inputs_are_deduplicated() {
        let dar = DarGraph::from_inputs(vec![vec![5, 5, 1], vec![]]);
        assert_eq!(dar.inputs(0), &[1, 5]);
        assert_eq!(dar.total_reads(), 2);
        assert_eq!(dar.num_distinct_inputs(), 2);
    }

    #[test]
    fn line_pack_matches_figure5() {
        let dar = DarGraph::line(6);
        assert_eq!(dar.num_tasks(), 6);
        assert_eq!(dar.num_edges(), 5);
        assert!(dar.is_union_of_paths());
        // interior tasks have two neighbours, endpoints one
        assert_eq!(dar.neighbors(0).len(), 1);
        assert_eq!(dar.neighbors(3).len(), 2);
        // n tasks with inputs {i, i+1} -> n+1 distinct inputs, 2n reads
        assert_eq!(dar.num_distinct_inputs(), 7);
        assert_eq!(dar.total_reads(), 12);
    }

    #[test]
    fn cycle_is_not_a_union_of_paths() {
        // Figure 4's connected components are cycles (task j shares with
        // j+1 mod a_i): three tasks in a triangle.
        let dar = DarGraph::from_inputs(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        assert_eq!(dar.num_edges(), 3);
        assert!(!dar.is_union_of_paths());
    }

    #[test]
    fn star_is_not_a_union_of_paths() {
        let dar = DarGraph::from_inputs(vec![vec![9], vec![9], vec![9], vec![9]]);
        // All four tasks share input 9: a clique, degree 3 > 2.
        assert!(!dar.is_union_of_paths());
    }

    #[test]
    fn isolated_tasks_form_paths_trivially() {
        let dar = DarGraph::from_inputs(vec![vec![1], vec![2], vec![3]]);
        assert_eq!(dar.num_edges(), 0);
        assert!(dar.is_union_of_paths());
    }

    #[test]
    fn reorder_preserves_structure() {
        let dar = DarGraph::line(5);
        let reordered = dar.reorder(&[4, 3, 2, 1, 0]);
        assert_eq!(reordered.num_edges(), dar.num_edges());
        assert!(reordered.is_union_of_paths());
        assert_eq!(reordered.inputs(0), dar.inputs(4));
    }

    #[test]
    fn empty_dar_graph() {
        let dar = DarGraph::from_inputs(vec![]);
        assert_eq!(dar.num_tasks(), 0);
        assert_eq!(dar.num_edges(), 0);
        assert!(dar.is_union_of_paths());
    }
}
