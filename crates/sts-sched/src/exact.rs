//! Exhaustive optimal In-Pack scheduling for small instances.
//!
//! The In-Pack problem is NP-complete (Theorem 1), so an exact solver can only
//! be used on small packs; its role here is to validate the heuristics of
//! [`heuristic`](crate::heuristic) and to demonstrate on the 3-Partition
//! instances of [`partition`](crate::partition) that the reduction behaves as
//! the proof says. The search enumerates assignments with two prunings:
//! processor labels are interchangeable (the first task always goes to
//! processor 0, and a task may open at most one new processor), and branches
//! whose partial makespan already exceeds the incumbent are cut.

use crate::cost::InPackCostModel;
use crate::dar::DarGraph;

/// The result of an exact search: the optimal makespan and one assignment
/// achieving it.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalSchedule {
    /// Minimum achievable makespan under the cost model.
    pub makespan: f64,
    /// A task → processor assignment achieving it.
    pub assignment: Vec<usize>,
}

/// Computes an optimal schedule of the DAR tasks onto `q` processors by
/// exhaustive search with symmetry and bound pruning.
///
/// Practical up to roughly 14 tasks; larger instances should use the
/// heuristics.
pub fn optimal_schedule(dar: &DarGraph, q: usize, model: &InPackCostModel) -> OptimalSchedule {
    let n = dar.num_tasks();
    assert!(q >= 1, "need at least one processor");
    if n == 0 {
        return OptimalSchedule {
            makespan: 0.0,
            assignment: Vec::new(),
        };
    }
    let mut best_assignment: Vec<usize> = (0..n).map(|_| 0).collect();
    let mut best = model.makespan(dar, &best_assignment, q);
    let mut current = vec![0usize; n];
    search(
        dar,
        q,
        model,
        0,
        0,
        &mut current,
        &mut best,
        &mut best_assignment,
    );
    OptimalSchedule {
        makespan: best,
        assignment: best_assignment,
    }
}

#[allow(clippy::too_many_arguments)] // recursive branch-and-bound state
fn search(
    dar: &DarGraph,
    q: usize,
    model: &InPackCostModel,
    task: usize,
    used_procs: usize,
    current: &mut Vec<usize>,
    best: &mut f64,
    best_assignment: &mut Vec<usize>,
) {
    let n = dar.num_tasks();
    if task == n {
        let cost = model.makespan(dar, current, q);
        if cost < *best {
            *best = cost;
            best_assignment.copy_from_slice(current);
        }
        return;
    }
    // A task may go to any already-used processor, or open exactly the next
    // unused one (processor labels are symmetric).
    let limit = (used_procs + 1).min(q);
    for p in 0..limit {
        current[task] = p;
        // Bound: the cost of processor p with the tasks assigned so far can
        // only grow, so prune if it already exceeds the incumbent.
        let partial = partial_processor_cost(dar, current, task + 1, p, model);
        if partial < *best {
            search(
                dar,
                q,
                model,
                task + 1,
                used_procs.max(p + 1),
                current,
                best,
                best_assignment,
            );
        }
    }
    current[task] = 0;
}

fn partial_processor_cost(
    dar: &DarGraph,
    assignment: &[usize],
    assigned_prefix: usize,
    proc: usize,
    model: &InPackCostModel,
) -> f64 {
    let mut distinct: Vec<usize> = Vec::new();
    let mut tasks = 0usize;
    let mut reads = 0usize;
    for (t, &a) in assignment.iter().enumerate().take(assigned_prefix) {
        if a != proc {
            continue;
        }
        tasks += 1;
        reads += dar.inputs(t).len();
        distinct.extend_from_slice(dar.inputs(t));
    }
    distinct.sort_unstable();
    distinct.dedup();
    model.w * distinct.len() as f64 + model.e * tasks as f64 + model.r * reads as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{block_schedule, round_robin_schedule};

    #[test]
    fn empty_instance_has_zero_makespan() {
        let dar = DarGraph::from_inputs(vec![]);
        let opt = optimal_schedule(&dar, 3, &InPackCostModel::standard());
        assert_eq!(opt.makespan, 0.0);
        assert!(opt.assignment.is_empty());
    }

    #[test]
    fn single_processor_cost_is_total_cost() {
        let dar = DarGraph::line(5);
        let model = InPackCostModel {
            w: 10.0,
            e: 1.0,
            r: 1.0,
        };
        let opt = optimal_schedule(&dar, 1, &model);
        assert_eq!(opt.makespan, model.makespan(&dar, &[0; 5], 1));
    }

    #[test]
    fn optimal_never_exceeds_any_heuristic() {
        let model = InPackCostModel {
            w: 50.0,
            e: 3.0,
            r: 2.0,
        };
        for (inputs, q) in [
            (
                vec![
                    vec![0, 1],
                    vec![1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![0, 4],
                    vec![5],
                ],
                2usize,
            ),
            (
                vec![vec![0], vec![0], vec![1], vec![1], vec![2], vec![2]],
                3,
            ),
            (
                vec![vec![0, 1, 2], vec![2, 3], vec![4], vec![4, 5], vec![5, 0]],
                2,
            ),
        ] {
            let dar = DarGraph::from_inputs(inputs);
            let opt = optimal_schedule(&dar, q, &model);
            for heuristic_assignment in [
                block_schedule(dar.num_tasks(), q),
                round_robin_schedule(dar.num_tasks(), q),
            ] {
                let h = model.makespan(&dar, &heuristic_assignment, q);
                assert!(
                    opt.makespan <= h + 1e-9,
                    "exact {} should not exceed heuristic {}",
                    opt.makespan,
                    h
                );
            }
            // And the reported assignment must actually achieve the optimum.
            assert!((model.makespan(&dar, &opt.assignment, q) - opt.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn block_schedule_is_optimal_on_line_dars() {
        // Section 3.3: for a line DAR with n = m*q, the block schedule is
        // optimal. The exact solver must agree.
        let model = InPackCostModel {
            w: 20.0,
            e: 1.0,
            r: 2.0,
        };
        let (m, q) = (3usize, 2usize);
        let dar = DarGraph::line(m * q);
        let opt = optimal_schedule(&dar, q, &model);
        let block = block_schedule(m * q, q);
        assert!((model.makespan(&dar, &block, q) - opt.makespan).abs() < 1e-9);
    }

    #[test]
    fn grouping_shared_inputs_beats_splitting_them() {
        // Two clusters of tasks, each cluster sharing a private input set.
        // The optimum puts each cluster on its own processor.
        let dar = DarGraph::from_inputs(vec![
            vec![0, 1],
            vec![0, 1],
            vec![0, 1],
            vec![2, 3],
            vec![2, 3],
            vec![2, 3],
        ]);
        let model = InPackCostModel::copy_only(1.0);
        let opt = optimal_schedule(&dar, 2, &model);
        assert_eq!(opt.makespan, 2.0);
        // The optimal assignment separates the clusters.
        let cluster_a: Vec<usize> = (0..3).map(|t| opt.assignment[t]).collect();
        let cluster_b: Vec<usize> = (3..6).map(|t| opt.assignment[t]).collect();
        assert!(cluster_a.iter().all(|&p| p == cluster_a[0]));
        assert!(cluster_b.iter().all(|&p| p == cluster_b[0]));
        assert_ne!(cluster_a[0], cluster_b[0]);
    }
}
